"""Explore and re-derive the paper's production latency fits (Tables 1-3, §5.5).

Three steps:

1. summarise each Table 3 mixture fit (the one-way WARS distributions for
   LNKD-SSD, LNKD-DISK, YMMR) at the percentiles the paper publishes;
2. re-run the §5.5 fitting procedure on the published Yammer percentile
   summaries and report the achieved N-RMSE;
3. show how a custom percentile summary from *your* production system can be
   turned into a WARS model and fed to the predictor.

Run it with::

    python examples/production_fit_explorer.py
"""

from __future__ import annotations

from repro import PBSPredictor, ReplicaConfig, WARSDistributions
from repro.analysis import format_table
from repro.latency import (
    YAMMER_WRITE_SUMMARY,
    fit_pareto_exponential,
    lnkd_disk,
    lnkd_ssd,
    ymmr,
)


def summarise_fits() -> None:
    percentiles = (50.0, 95.0, 99.0, 99.9)
    rows = []
    for name, distribution in (
        ("LNKD-SSD (W=A=R=S)", lnkd_ssd().w),
        ("LNKD-DISK (W)", lnkd_disk().w),
        ("YMMR (W)", ymmr().w),
        ("YMMR (A=R=S)", ymmr().r),
    ):
        summary = distribution.describe(percentiles=percentiles, samples=200_000, rng=0)
        row = {"fit": name, "mean_ms": summary.mean}
        for percentile in percentiles:
            row[f"p{percentile:g}_ms"] = summary.percentiles[percentile]
        rows.append(row)
    print(format_table(rows, precision=2, title="Table 3 one-way latency fits"))
    print()


def refit_yammer_writes() -> None:
    targets = {
        percentile: YAMMER_WRITE_SUMMARY.percentiles[percentile]
        for percentile in (50.0, 75.0, 95.0, 98.0, 99.0, 99.9)
    }
    fit = fit_pareto_exponential(targets, mean_hint=YAMMER_WRITE_SUMMARY.mean)
    print("Re-fitting the Yammer write summary (Table 2) with a Pareto+exponential mixture:")
    print(f"  {fit.describe()}")
    print()


def custom_summary_to_prediction() -> None:
    # Suppose your own store reports these single-node write latencies (ms).
    my_percentiles = {50.0: 2.0, 95.0: 6.0, 99.0: 15.0, 99.9: 80.0}
    write_fit = fit_pareto_exponential(my_percentiles, mean_hint=3.0)
    read_fit = fit_pareto_exponential({50.0: 0.8, 95.0: 2.0, 99.0: 4.0, 99.9: 10.0})
    distributions = WARSDistributions.write_specialised(
        write=write_fit.distribution, other=read_fit.distribution, name="my-store"
    )
    report = PBSPredictor(distributions, ReplicaConfig(3, 1, 1)).report(trials=100_000, rng=0)
    print("Prediction for a custom store fit from its percentile summary:")
    for line in report.summary_lines():
        print(f"  {line}")


def main() -> None:
    summarise_fits()
    refit_yammer_writes()
    custom_summary_to_prediction()


if __name__ == "__main__":
    main()
