"""Measure staleness on the Dynamo-style cluster and compare with the prediction.

This example reproduces the §5.2 methodology end to end on the discrete-event
cluster substrate:

1. Build a three-node Dynamo-style cluster with exponential message latencies
   (slow writes, fast reads) and the Cassandra-default N=3, R=W=1 quorums.
2. Run the validation workload: overwrite one key repeatedly while issuing
   concurrent reads at controlled offsets.
3. Measure the probability of consistent reads as a function of the time since
   the last commit, plus session-guarantee violation rates.
4. Compare the measured curve against the WARS Monte Carlo prediction driven
   by the same latency distributions.

Run it with::

    python examples/cluster_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    consistency_by_time,
    format_table,
    k_staleness_fraction,
    observe_staleness,
)
from repro.cluster import ClientSession, DynamoCluster, WorkloadRunner
from repro.core import ReplicaConfig, WARSModel
from repro.latency import ExponentialLatency, WARSDistributions
from repro.workloads import validation_workload


def main() -> None:
    config = ReplicaConfig(n=3, r=1, w=1)
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),  # slow, long-tailed write path
        other=ExponentialLatency.from_mean(2.0),  # fast acks, reads, responses
        name="exp W=20ms ARS=2ms",
    )

    # --- 1-2. run the instrumented cluster ------------------------------------
    cluster = DynamoCluster(config=config, distributions=distributions, rng=0)
    operations = validation_workload(
        key="hot-key",
        writes=1_000,
        write_interval_ms=200.0,
        read_offsets_ms=(1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 150.0),
    )
    WorkloadRunner(cluster).run(operations)

    # --- 3. measure staleness --------------------------------------------------
    observations = observe_staleness(cluster.trace_log, key="hot-key")
    print(f"staleness observations: {len(observations)}")
    for k in (1, 2, 3):
        print(f"measured P(read within {k} versions) = {k_staleness_fraction(observations, k):.4f}")

    bin_edges = np.arange(0.0, 120.0, 10.0)
    measured = consistency_by_time(observations, bin_edges)

    # --- 4. compare with the WARS prediction -----------------------------------
    predicted = WARSModel(distributions=distributions, config=config).sample(200_000, rng=1)
    rows = []
    for center, fraction, count in zip(measured.bin_centers, measured.fractions, measured.counts):
        if count == 0:
            continue
        rows.append(
            {
                "t_since_commit_ms": center,
                "measured_p_consistent": fraction,
                "predicted_p_consistent": predicted.consistency_probability(center),
                "reads_in_bin": count,
            }
        )
    print()
    print(format_table(rows, precision=3, title="Measured vs predicted consistency"))

    # --- bonus: session guarantees under the same configuration ----------------
    session_cluster = DynamoCluster(config=config, distributions=distributions, rng=7)
    session = ClientSession(session_cluster, "example-user")
    for index in range(200):
        session.write("profile", f"update-{index}")
        session.read("profile")
    print()
    print("session guarantees over 200 write/read pairs (R=W=1):")
    print(f"  read-your-writes violation rate: {session.stats.read_your_writes_violation_rate:.3f}")
    print(f"  monotonic-reads violation rate:  {session.stats.monotonic_violation_rate:.3f}")


if __name__ == "__main__":
    main()
