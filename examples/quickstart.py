"""Quickstart: how eventual is eventual consistency for your configuration?

This example mirrors the paper's headline question.  Pick a latency
environment (one of the production fits from Table 3) and a replication
configuration (N, R, W), then ask PBS:

* How likely is a read immediately after a write commit to see that write?
* How long after commit until 99.9% of reads are consistent (t-visibility)?
* How likely is a read to be within k versions of the latest (k-staleness)?
* What do read and write operation latencies look like?

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PBSPredictor, ReplicaConfig, production_fit


def main() -> None:
    # The Cassandra default the paper surveys: N=3, R=W=1 ("maximum performance").
    config = ReplicaConfig(n=3, r=1, w=1)

    for environment in ("LNKD-SSD", "LNKD-DISK", "YMMR", "WAN"):
        predictor = PBSPredictor(production_fit(environment), config)
        report = predictor.report(trials=100_000, rng=0)

        print(f"=== {environment} / {config.label()} ===")
        for line in report.summary_lines():
            print(f"  {line}")
        print()

    # Compare against a strict quorum: no staleness, but higher latency.
    strict = ReplicaConfig(n=3, r=2, w=2)
    report = PBSPredictor(production_fit("YMMR"), strict).report(trials=100_000, rng=0)
    print(f"=== YMMR / {strict.label()} (strict quorum) ===")
    for line in report.summary_lines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
