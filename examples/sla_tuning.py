"""SLA-driven replication tuning (paper §6).

Scenario: you operate a Riak-like store with Yammer-shaped latencies and need
to pick (N, R, W).  Product gives you a service-level agreement:

* 99.9th percentile read and write latency at most 60 ms;
* 99.9% of reads must be consistent within 250 ms of a write committing;
* every write must be acknowledged by at least one replica (durability floor).

The optimizer exhaustively evaluates every configuration with Monte Carlo and
prints the feasible set ranked by combined tail latency, exactly the style of
trade-off the paper's Table 4 makes by hand.

Run it with::

    python examples/sla_tuning.py
"""

from __future__ import annotations

from repro import SLAOptimizer, SLATarget, ymmr
from repro.analysis import format_table


def main() -> None:
    target = SLATarget(
        read_latency_ms=60.0,
        write_latency_ms=60.0,
        latency_percentile=99.9,
        t_visibility_ms=250.0,
        consistency_probability=0.999,
        min_write_quorum=1,
        min_replication=3,
    )

    optimizer = SLAOptimizer(ymmr(), replication_factors=(3,), trials=60_000, rng=0)
    evaluations = optimizer.evaluate_all(target)

    rows = [
        {
            "config": evaluation.config.label(),
            "strict": evaluation.config.is_strict,
            "read_p99.9_ms": evaluation.read_latency_ms,
            "write_p99.9_ms": evaluation.write_latency_ms,
            "t_visibility_ms": evaluation.t_visibility_ms,
            "meets_sla": evaluation.meets_target,
            "violations": "; ".join(evaluation.violations) or "-",
        }
        for evaluation in evaluations
    ]
    print(format_table(rows, precision=1, title="YMMR configurations vs SLA"))
    print()

    best = optimizer.best(target)
    if best is None:
        print("No configuration satisfies the SLA; relax the latency or staleness target.")
        return
    print(f"Recommended configuration: {best.config.label()}")
    print(f"  combined 99.9th percentile latency: {best.combined_latency_ms:.1f} ms")
    print(f"  99.9% consistency window:          {best.t_visibility_ms:.1f} ms")
    print(f"  consistency immediately at commit: {best.consistency_at_commit:.3f}")


if __name__ == "__main__":
    main()
