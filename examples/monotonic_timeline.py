"""Monotonic reads for a social timeline (paper §3.2).

Scenario from the paper's motivation: a timeline or changelog does not need
the very latest entry, but users should never see the feed "move backwards".
PBS monotonic reads quantifies how likely that is for a given replication
configuration and workload, and how operators can tune read rates (admission
control) or quorum sizes to hit a target.

The example:

1. computes the closed-form monotonic-reads probability for several
   configurations across a sweep of write/read rate ratios;
2. finds the client read rate needed for a 99.9% monotonic-reads guarantee;
3. cross-checks the closed form against the Dynamo-style cluster simulator by
   measuring actual monotonic violations for a sticky client session.

Run it with::

    python examples/monotonic_timeline.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import ClientSession, DynamoCluster
from repro.core import MonotonicReadsModel, ReplicaConfig
from repro.latency import ExponentialLatency, WARSDistributions


def closed_form_sweep() -> None:
    """Print Equation 3 over a grid of configurations and rate ratios."""
    rows = []
    for config in (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 1, 2), ReplicaConfig(2, 1, 1)):
        for writes_per_read in (0.1, 1.0, 5.0, 20.0):
            model = MonotonicReadsModel(
                config=config,
                global_write_rate=writes_per_read,
                client_read_rate=1.0,
            )
            rows.append(
                {
                    "config": config.label(),
                    "writes_per_client_read": writes_per_read,
                    "p_monotonic": model.probability(),
                    "p_strict_monotonic": model.strict_probability(),
                }
            )
    print(format_table(rows, precision=4, title="PBS monotonic reads (closed form)"))
    print()


def admission_control() -> None:
    """How fast must the timeline poll to keep 99.9% monotonic reads?"""
    model = MonotonicReadsModel(
        config=ReplicaConfig(3, 1, 1), global_write_rate=50.0, client_read_rate=1.0
    )
    required = model.required_read_rate_for(0.999)
    print(
        "With 50 writes/s to the timeline and N=3, R=W=1, a client needs to read at "
        f">= {required:.1f} reads/s for a 99.9% monotonic-reads probability."
    )
    print()


def measured_violations() -> None:
    """Measure actual monotonic violations on the cluster simulator."""
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(30.0),
        other=ExponentialLatency.from_mean(1.0),
        name="timeline",
    )
    rows = []
    for config in (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2)):
        cluster = DynamoCluster(config=config, distributions=distributions, rng=42)
        session = ClientSession(cluster, "timeline-reader")
        for index in range(300):
            session.write("timeline", f"post-{index}")
            session.read("timeline")
        rows.append(
            {
                "config": config.label(),
                "reads": session.stats.reads,
                "monotonic_violations": session.stats.monotonic_violations,
                "violation_rate": session.stats.monotonic_violation_rate,
            }
        )
    print(format_table(rows, precision=4, title="Measured monotonic-read violations"))


def main() -> None:
    closed_form_sweep()
    admission_control()
    measured_violations()


if __name__ == "__main__":
    main()
