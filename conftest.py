"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. offline environments where ``pip install -e .`` cannot build
an editable wheel).  When the package *is* installed, the installed version
takes precedence and this shim is a no-op.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))


def pytest_addoption(parser) -> None:
    """Test-suite knobs (options must be declared in the rootdir conftest)."""
    parser.addoption(
        "--engine-workers",
        type=int,
        default=2,
        help=(
            "worker-process count used by tests that exercise the sharded "
            "SweepEngine through the generic `workers` fixture (seed-mode "
            "results are identical for any value; raise it on many-core "
            "machines to stress the pool harder)"
        ),
    )
