#!/usr/bin/env python
"""Run the slow sweep-engine benchmarks and emit ``BENCH_sweep.json``.

The slow suite (``pytest -m slow benchmarks/``) *asserts* the repository's
performance claims but leaves no machine-readable trace; this emitter runs
the same measurement bodies (the ``measure_*`` functions shared with
``benchmarks/test_bench_engine.py``) and writes one JSON document so the
perf trajectory — shared-sample speedup, multiprocess scaling, JIT kernel
speedup — can be tracked across PRs and compared between machines.

Usage::

    python tools/bench_to_json.py                 # writes ./BENCH_sweep.json
    python tools/bench_to_json.py --output out.json
    python tools/bench_to_json.py --quick         # ~4x fewer trials, for CI

Scenarios that cannot run on the current machine are recorded as
``{"skipped": "<reason>"}`` rather than omitted, so a JSON diff across runs
always shows *why* a number is missing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    # REPO_ROOT itself makes ``benchmarks.conftest`` importable (the bench
    # modules import ``run_once`` from it) regardless of the caller's cwd.
    for entry in (REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))


def run_benchmarks(quick: bool = False) -> dict:
    """Execute every runnable measurement and return the JSON document."""
    _ensure_importable()
    import numpy

    import test_bench_engine as bench
    from repro.kernels import available_backends
    from repro.kernels.numba_backend import numba_available

    if quick:
        bench.TRIALS = max(bench.TRIALS // 4, 25_000)

    cpu_count = os.cpu_count() or 1
    document: dict = {
        "schema": "pbs-repro/bench-sweep/v1",
        "generated_unix_time": time.time(),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": numpy.__version__,
            "cpu_count": cpu_count,
            "kernel_backends_available": list(available_backends()),
            "trials": bench.TRIALS,
            "configs": len(bench.CONFIGS),
            "quick": quick,
        },
        "benchmarks": {},
    }
    benchmarks = document["benchmarks"]

    print(f"engine vs per-config loop ({bench.TRIALS} trials) ...", flush=True)
    benchmarks["engine_vs_per_config_loop"] = bench.measure_engine_vs_per_config_loop()

    if cpu_count >= 4:
        print("serial vs 4-worker sharding ...", flush=True)
        benchmarks["sharded_4_workers"] = bench.measure_sharded_speedup(workers=4)
    else:
        benchmarks["sharded_4_workers"] = {
            "skipped": f"needs >= 4 CPU cores, machine has {cpu_count}"
        }

    if numba_available():
        print("numpy vs numba kernel backend ...", flush=True)
        benchmarks["kernel_backend_numba"] = bench.measure_kernel_backend_speedup()
    else:
        benchmarks["kernel_backend_numba"] = {
            "skipped": "numba is not installed; the backend falls back to numpy"
        }

    import test_bench_cluster as bench_cluster

    cluster_writes = max(bench_cluster.BENCH_WRITES // (4 if quick else 1), 500)
    print(
        f"cluster simulator old-vs-new ({cluster_writes} writes/run) ...", flush=True
    )
    benchmarks["cluster_events_per_sec"] = bench_cluster.measure_cluster_events_per_sec(
        writes=cluster_writes
    )

    validation_writes = 5_000 if quick else 50_000
    print(f"paper-scale validation cell ({validation_writes} writes) ...", flush=True)
    benchmarks["validation_cell_paper_scale"] = (
        bench_cluster.measure_paper_scale_validation_cell(writes=validation_writes)
    )

    analytics_writes = 5_000 if quick else 50_000
    print(
        f"columnar vs Fenwick trace analytics ({analytics_writes} writes) ...",
        flush=True,
    )
    benchmarks["trace_analytics"] = bench_cluster.measure_trace_analytics(
        writes=analytics_writes
    )

    print(
        f"calendar queue vs tuple heap ({cluster_writes} writes/run) ...", flush=True
    )
    benchmarks["calendar_queue_events_per_sec"] = (
        bench_cluster.measure_calendar_queue_events_per_sec(writes=cluster_writes)
    )

    import test_bench_analytic as bench_analytic

    if quick:
        bench_analytic.TRIALS = max(bench_analytic.TRIALS // 4, 25_000)
    print(
        f"analytic fast path vs Monte Carlo engine ({bench_analytic.TRIALS} trials) ...",
        flush=True,
    )
    benchmarks["analytic_vs_montecarlo"] = (
        bench_analytic.measure_analytic_vs_montecarlo()
    )

    import test_bench_serving as bench_serving

    serving_requests = max(bench_serving.REQUESTS // (4 if quick else 1), 1_000)
    print(f"serving-layer load test ({serving_requests} requests) ...", flush=True)
    benchmarks["serving_load"] = bench_serving.measure_serving_load(
        requests=serving_requests
    )

    import test_bench_scenarios as bench_scenarios

    scenario_writes = 2_000 if quick else 5_000
    print(
        f"hostile-conditions scenario matrix ({scenario_writes} writes/scenario) ...",
        flush=True,
    )
    benchmarks["scenario_divergence"] = bench_scenarios.measure_scenario_divergence(
        writes=scenario_writes
    )

    import test_bench_faults as bench_faults

    recovery_writes = 2_000 if quick else 5_000
    print(
        f"adaptive-recovery closed loop ({recovery_writes} writes) ...", flush=True
    )
    benchmarks["adaptive_recovery"] = bench_faults.measure_adaptive_recovery(
        writes=recovery_writes
    )

    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the sweep-engine benchmarks and write BENCH_sweep.json"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="destination path (default: BENCH_sweep.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run with ~4x fewer trials (noisier numbers, CI-friendly runtime)",
    )
    args = parser.parse_args(argv)
    document = run_benchmarks(quick=args.quick)
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    for name, result in document["benchmarks"].items():
        if "skipped" in result:
            print(f"{name}: skipped ({result['skipped']})")
        elif "lines" in result:
            # One divergence trajectory line per scenario.
            for scenario, line in result["lines"].items():
                print(
                    f"{name}[{scenario}]: consistency rmse "
                    f"{line['consistency_rmse_pct']:.2f}%, "
                    f"dropped {line['dropped_messages']}"
                )
        elif "final_recovered_fraction" in result:
            print(
                f"{name}: recovered {result['final_recovered_fraction']:.0%} "
                f"of static divergence "
                f"({result['static_mean_abs_delta_p_pct']:.2f}% -> "
                f"{result['final_mean_abs_delta_p_pct']:.2f}%) "
                f"in {result['windows_to_threshold']} window(s)"
            )
        elif "speedup" in result:
            print(f"{name}: speedup {result['speedup']:.2f}x")
        else:
            summary = ", ".join(
                f"{key} {value:.2f}" if isinstance(value, float) else f"{key} {value}"
                for key, value in result.items()
            )
            print(f"{name}: {summary}")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
