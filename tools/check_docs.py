#!/usr/bin/env python
"""Execute every fenced Python code block in the documentation.

The README and architecture docs promise runnable examples; this script
keeps that promise honest.  It extracts every ```python fenced block from
the documentation files and executes each block in its own namespace, with
the repository's ``src`` layout importable.  Any exception (including a
failing ``assert``) fails the run with the offending file, block index, and
source line.

Used two ways:

* CI: ``python tools/check_docs.py`` (the docs job);
* tier-1: ``tests/test_docs_examples.py`` imports :func:`iter_code_blocks`
  and :func:`run_block` and runs each block as a parametrised test case.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, NamedTuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files whose Python examples must execute.
DOC_FILES: tuple[str, ...] = ("README.md", "docs/architecture.md")

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


class CodeBlock(NamedTuple):
    """One fenced ```python block lifted out of a markdown file."""

    path: str
    index: int
    line: int
    source: str

    @property
    def label(self) -> str:
        return f"{self.path}:block{self.index} (line {self.line})"


def iter_code_blocks(paths: tuple[str, ...] = DOC_FILES) -> Iterator[CodeBlock]:
    """Yield every ```python block in the given markdown files, in order."""
    for relative in paths:
        path = REPO_ROOT / relative
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(_FENCE.finditer(text)):
            line = text[: match.start()].count("\n") + 2  # first source line
            yield CodeBlock(relative, index, line, match.group(1))


def run_block(block: CodeBlock) -> None:
    """Execute one block in a fresh namespace; exceptions propagate."""
    source = str(REPO_ROOT / "src")
    if source not in sys.path:
        try:
            import repro  # noqa: F401  (installed package takes precedence)
        except ImportError:
            sys.path.insert(0, source)
    exec(compile(block.source, f"{block.path}#block{block.index}", "exec"), {})


def main() -> int:
    blocks = list(iter_code_blocks())
    if not blocks:
        print("error: no python code blocks found in the documentation", file=sys.stderr)
        return 1
    failures = 0
    for block in blocks:
        try:
            run_block(block)
        except Exception as error:  # noqa: BLE001 - report and keep going
            failures += 1
            print(f"FAIL {block.label}: {type(error).__name__}: {error}", file=sys.stderr)
        else:
            print(f"ok   {block.label}")
    if failures:
        print(f"{failures} of {len(blocks)} documentation blocks failed", file=sys.stderr)
        return 1
    print(f"all {len(blocks)} documentation blocks executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
