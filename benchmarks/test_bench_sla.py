"""Benchmark for the §6 SLA-driven configuration search."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="sla")
def test_bench_sla_search(benchmark):
    result = run_once(benchmark, "sla", trials=20_000, rng=0)
    assert len(result.rows) == 3
    for row in result.rows:
        # All (R, W) pairs at N=3 unless a durability floor prunes low-W configs.
        assert row["configs_evaluated"] in (6, 9)
        assert row["configs_feasible"] >= 1
        assert row["best_config"] != "none"
    durability_row = next(row for row in result.rows if "durability-first" in row["scenario"])
    # The durability floor W >= 2 must be respected by the recommended config.
    assert "W=2" in durability_row["best_config"] or "W=3" in durability_row["best_config"]
