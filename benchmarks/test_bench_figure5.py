"""Benchmark regenerating Figure 5: operation latency CDFs for the production fits."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5(benchmark, bench_trials):
    result = run_once(benchmark, "figure5", trials=bench_trials, rng=0)

    def row(environment: str, operation: str, quorum: int) -> dict:
        return next(
            r
            for r in result.rows
            if r["environment"] == environment
            and r["operation"] == operation
            and r["quorum_size"] == quorum
        )

    # Latency grows with the quorum size for every environment (waiting for
    # the 3rd fastest replica is never faster than waiting for the 1st).
    for environment in ("LNKD-SSD", "LNKD-DISK", "YMMR", "WAN"):
        for operation in ("read", "write"):
            p50_by_quorum = [row(environment, operation, q)["p50_ms"] for q in (1, 2, 3)]
            assert p50_by_quorum == sorted(p50_by_quorum)

    # LNKD-SSD and LNKD-DISK share the read path (A=R=S fit); their read
    # medians agree within Monte Carlo noise.
    assert row("LNKD-SSD", "read", 1)["p50_ms"] == pytest.approx(
        row("LNKD-DISK", "read", 1)["p50_ms"], rel=0.1
    )

    # LNKD-DISK writes are much slower than its reads at the tail (fsync-bound).
    assert row("LNKD-DISK", "write", 1)["p99.9_ms"] > 3 * row("LNKD-DISK", "read", 1)["p99.9_ms"]

    # WAN: quorum size 1 can stay local, but waiting for 2 replicas forces a
    # ~75 ms one-way WAN hop.
    assert row("WAN", "write", 1)["p50_ms"] < 60.0
    assert row("WAN", "write", 2)["p50_ms"] > 75.0
