"""Benchmark: serving-layer load test (the PR-7 acceptance claim).

The serving layer's contract: once a tenant's analytic environment is warm,
:class:`repro.serving.PredictorService` sustains at least 1,000 requests per
second with a p99 request latency under 10 ms on the cached/analytic path.
The load mix alternates predictions across the N=3 quorum grid with SLA
recommendations, so both the fingerprint-keyed cache hits and the warm
analytic misses are on the measured path.

The measurement body lives in ``measure_serving_load`` so
``tools/bench_to_json.py`` can emit it into ``BENCH_sweep.json`` as the
``serving_load`` scenario.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.core.sla import SLATarget
from repro.serving import PredictorService

REQUESTS = 5_000

#: The N=3 quorum grid served by the prediction half of the load mix.
CONFIGS = (
    ReplicaConfig(3, 1, 1),
    ReplicaConfig(3, 1, 2),
    ReplicaConfig(3, 2, 1),
    ReplicaConfig(3, 2, 2),
    ReplicaConfig(3, 3, 1),
    ReplicaConfig(3, 1, 3),
    ReplicaConfig(3, 3, 3),
)

#: SLA targets served by the recommendation half (distinct cache entries).
TARGETS = (
    SLATarget(read_latency_ms=10.0, t_visibility_ms=20.0),
    SLATarget(read_latency_ms=5.0, t_visibility_ms=50.0),
    SLATarget(t_visibility_ms=5.0),
)


def measure_serving_load(requests: int = REQUESTS) -> dict:
    """Drive a warm PredictorService and report throughput and latency tails."""
    service = PredictorService()
    service.register_tenant("bench", "LNKD-SSD")

    # Warm the environment tables and populate the cache: the claim is about
    # the serving path, not the one-off environment build (reported alongside).
    cold_start = time.perf_counter()
    for config in CONFIGS:
        service.predict("bench", config)
    for target in TARGETS:
        service.recommend("bench", target)
    warmup_seconds = time.perf_counter() - cold_start

    latencies = np.empty(requests)
    started = time.perf_counter()
    for index in range(requests):
        request_start = time.perf_counter()
        if index % 5 == 4:
            service.recommend("bench", TARGETS[index % len(TARGETS)])
        else:
            service.predict("bench", CONFIGS[index % len(CONFIGS)])
        latencies[index] = time.perf_counter() - request_start
    elapsed = time.perf_counter() - started

    stats = service.stats()
    return {
        "requests": requests,
        "requests_per_second": requests / elapsed,
        "p50_ms": float(np.percentile(latencies, 50.0) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99.0) * 1e3),
        "max_ms": float(latencies.max() * 1e3),
        "warmup_seconds": warmup_seconds,
        "cache_hit_rate": stats.cache.hit_rate,
        "spot_checks_pending": stats.spot_checks_pending,
    }


@pytest.mark.benchmark(group="serving")
def test_serving_load_1000_rps_p99_under_10ms():
    """>= 1,000 req/s at p99 < 10 ms on the cached/analytic serving path."""
    result = measure_serving_load()
    print(
        f"\n{result['requests']} requests: "
        f"{result['requests_per_second']:.0f} req/s  "
        f"p50 {result['p50_ms']*1e3:.1f}us  p99 {result['p99_ms']*1e3:.1f}us  "
        f"max {result['max_ms']:.2f}ms  "
        f"(warmup {result['warmup_seconds']*1e3:.0f}ms, "
        f"hit rate {result['cache_hit_rate']:.2%})"
    )
    assert result["requests_per_second"] >= 1_000.0, (
        f"expected the warm serving path to sustain >= 1,000 requests/sec, "
        f"got {result['requests_per_second']:.0f}"
    )
    assert result["p99_ms"] < 10.0, (
        f"expected p99 request latency < 10 ms on the cached/analytic path, "
        f"got {result['p99_ms']:.2f} ms"
    )
