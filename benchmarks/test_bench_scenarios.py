"""Benchmarks for the hostile-conditions scenario matrix.

Two kinds of claims are asserted here:

* **Fidelity** — the benign ``baseline`` scenario at the paper's 50,000-write
  scale reproduces the §5.2 validation cell (consistency RMSE <= 1%), and a
  hostile cell at the same scale completes inside the wall-clock budget.
* **Trajectory** — :func:`measure_scenario_divergence` runs the full matrix
  and returns one flat divergence line per scenario; ``tools/bench_to_json.py``
  records those lines in ``BENCH_sweep.json`` so model degradation under each
  hostile condition can be tracked across PRs.
"""

from __future__ import annotations

import math
import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.scenarios import run_scenario, scenario_names, validate_divergence

#: Wall-clock ceiling for one 50,000-write scenario cell (shared CI runners).
PAPER_SCALE_BUDGET_S = 600.0


def measure_scenario_divergence(
    writes: int = 5_000,
    prediction_trials: int = 100_000,
    workers: int | None = None,
) -> dict:
    """Run every registered scenario and return flat divergence lines.

    The return shape is the ``BENCH_sweep.json`` section: one entry per
    scenario with JSON-safe scalars (non-finite values become ``None``).
    """
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    lines: dict[str, dict] = {}
    start = time.perf_counter()
    for name in scenario_names():
        divergence = run_scenario(
            name,
            writes=writes,
            prediction_trials=prediction_trials,
            rng=0,
            workers=workers,
        )
        shift_p99 = divergence.t_visibility_shift_ms.get(0.99)
        lines[name] = {
            "hostile": divergence.hostile,
            "observations": divergence.observations,
            "dropped_messages": divergence.dropped_messages,
            "consistency_rmse_pct": divergence.consistency_rmse * 100.0,
            "max_abs_delta_p_pct": divergence.max_abs_delta_p * 100.0,
            "analytic_rmse_pct": (
                None if divergence.analytic_rmse is None else divergence.analytic_rmse * 100.0
            ),
            "t_vis_shift_p99_ms": (
                None if shift_p99 is None or not math.isfinite(shift_p99) else shift_p99
            ),
            "read_latency_nrmse_pct": divergence.read_latency_nrmse * 100.0,
            "write_latency_nrmse_pct": divergence.write_latency_nrmse * 100.0,
        }
    elapsed = time.perf_counter() - start
    return {
        "writes": writes,
        "workers": workers,
        "wall_clock_s": elapsed,
        "lines": lines,
    }


@pytest.mark.benchmark(group="scenarios")
def test_bench_scenario_matrix(benchmark):
    """The full matrix at reduced scale: every scenario runs, validates, and
    the benign baseline stays far tighter than the hostile rows."""
    result = run_once(
        benchmark, "scenarios", trials=2_000, rng=0, prediction_trials=50_000, workers=2
    )
    assert [row["scenario"] for row in result.rows] == scenario_names()
    hostile = [row for row in result.rows if row["hostile"]]
    assert len(hostile) >= 6
    baseline = next(row for row in result.rows if row["scenario"] == "baseline")
    assert baseline["consistency_rmse_pct"] < 5.0


def test_baseline_scenario_reproduces_validation_at_paper_scale():
    """Acceptance criterion: the benign baseline at 50,000 writes reproduces
    the PR 5 validation cell with consistency RMSE <= 1%."""
    start = time.perf_counter()
    divergence = run_scenario(
        "baseline",
        writes=50_000,
        prediction_trials=100_000,
        rng=0,
        workers=min(4, os.cpu_count() or 1),
    )
    elapsed = time.perf_counter() - start
    validate_divergence(divergence.to_dict())
    assert divergence.consistency_rmse <= 0.01, (
        f"baseline scenario RMSE {divergence.consistency_rmse * 100:.2f}% exceeds "
        "the paper's 1% §5.2 budget"
    )
    assert divergence.dropped_messages == 0
    assert elapsed < PAPER_SCALE_BUDGET_S


def test_hostile_cell_at_paper_scale_under_budget():
    """One hostile 50,000-write cell (partition + heal each block) completes
    inside the wall-clock budget and shows real divergence."""
    start = time.perf_counter()
    divergence = run_scenario(
        "partition",
        writes=50_000,
        prediction_trials=100_000,
        rng=0,
        workers=min(4, os.cpu_count() or 1),
    )
    elapsed = time.perf_counter() - start
    assert elapsed < PAPER_SCALE_BUDGET_S, (
        f"50k-write hostile cell took {elapsed:.0f}s, budget {PAPER_SCALE_BUDGET_S:.0f}s"
    )
    validate_divergence(divergence.to_dict())
    assert divergence.dropped_messages > 0
    # At 50k writes the per-probe curve RMSE dilutes below the benign noise
    # floor, so the partition's cost shows up in the visibility tail instead:
    # the model's t-visibility at p99 must be off by a double-digit shift.
    shift_p99 = divergence.t_visibility_shift_ms.get(0.99)
    assert shift_p99 is not None and math.isfinite(shift_p99)
    assert abs(shift_p99) > 5.0


def test_measure_scenario_divergence_lines_are_json_safe():
    """The emitter's section shape: one finite-or-null line per scenario."""
    import json

    result = measure_scenario_divergence(writes=1_000, prediction_trials=10_000, workers=2)
    assert set(result["lines"]) == set(scenario_names())
    json.dumps(result, allow_nan=False)
    for line in result["lines"].values():
        assert math.isfinite(line["consistency_rmse_pct"])
