"""Benchmark: analytic fast path vs the Monte Carlo sweep engine.

The acceptance claim for :mod:`repro.analytic`: on the figure-4-style
8-configuration sweep (N=3 quorum grid, exponential W with a 10 ms mean
against 1 ms A=R=S), a *warm* analytic predictor answers the full sweep —
consistency curve, 99%/99.9% t-visibility, latency percentiles — at least
100x faster than a 100k-trial engine run, while every consistency probability
stays within 1% absolute of the engine's.

"Warm" means the environment tables (leg grids, the α matrix, per-(N, R)
freshness curves) are built; the cold build is reported alongside so the
amortisation story is visible.  Per-configuration answers are recomputed on
every sweep — nothing config-level is cached between the timed calls.

The measurement body lives in ``measure_analytic_vs_montecarlo`` so
``tools/bench_to_json.py`` can emit it into ``BENCH_sweep.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analytic.predictor import AnalyticPredictor
from repro.core.quorum import ReplicaConfig
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.montecarlo.engine import SweepEngine

TRIALS = 100_000
CONFIGS = (
    ReplicaConfig(3, 1, 1),
    ReplicaConfig(3, 1, 2),
    ReplicaConfig(3, 1, 3),
    ReplicaConfig(3, 2, 1),
    ReplicaConfig(3, 2, 2),
    ReplicaConfig(3, 2, 3),
    ReplicaConfig(3, 3, 1),
    ReplicaConfig(3, 3, 3),
)
TIMES_MS = (0.0, 1.0, 10.0, 100.0, 1000.0)

#: Figure 4's slowest-write ratio (1:0.10): the staleness-heaviest and
#: therefore least forgiving environment for the analytic quadratures.
DISTRIBUTIONS = WARSDistributions.write_specialised(
    write=ExponentialLatency(rate=0.1),
    other=ExponentialLatency(rate=1.0),
    name="figure4-1:0.10",
)


def _time_best_of(repeats: int, callable_) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def measure_analytic_vs_montecarlo() -> dict:
    """Time the figure-4 8-config sweep through both paths and compare answers."""

    def engine_sweep():
        engine = SweepEngine(
            DISTRIBUTIONS,
            CONFIGS,
            times_ms=TIMES_MS,
            target_probability=(0.99, 0.999),
        )
        return engine.run(TRIALS, np.random.default_rng(1))

    cold_start = time.perf_counter()
    predictor = AnalyticPredictor(distributions=DISTRIBUTIONS)
    predictor.environment
    analytic_cold_seconds = time.perf_counter() - cold_start

    def analytic_sweep():
        return predictor.sweep(CONFIGS, times_ms=TIMES_MS)

    # Warm both paths (imports, allocator, per-(N, R) environment caches).
    mc_result = engine_sweep()
    analytic_results = analytic_sweep()

    engine_seconds = _time_best_of(2, engine_sweep)
    analytic_seconds = _time_best_of(5, analytic_sweep)

    max_abs_error = 0.0
    for config, analytic in zip(CONFIGS, analytic_results):
        summary = mc_result.for_config(config)
        for t_ms, p_analytic in analytic.curve:
            error = abs(p_analytic - summary.consistency_probability(t_ms))
            max_abs_error = max(max_abs_error, error)
    return {
        "configs": len(CONFIGS),
        "trials": TRIALS,
        "probe_times": len(TIMES_MS),
        "engine_seconds": engine_seconds,
        "analytic_sweep_seconds": analytic_seconds,
        "analytic_cold_build_seconds": analytic_cold_seconds,
        "speedup": engine_seconds / analytic_seconds,
        "max_abs_error": max_abs_error,
    }


@pytest.mark.benchmark(group="analytic")
def test_analytic_sweep_100x_faster_within_one_percent():
    """Warm analytic sweep >= 100x faster than the engine, <= 1% abs error."""
    result = measure_analytic_vs_montecarlo()
    print(
        f"\nengine: {result['engine_seconds']*1e3:.1f}ms  "
        f"analytic sweep: {result['analytic_sweep_seconds']*1e3:.3f}ms  "
        f"(cold build {result['analytic_cold_build_seconds']*1e3:.1f}ms)  "
        f"speedup: {result['speedup']:.0f}x  "
        f"max |Δp|: {result['max_abs_error']:.5f}"
    )
    assert result["max_abs_error"] <= 0.01, (
        f"analytic sweep disagrees with the Monte Carlo oracle by "
        f"{result['max_abs_error']:.4f} absolute probability (bar: 0.01)"
    )
    assert result["speedup"] >= 100.0, (
        f"expected the warm analytic sweep to be >= 100x faster than the "
        f"{TRIALS}-trial engine on {len(CONFIGS)} configs, got "
        f"{result['speedup']:.1f}x ({result['engine_seconds']:.3f}s vs "
        f"{result['analytic_sweep_seconds']*1e3:.3f}ms)"
    )
