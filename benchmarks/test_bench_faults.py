"""Benchmarks for the adaptive-recovery closed loop under gray failure.

The acceptance claim: streaming a hostile trace into a
:class:`~repro.serving.PredictorService` and refitting in timed windows
recovers **at least half** of the static model's divergence on the
``gray-failure`` scenario.  ``measure_adaptive_recovery`` returns the flat
section shape that ``tools/bench_to_json.py`` records as ``adaptive_recovery``
in ``BENCH_sweep.json`` so the closed loop's convergence is tracked per PR.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.faults import run_adaptive_recovery

#: Wall-clock ceiling for the full closed loop (shared CI runners).
RECOVERY_BUDGET_S = 600.0


def measure_adaptive_recovery(writes: int = 5_000, windows: int = 8) -> dict:
    """Run the gray-failure closed loop and return flat JSON-safe lines."""
    start = time.perf_counter()
    trajectory = run_adaptive_recovery("gray-failure", writes=writes, windows=windows)
    elapsed = time.perf_counter() - start
    return {
        "scenario": trajectory.scenario,
        "writes": trajectory.writes,
        "windows": len(trajectory.windows),
        "observations": trajectory.observations,
        "harvested_samples": trajectory.harvested_samples,
        "static_mean_abs_delta_p_pct": trajectory.static_mean_abs_delta_p * 100.0,
        "final_mean_abs_delta_p_pct": trajectory.final_mean_abs_delta_p * 100.0,
        "final_recovered_fraction": trajectory.final_recovered_fraction,
        "windows_to_threshold": trajectory.windows_to_threshold,
        "wall_clock_s": elapsed,
    }


def test_closed_loop_recovers_majority_of_static_divergence():
    """Acceptance criterion: the adaptive loop recovers >= 50% of the static
    model's mean |Δp| on the gray-failure scenario (margin is ~70%)."""
    start = time.perf_counter()
    trajectory = run_adaptive_recovery("gray-failure", writes=5_000, windows=8)
    elapsed = time.perf_counter() - start
    assert elapsed < RECOVERY_BUDGET_S
    assert trajectory.static_mean_abs_delta_p > 0.0
    assert trajectory.final_recovered_fraction >= 0.5, (
        f"closed loop recovered only {trajectory.final_recovered_fraction:.0%} "
        f"of static divergence ({trajectory.static_mean_abs_delta_p:.2%} -> "
        f"{trajectory.final_mean_abs_delta_p:.2%})"
    )
    # The loop converges early: the threshold is crossed, not just approached.
    assert trajectory.windows_to_threshold is not None
    assert trajectory.windows_to_threshold <= len(trajectory.windows)


def test_measure_adaptive_recovery_is_json_safe():
    """The emitter's section shape: flat finite scalars only."""
    import json
    import math

    section = measure_adaptive_recovery(writes=1_000, windows=4)
    payload = json.loads(json.dumps(section))
    for key, value in payload.items():
        if isinstance(value, float):
            assert math.isfinite(value), f"{key} is non-finite"
    assert payload["windows"] == 4
    assert payload["final_recovered_fraction"] > 0.0


@pytest.mark.benchmark(group="faults")
def test_bench_recovery_experiment(benchmark):
    """The registered ``recovery`` experiment end-to-end at reduced scale."""
    result = run_once(benchmark, "recovery", trials=2_000, rng=0)
    assert len(result.rows) == 8
    final = result.rows[-1]
    assert final["recovered_pct"] > 0.0
