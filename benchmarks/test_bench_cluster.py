"""Benchmarks for the cluster-simulator hot path (the §5.2 measured side).

Two claims are asserted:

* the overhauled simulation engine (tuple-heap events, batched draw buffers,
  pre-bound call dispatch — ``DynamoCluster(engine="batched")``, the default)
  processes **>= 5x** the events per second of the pre-overhaul engine
  (``engine="reference"``, pinned verbatim in :mod:`repro.cluster.reference`)
  on the single-cell validation workload, serial, same seed discipline;
* a full §5.2 grid cell at the paper's 50,000 writes completes within a
  modest wall-clock budget, which is what makes paper-fidelity validation a
  practical slow-suite target rather than an overnight job.

Timed regions run with the cyclic garbage collector paused (both engines
equally): the measured quantity is simulator throughput, and gen-2 GC scans
of the accumulated trace log would otherwise dominate the comparison with
allocator noise.  The ``measure_*`` bodies are shared with
``tools/bench_to_json.py`` so ``BENCH_sweep.json`` records the same numbers
the assertions gate.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

import pytest

from repro.analysis.staleness import (
    measured_t_visibility,
    observe_staleness,
    observe_staleness_frame,
    operation_latencies,
)
from repro.analysis.validation import run_validation
from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload

#: The §5.2 cell used throughout: W mean 20 ms, A=R=S mean 10 ms, N=3 R=W=1.
W_MEAN_MS = 20.0
ARS_MEAN_MS = 10.0
CONFIG = ReplicaConfig(n=3, r=1, w=1)
READ_OFFSETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0)

#: Writes per measured run of the events/sec benchmark (~189k events each).
BENCH_WRITES = 2_500
#: Timed repetitions per engine; the median damps shared-machine noise.
BENCH_REPEATS = 3


def _cell_distributions() -> WARSDistributions:
    return WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(W_MEAN_MS),
        other=ExponentialLatency.from_mean(ARS_MEAN_MS),
        name=f"exp W={W_MEAN_MS}ms ARS={ARS_MEAN_MS}ms",
    )


def _run_cell_workload(engine: str, writes: int, seed: int) -> float:
    """Run one validation-cell workload; return events processed per second.

    The reference engine gets the pre-overhaul treatment end to end: event
    labels on (the original coordinator always built them) and the workload
    scheduled eagerly (the original runner pushed every operation up front).
    """
    reference = engine == "reference"
    cluster = DynamoCluster(
        config=CONFIG,
        distributions=_cell_distributions(),
        rng=seed,
        engine=engine,
        event_labels=reference,
    )
    operations = list(
        validation_workload(
            key="validation-key",
            writes=writes,
            write_interval_ms=max(10.0 * W_MEAN_MS, 100.0),
            read_offsets_ms=READ_OFFSETS_MS,
        )
    )
    runner = WorkloadRunner(cluster)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        if reference:
            runner.schedule(operations)
            horizon = max(operation.start_ms for operation in operations) + 1_000.0
            cluster.run(until_ms=horizon)
            cluster.run()
        else:
            runner.run(operations)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return cluster.simulator.processed_events / elapsed


def measure_cluster_events_per_sec(
    writes: int = BENCH_WRITES, repeats: int = BENCH_REPEATS
) -> dict:
    """Old-vs-new simulator throughput on the single-cell validation workload."""
    # Warm both engines once (imports, allocator, distribution caches).
    _run_cell_workload("reference", 200, seed=0)
    _run_cell_workload("batched", 200, seed=0)
    reference = statistics.median(
        _run_cell_workload("reference", writes, seed=0) for _ in range(repeats)
    )
    batched = statistics.median(
        _run_cell_workload("batched", writes, seed=0) for _ in range(repeats)
    )
    return {
        "writes": writes,
        "repeats": repeats,
        "reference_events_per_sec": reference,
        "batched_events_per_sec": batched,
        "speedup": batched / reference,
    }


def measure_paper_scale_validation_cell(writes: int = 50_000, workers: int | None = None) -> dict:
    """One §5.2 grid cell at paper fidelity through ``run_validation``."""
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    result = run_validation(
        distributions=_cell_distributions(),
        config=CONFIG,
        writes=writes,
        write_interval_ms=max(10.0 * W_MEAN_MS, 100.0),
        read_offsets_ms=READ_OFFSETS_MS,
        prediction_trials=100_000,
        rng=0,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    return {
        "writes": writes,
        "workers": workers,
        "wall_clock_s": elapsed,
        "observations": result.observations,
        "consistency_rmse_pct": result.consistency_rmse * 100.0,
        "read_latency_nrmse_pct": result.read_latency_nrmse * 100.0,
        "write_latency_nrmse_pct": result.write_latency_nrmse * 100.0,
    }


def measure_trace_analytics(writes: int = 50_000, seed: int = 0) -> dict:
    """Columnar vs Fenwick trace analytics on one §5.2 baseline cell.

    Runs the baseline cell once per trace backend (timing the simulation —
    the recording overhead), then times the full analytics pass on each
    log: staleness observation, t-visibility at four targets, and the
    operation-latency extraction.  The columnar pass must be at least 2x
    the Fenwick path *and* produce identical observations, and switching
    the backend must not make the combined run slower.
    """

    def _timed_cell(trace_backend: str) -> tuple[DynamoCluster, float]:
        cluster = DynamoCluster(
            config=CONFIG,
            distributions=_cell_distributions(),
            rng=seed,
            trace_backend=trace_backend,
        )
        operations = validation_workload(
            key="validation-key",
            writes=writes,
            write_interval_ms=max(10.0 * W_MEAN_MS, 100.0),
            read_offsets_ms=READ_OFFSETS_MS,
        )
        runner = WorkloadRunner(cluster)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            runner.run(operations)
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        return cluster, elapsed

    def _best_cell(trace_backend: str) -> tuple[DynamoCluster, float]:
        # Each repeat is a fresh cluster (the trace accumulates), so take
        # the fastest run to suppress scheduler noise in the sim timing.
        return min(
            (_timed_cell(trace_backend) for _ in range(BENCH_REPEATS)),
            key=lambda pair: pair[1],
        )

    def _timed_analytics(trace_log, columnar: bool) -> tuple[object, float]:
        """Time observe → t-visibility (4 targets) → latency extraction.

        The columnar pipeline stays in arrays end to end (the frame API);
        the Fenwick pipeline is the pre-overhaul shape: an observation-object
        list walked per curve.
        """
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            if columnar:
                observations = observe_staleness_frame(trace_log)
            else:
                observations = observe_staleness(trace_log, method="fenwick")
            for target in (0.9, 0.99, 0.999, 0.9999):
                measured_t_visibility(observations, target)
            operation_latencies(trace_log)
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        return observations, elapsed

    columnar_cluster, columnar_sim_s = _best_cell("columnar")
    object_cluster, object_sim_s = _best_cell("object")
    # Warm both analytics paths before timing.
    _timed_analytics(object_cluster.trace_log, columnar=False)
    columnar_frame, columnar_analytics_s = min(
        (_timed_analytics(columnar_cluster.trace_log, columnar=True)
         for _ in range(BENCH_REPEATS)),
        key=lambda pair: pair[1],
    )
    fenwick_obs, fenwick_analytics_s = min(
        (_timed_analytics(object_cluster.trace_log, columnar=False)
         for _ in range(BENCH_REPEATS)),
        key=lambda pair: pair[1],
    )
    # Identical numbers, not just faster: operation ids are process-global,
    # so compare everything but the id.
    strip = lambda observations: [
        (obs.key, obs.t_since_commit_ms, obs.consistent, obs.version_lag)
        for obs in observations
    ]
    assert strip(columnar_frame.observations()) == strip(fenwick_obs)
    return {
        "writes": writes,
        "observations": len(columnar_frame),
        "columnar_sim_s": columnar_sim_s,
        "object_sim_s": object_sim_s,
        "columnar_analytics_s": columnar_analytics_s,
        "fenwick_analytics_s": fenwick_analytics_s,
        "speedup": fenwick_analytics_s / columnar_analytics_s,
        "total_wall_clock_ratio": (columnar_sim_s + columnar_analytics_s)
        / (object_sim_s + fenwick_analytics_s),
    }


def measure_calendar_queue_events_per_sec(
    writes: int = BENCH_WRITES, repeats: int = BENCH_REPEATS
) -> dict:
    """Calendar-queue vs tuple-heap engine throughput on the validation cell."""
    _run_cell_workload("batched", 200, seed=0)
    _run_cell_workload("calendar", 200, seed=0)
    batched = statistics.median(
        _run_cell_workload("batched", writes, seed=0) for _ in range(repeats)
    )
    calendar = statistics.median(
        _run_cell_workload("calendar", writes, seed=0) for _ in range(repeats)
    )
    return {
        "writes": writes,
        "repeats": repeats,
        "batched_events_per_sec": batched,
        "calendar_events_per_sec": calendar,
        "calendar_vs_heap_ratio": calendar / batched,
    }


def test_cluster_hot_path_speedup():
    """The overhauled engine must be >= 5x the pre-overhaul engine, serially."""
    result = measure_cluster_events_per_sec()
    speedup = result["speedup"]
    assert speedup >= 5.0, (
        f"expected >= 5x events/sec over the pre-overhaul simulator on the "
        f"validation workload, got {speedup:.2f}x "
        f"(reference {result['reference_events_per_sec']:,.0f}/s, "
        f"batched {result['batched_events_per_sec']:,.0f}/s)"
    )


def test_paper_scale_validation_cell_under_budget():
    """One full §5.2 cell at 50,000 writes stays inside the wall-clock budget.

    The budget is deliberately loose (shared CI runners); the point is the
    order of magnitude: pre-overhaul this cell took tens of minutes of
    simulation plus an O(writes x reads) analysis pass.
    """
    result = measure_paper_scale_validation_cell(writes=50_000)
    assert result["wall_clock_s"] < 600.0, (
        f"paper-scale cell took {result['wall_clock_s']:.0f}s "
        f"(workers={result['workers']})"
    )
    # ~400k staleness observations; the measured curve should now track the
    # prediction closely (paper: 0.28% average RMSE on its own cluster).
    assert result["observations"] >= 390_000
    assert result["consistency_rmse_pct"] < 2.0
    assert result["read_latency_nrmse_pct"] < 3.0
    assert result["write_latency_nrmse_pct"] < 5.0


def test_reduced_scale_validation_cell():
    """A >= 5,000-write cell (the CI-sized paper-scale stand-in) stays accurate."""
    result = measure_paper_scale_validation_cell(writes=5_000)
    assert result["wall_clock_s"] < 240.0
    assert result["observations"] >= 39_000
    assert result["consistency_rmse_pct"] < 4.0


def test_trace_analytics_speedup_at_paper_scale():
    """Columnar analytics >= 2x the Fenwick pass at the paper's 50,000 writes,
    with the combined simulate-plus-analyse wall clock no worse than the
    object-backend pipeline (small tolerance for shared-runner noise)."""
    result = measure_trace_analytics(writes=50_000)
    assert result["observations"] >= 390_000
    assert result["speedup"] >= 2.0, (
        f"expected >= 2x over the Fenwick staleness pass at 50k writes, got "
        f"{result['speedup']:.2f}x (columnar {result['columnar_analytics_s']:.3f}s, "
        f"fenwick {result['fenwick_analytics_s']:.3f}s)"
    )
    assert result["total_wall_clock_ratio"] <= 1.10, (
        f"columnar pipeline must not slow the combined run: ratio "
        f"{result['total_wall_clock_ratio']:.2f} "
        f"(sim {result['columnar_sim_s']:.1f}s vs {result['object_sim_s']:.1f}s)"
    )


def test_calendar_queue_throughput_sanity():
    """The calendar engine is an ordering-equivalent alternative, not a perf
    regression: it must stay within 2.5x of the tuple-heap engine's events/sec
    (it typically lands near parity; the generous floor absorbs CI noise)."""
    result = measure_calendar_queue_events_per_sec()
    ratio = result["calendar_vs_heap_ratio"]
    assert ratio >= 0.4, (
        f"calendar queue fell to {ratio:.2f}x of the heap engine "
        f"(calendar {result['calendar_events_per_sec']:,.0f}/s, "
        f"batched {result['batched_events_per_sec']:,.0f}/s)"
    )
