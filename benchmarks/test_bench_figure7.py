"""Benchmark regenerating Figure 7: quorum sizing (t-visibility vs replication factor)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="figure7")
def test_bench_figure7(benchmark, bench_trials):
    result = run_once(benchmark, "figure7", trials=bench_trials, rng=0)
    rows = {(row["environment"], row["n"]): row for row in result.rows}

    # §5.7: LNKD-DISK with R=W=1 drops from ~57.5% consistency at commit with
    # N=2 to ~21.1% with N=10.
    assert rows[("LNKD-DISK", 2)]["p_at_commit"] == pytest.approx(0.575, abs=0.06)
    assert rows[("LNKD-DISK", 10)]["p_at_commit"] == pytest.approx(0.21, abs=0.06)

    # Consistency at commit decreases in N for every environment (allowing a
    # small Monte Carlo tolerance for environments where the drop is tiny,
    # such as LNKD-SSD).
    for environment in ("LNKD-DISK", "LNKD-SSD", "WAN"):
        series = [rows[(environment, n)]["p_at_commit"] for n in (2, 3, 5, 10)]
        for earlier, later in zip(series, series[1:]):
            assert later <= earlier + 0.01
        assert series[-1] < series[0] + 1e-9

    # ...but the time to converge stays in a narrow band: §5.7 reports the
    # 99.9% t-visibility for LNKD-DISK ranging only from ~45 ms (N=2) to
    # ~54 ms (N=10).  Allow generous Monte Carlo slack while still requiring
    # the band to be narrow relative to the drop in commit-time consistency.
    disk_t = [rows[("LNKD-DISK", n)]["t_visibility_99.9_ms"] for n in (2, 3, 5, 10)]
    assert max(disk_t) < 2.0 * min(disk_t)
    assert 25.0 < min(disk_t) and max(disk_t) < 110.0
