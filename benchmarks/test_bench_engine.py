"""Benchmark: shared-sample sweep engine vs the per-configuration kernel loop.

The headline claim of the engine is that a Table-4-style sweep — one latency
environment, many (R, W) configurations — costs O(trials) sampling instead of
O(configs x trials).  This benchmark times an 8-configuration, 100k-trial
sweep both ways and asserts the engine is at least 3x faster, while its
per-configuration results stay within the equivalence-test tolerances of
independent kernel runs.

The measurement bodies live in module-level ``measure_*`` functions (returning
plain dicts) so that ``tools/bench_to_json.py`` can run the same scenarios and
emit ``BENCH_sweep.json`` for cross-PR perf tracking; the tests assert the
performance claims on those measurements.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.kernels.numba_backend import numba_available
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions, ymmr
from repro.montecarlo.convergence import wilson_interval
from repro.montecarlo.engine import SAMPLE_BLOCK, SweepEngine

TRIALS = 100_000
CONFIGS = (
    ReplicaConfig(3, 1, 1),
    ReplicaConfig(3, 1, 2),
    ReplicaConfig(3, 1, 3),
    ReplicaConfig(3, 2, 1),
    ReplicaConfig(3, 2, 2),
    ReplicaConfig(3, 2, 3),
    ReplicaConfig(3, 3, 1),
    ReplicaConfig(3, 3, 3),
)
TIMES_MS = (0.0, 1.0, 10.0, 100.0, 1000.0)


def _time_best_of(repeats: int, callable_) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def measure_engine_vs_per_config_loop() -> dict:
    """Time the 8-config sweep as a shared-sample engine run vs a kernel loop."""
    distributions = ymmr()

    def per_config_loop():
        generator = np.random.default_rng(1)
        return [
            WARSModel(distributions, config).sample(TRIALS, generator)
            for config in CONFIGS
        ]

    def engine_sweep():
        engine = SweepEngine(distributions, CONFIGS, times_ms=TIMES_MS)
        return engine.run(TRIALS, np.random.default_rng(1))

    # Warm both paths once (imports, allocator, scipy ppf caches).
    per_config_loop()
    engine_sweep()

    loop_seconds = _time_best_of(2, per_config_loop)
    engine_seconds = _time_best_of(2, engine_sweep)
    return {
        "configs": len(CONFIGS),
        "trials": TRIALS,
        "loop_seconds": loop_seconds,
        "engine_seconds": engine_seconds,
        "speedup": loop_seconds / engine_seconds,
    }


def measure_kernel_backend_speedup() -> dict:
    """Time the 8-config sweep under the numpy vs numba reduction backends.

    Requires numba; callers guard with
    :func:`repro.kernels.numba_backend.numba_available`.  The JIT is warmed
    (compiled) before timing so the measurement is steady-state throughput,
    not compilation.
    """
    distributions = ymmr()

    def sweep(backend: str):
        return SweepEngine(
            distributions, CONFIGS, times_ms=TIMES_MS, kernel_backend=backend
        ).run(TRIALS, 1)

    reference = sweep("numpy")
    fused = sweep("numba")  # warm: compiles the JIT kernel
    # The backends reduce identical sampled matrices; on continuous
    # production fits (no ties) the per-config counts must agree exactly.
    mismatches = sum(
        ours.consistent_counts != theirs.consistent_counts
        for ours, theirs in zip(fused, reference)
    )
    numpy_seconds = _time_best_of(2, lambda: sweep("numpy"))
    numba_seconds = _time_best_of(2, lambda: sweep("numba"))
    return {
        "configs": len(CONFIGS),
        "trials": TRIALS,
        "numpy_seconds": numpy_seconds,
        "numba_seconds": numba_seconds,
        "speedup": numpy_seconds / numba_seconds,
        "count_mismatches": mismatches,
    }


@pytest.mark.benchmark(group="engine")
def test_engine_speedup_over_per_config_loop():
    """The shared-sample engine beats the per-config kernel loop by >= 3x."""
    result = measure_engine_vs_per_config_loop()
    loop_seconds, engine_seconds = result["loop_seconds"], result["engine_seconds"]
    speedup = result["speedup"]
    print(
        f"\nper-config loop: {loop_seconds:.3f}s  engine: {engine_seconds:.3f}s  "
        f"speedup: {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"expected >= 3x speedup for an {len(CONFIGS)}-config {TRIALS}-trial sweep, "
        f"got {speedup:.2f}x ({loop_seconds:.3f}s vs {engine_seconds:.3f}s)"
    )


@pytest.mark.benchmark(group="engine")
@pytest.mark.skipif(
    not numba_available(),
    reason="numba is not installed; the backend falls back to numpy "
    "(fallback behaviour is covered by tier-1 tests)",
)
def test_numba_kernel_speedup_on_eight_config_sweep():
    """The fused prange JIT kernel beats the NumPy reduction by >= 2x on the
    8-config, 100k-trial sweep — the acceptance bar for the backend — while
    producing identical consistency counts from the shared sampled matrices."""
    result = measure_kernel_backend_speedup()
    print(
        f"\nnumpy kernel: {result['numpy_seconds']:.3f}s  "
        f"numba kernel: {result['numba_seconds']:.3f}s  "
        f"speedup: {result['speedup']:.2f}x"
    )
    assert result["count_mismatches"] == 0
    assert result["speedup"] >= 2.0, (
        f"expected the fused numba kernel to be >= 2x faster than the NumPy "
        f"reduction on an {len(CONFIGS)}-config {TRIALS}-trial sweep, got "
        f"{result['speedup']:.2f}x ({result['numpy_seconds']:.3f}s vs "
        f"{result['numba_seconds']:.3f}s)"
    )


def measure_sharded_speedup(workers: int = 4) -> dict:
    """Time the 8-config sweep serial vs sharded across ``workers`` processes.

    Block-sized chunks give the pool 13 tasks to balance; the coordinator's
    overhead is one inline chunk (layout freezing) plus per-chunk accumulator
    pickling.  Also counts result mismatches (the merge contract requires
    zero).
    """
    distributions = ymmr()

    def sweep(worker_count: int):
        return SweepEngine(
            distributions,
            CONFIGS,
            times_ms=TIMES_MS,
            chunk_size=SAMPLE_BLOCK,
            workers=worker_count,
        ).run(TRIALS, 1)

    # Warm both paths (imports, allocator, fork machinery).
    serial_result = sweep(1)
    sharded_result = sweep(workers)
    mismatches = sum(
        ours.consistent_counts != theirs.consistent_counts
        or any(
            ours.read_latency_percentile(p) != theirs.read_latency_percentile(p)
            or ours.write_latency_percentile(p) != theirs.write_latency_percentile(p)
            for p in (50.0, 99.0, 99.9)
        )
        for ours, theirs in zip(serial_result, sharded_result)
    )
    serial_seconds = _time_best_of(2, lambda: sweep(1))
    sharded_seconds = _time_best_of(2, lambda: sweep(workers))
    return {
        "configs": len(CONFIGS),
        "trials": TRIALS,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": serial_seconds / sharded_seconds,
        "result_mismatches": mismatches,
    }


@pytest.mark.benchmark(group="engine")
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 CPU cores; equivalence is covered by "
    "tier-1 tests on any machine",
)
def test_sharded_engine_speedup_at_four_workers():
    """4 worker processes beat the serial engine by >= 1.8x on a Table-4-style
    sweep (8 configs, 100k trials), with bit-for-bit identical results.
    """
    result = measure_sharded_speedup(workers=4)
    assert result["result_mismatches"] == 0
    serial_seconds, sharded_seconds = result["serial_seconds"], result["sharded_seconds"]
    speedup = result["speedup"]
    print(
        f"\nserial: {serial_seconds:.3f}s  4 workers: {sharded_seconds:.3f}s  "
        f"speedup: {speedup:.2f}x"
    )
    assert speedup >= 1.8, (
        f"expected >= 1.8x speedup at 4 workers for an {len(CONFIGS)}-config "
        f"{TRIALS}-trial sweep, got {speedup:.2f}x "
        f"({serial_seconds:.3f}s vs {sharded_seconds:.3f}s)"
    )


@pytest.mark.benchmark(group="engine")
def test_adaptive_grid_early_stopping_beats_fixed_grid():
    """Adaptive refinement reaches the Wilson tolerance in fewer samples than
    a fixed grid of equal resolution.

    The scenario is chosen so the fixed grid pays for what adaptivity
    avoids: N=10 with slow writes puts the commit-time consistency around
    0.15 and the curve rises gradually, so a 4 ms fixed grid over the whole
    span necessarily probes the p ~ 0.5 region where Wilson intervals are
    widest — every one of those probes must individually converge.  The
    adaptive run probes only {0, span} plus the refined probes near the
    0.999 crossing (p(1-p) tiny at both extremes), and its stop gate still
    delivers the same guarantee for the number that matters: the crossing is
    bracketed to the same 4 ms resolution by tolerance-tight probes.
    """
    config = ReplicaConfig(10, 1, 1)
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(1.0),
        name="bench-adaptive",
    )
    resolution, span, tolerance, budget = 4.0, 256.0, 0.002, 1_000_000
    fixed = SweepEngine(
        distributions,
        (config,),
        times_ms=tuple(np.arange(0.0, span + resolution, resolution)),
        chunk_size=SAMPLE_BLOCK,
        tolerance=tolerance,
        min_trials=1,
    ).run(budget, 11)
    adaptive = SweepEngine(
        distributions,
        (config,),
        times_ms=(0.0, span),
        chunk_size=SAMPLE_BLOCK,
        tolerance=tolerance,
        min_trials=1,
        target_probability=0.999,
        probe_resolution_ms=resolution,
    ).run(budget, 11)
    assert fixed.stopped_early and fixed.converged
    assert adaptive.stopped_early and adaptive.converged
    print(
        f"\nfixed grid ({len(fixed.results[0].times_ms)} probes): "
        f"{fixed.trials_run} trials  adaptive "
        f"({len(adaptive.results[0].times_ms)} base + "
        f"{len(adaptive.results[0].refined_times_ms)} refined): "
        f"{adaptive.trials_run} trials"
    )
    assert adaptive.trials_run < fixed.trials_run, (
        f"adaptive refinement should stop sooner than the fixed grid at equal "
        f"resolution, got {adaptive.trials_run} vs {fixed.trials_run}"
    )
    # Refinement actually engaged and resolved the crossing to resolution.
    summary = adaptive.results[0]
    assert summary.refined_times_ms
    low, high = summary.t_visibility_bracket(0.999)
    assert 0.0 < high - low <= resolution
    # Both estimates agree on where the crossing is (within a few probe
    # spans of Monte Carlo noise; the exact reference is ~134 ms).
    assert summary.t_visibility(0.999) == pytest.approx(
        fixed.results[0].t_visibility(0.999), abs=3 * resolution
    )


@pytest.mark.benchmark(group="engine")
def test_engine_results_match_kernel_within_tolerances():
    """Per-config engine results match independent kernel runs statistically."""
    distributions = ymmr()
    sweep = SweepEngine(distributions, CONFIGS, times_ms=TIMES_MS).run(TRIALS, 1)
    # Same seed, samples kept: identical trials, exact percentile queries.
    exact_sweep = SweepEngine(distributions, CONFIGS, times_ms=TIMES_MS, keep_samples=True).run(
        TRIALS, 1
    )
    for summary, exact in zip(sweep, exact_sweep):
        independent = WARSModel(distributions, summary.config).sample(TRIALS, 2)
        # Consistency curves agree within combined 99.9% Wilson half-widths.
        for t_ms in TIMES_MS:
            estimate = summary.estimate_at(t_ms, confidence=0.999)
            kernel_p = independent.consistency_probability(t_ms)
            kernel_margin = wilson_interval(
                int(round(kernel_p * TRIALS)), TRIALS, 0.999
            ).margin
            assert abs(estimate.probability - kernel_p) <= estimate.margin + kernel_margin
        # The percentile sketches track the exact per-trial percentiles of
        # the same trials within 2% — the engine-specific approximation
        # error, isolated from the seed-to-seed Monte Carlo noise of YMMR's
        # heavy write tail.
        for percentile in (50.0, 99.0, 99.9):
            assert summary.read_latency_percentile(percentile) == pytest.approx(
                exact.read_latency_percentile(percentile), rel=0.02
            )
            assert summary.write_latency_percentile(percentile) == pytest.approx(
                exact.write_latency_percentile(percentile), rel=0.02
            )
        # Against an independent seed, percentiles agree within the
        # seed-to-seed Monte Carlo noise.  YMMR's write CDF is nearly flat
        # around p99 (the fsync tail kicks in), so the write tail quantiles
        # are intrinsically noisy across seeds and get a wider allowance.
        for percentile in (50.0, 95.0, 99.0):
            assert summary.read_latency_percentile(percentile) == pytest.approx(
                independent.read_latency_percentile(percentile), rel=0.05
            )
        for percentile in (50.0, 95.0):
            assert summary.write_latency_percentile(percentile) == pytest.approx(
                independent.write_latency_percentile(percentile), rel=0.05
            )
        for percentile in (99.0, 99.9):
            assert summary.write_latency_percentile(percentile) == pytest.approx(
                independent.write_latency_percentile(percentile), rel=0.15
            )
