"""Benchmarks for the closed-form results: §3.1 k-staleness, §3.2 monotonic reads, §3.3 load."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="section3")
def test_bench_section3_kstaleness(benchmark):
    """§3.1 in-text table: P(read within k versions) for the example configurations."""
    result = run_once(benchmark, "section3-kstaleness")
    row = next(r for r in result.rows if r["config"] == "N=3 R=1 W=1")
    # Paper: within 3 versions 0.703..., within 10 versions > 0.98.
    assert row["p_within_3"] == pytest.approx(0.7037, abs=1e-3)
    assert row["p_within_10"] > 0.98


@pytest.mark.benchmark(group="section3")
def test_bench_section3_monotonic(benchmark):
    """§3.2 monotonic reads: more writes between client reads raise the exponent k,
    so the monotonic-reads probability grows with the write/read rate ratio."""
    result = run_once(benchmark, "section3-monotonic")
    series = [
        row for row in result.rows if row["config"] == "N=3 R=1 W=1"
    ]
    ordered = sorted(series, key=lambda row: row["writes_per_read"])
    probabilities = [row["p_monotonic"] for row in ordered]
    assert probabilities == sorted(probabilities)
    assert probabilities[0] < probabilities[-1]


@pytest.mark.benchmark(group="section3")
def test_bench_section3_load(benchmark):
    """§3.3 load bounds are produced for every (N, p) cell with k sweeps."""
    result = run_once(benchmark, "section3-load")
    assert len(result.rows) == 9
    for row in result.rows:
        assert 0.0 <= row["load_k=1"] <= 1.0
        assert 0.0 <= row["load_k=10"] <= 1.0
