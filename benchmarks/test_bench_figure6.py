"""Benchmark regenerating Figure 6: t-visibility for the production fits."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="figure6")
def test_bench_figure6(benchmark, bench_trials):
    result = run_once(benchmark, "figure6", trials=bench_trials, rng=0)
    rows = {(row["environment"], row["config"]): row for row in result.rows}

    # §5.6 headline shapes for N=3, R=W=1.
    ssd = rows[("LNKD-SSD", "N=3 R=1 W=1")]
    disk = rows[("LNKD-DISK", "N=3 R=1 W=1")]
    ymmr = rows[("YMMR", "N=3 R=1 W=1")]
    wan = rows[("WAN", "N=3 R=1 W=1")]

    # LNKD-SSD: ~97.4% immediately after commit, ~99.999% within 5 ms.
    assert ssd["p_at_commit"] == pytest.approx(0.974, abs=0.02)
    assert ssd["p@t=5ms"] > 0.999

    # LNKD-DISK: ~43.9% immediately, ~92.5% ten ms later.
    assert disk["p_at_commit"] == pytest.approx(0.44, abs=0.06)
    assert 0.85 < disk["p@t=10ms"] < 0.98

    # YMMR: ~89% immediately but a very long tail (99.9% takes ~1 second).
    assert ymmr["p_at_commit"] == pytest.approx(0.89, abs=0.05)
    assert ymmr["t_visibility_99.9_ms"] > 500.0

    # WAN: ~33% immediately; most replicas only catch up after the 75 ms hop.
    assert wan["p_at_commit"] == pytest.approx(0.33, abs=0.06)
    assert wan["p@t=100ms"] > 0.9

    # Increasing either R or W improves consistency at commit for every environment.
    for environment in ("LNKD-SSD", "LNKD-DISK", "YMMR", "WAN"):
        base = rows[(environment, "N=3 R=1 W=1")]["p_at_commit"]
        assert rows[(environment, "N=3 R=1 W=2")]["p_at_commit"] >= base - 0.02
        assert rows[(environment, "N=3 R=2 W=1")]["p_at_commit"] >= base - 0.02
