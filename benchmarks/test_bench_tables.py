"""Benchmarks regenerating Table 1-3 (latency fits) and Table 4 (latency vs t-visibility)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="tables")
def test_bench_table1_2_3(benchmark, bench_trials):
    """Tables 1-3: the mixture fits summarised at the published percentiles."""
    result = run_once(benchmark, "table1-2-3", trials=bench_trials, rng=0)
    by_fit = {row["fit"]: row for row in result.rows}
    # The SSD one-way fit is sub-millisecond at the median (Table 3 / §5.6
    # quotes a 0.489 ms median operation latency).
    assert by_fit["LNKD-SSD W=A=R=S"]["fit_p95_ms"] < 2.0
    # The Yammer write fit has a multi-hundred-millisecond 99.9th percentile.
    assert by_fit["YMMR W"]["fit_p99.9_ms"] > 100.0


@pytest.mark.benchmark(group="tables")
def test_bench_table3_refit(benchmark):
    """§5.5: re-fitting mixtures from the published percentile summaries."""
    result = run_once(benchmark, "table3-refit", rng=0)
    for row in result.rows:
        # The paper's fits achieve 0.06%-1.84% N-RMSE; the bundled optimiser is
        # given a small budget, so accept anything under 15%.
        assert row["n_rmse_pct"] < 15.0


@pytest.mark.benchmark(group="tables")
def test_bench_table4(benchmark, bench_trials):
    """Table 4: 99.9% t-visibility vs 99.9th-percentile operation latency."""
    result = run_once(benchmark, "table4", trials=bench_trials, rng=0)
    rows = {(row["environment"], row["config"]): row for row in result.rows}

    # Strict quorums never report an inconsistency window.
    for row in result.rows:
        if row["strict_quorum"]:
            assert row["t_visibility_99.9_ms"] == 0.0

    # YMMR headline numbers (paper: R=W=1 -> ~16 ms latency, ~1364 ms window;
    # R=2, W=1 -> ~43 ms latency, ~202 ms window; cheapest strict quorum
    # R=3, W=1 -> ~230 ms combined latency).
    ymmr_11 = rows[("YMMR", "N=3 R=1 W=1")]
    ymmr_21 = rows[("YMMR", "N=3 R=2 W=1")]
    ymmr_31 = rows[("YMMR", "N=3 R=3 W=1")]
    assert ymmr_11["combined_p99.9_ms"] < 40.0
    assert ymmr_11["t_visibility_99.9_ms"] > 500.0
    assert ymmr_21["t_visibility_99.9_ms"] < 600.0
    assert ymmr_21["combined_p99.9_ms"] < 0.5 * ymmr_31["combined_p99.9_ms"]

    # LNKD-SSD: R=2, W=1 already gives (effectively) no staleness window while
    # R=W=1 keeps a small one (paper: 1.85 ms).
    ssd_11 = rows[("LNKD-SSD", "N=3 R=1 W=1")]
    ssd_21 = rows[("LNKD-SSD", "N=3 R=2 W=1")]
    assert ssd_11["t_visibility_99.9_ms"] < 10.0
    assert ssd_21["t_visibility_99.9_ms"] <= ssd_11["t_visibility_99.9_ms"]

    # LNKD-DISK: R=W=1 trades ~45 ms of staleness window for a large write
    # latency win over the W=3 strict configuration.
    disk_11 = rows[("LNKD-DISK", "N=3 R=1 W=1")]
    disk_13 = rows[("LNKD-DISK", "N=3 R=1 W=3")]
    assert 15.0 < disk_11["t_visibility_99.9_ms"] < 120.0
    assert disk_11["write_p99.9_ms"] < 0.5 * disk_13["write_p99.9_ms"]

    # WAN: any quorum larger than one forces a WAN round trip on that path.
    wan_11 = rows[("WAN", "N=3 R=1 W=1")]
    wan_21 = rows[("WAN", "N=3 R=2 W=1")]
    assert wan_21["read_p99.9_ms"] > wan_11["read_p99.9_ms"] + 50.0
