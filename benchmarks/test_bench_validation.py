"""Benchmark regenerating the §5.2 validation: WARS prediction vs the cluster substrate."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="validation")
def test_bench_validation_grid(benchmark):
    """Predicted-vs-measured error over the §5.2 exponential latency grid.

    The paper reports an average t-visibility RMSE of 0.28% over 50,000 writes
    per grid point; at the benchmark's reduced workload (200 writes per point)
    the residual is dominated by sampling noise, so the assertion budget is a
    few percent rather than a fraction of a percent.
    """
    result = run_once(benchmark, "validation", trials=200, rng=0, prediction_trials=60_000)
    # Full §5.2 grid: three replication configurations x 3 W means x 3 ARS means.
    assert len(result.rows) == 27
    assert {(row["n"], row["r"], row["w"]) for row in result.rows} == {
        (3, 1, 1),
        (3, 1, 2),
        (3, 2, 1),
    }
    mean_rmse = sum(row["consistency_rmse_pct"] for row in result.rows) / len(result.rows)
    assert mean_rmse < 8.0
    for row in result.rows:
        assert row["consistency_rmse_pct"] < 15.0
        assert row["read_latency_nrmse_pct"] < 10.0
        assert row["write_latency_nrmse_pct"] < 15.0
