"""Benchmark regenerating Figure 4 and the §5.3 write-variance sweep."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="figure4")
def test_bench_figure4(benchmark, bench_trials):
    """Figure 4: t-visibility under exponential W with A=R=S exp(mean 1 ms)."""
    result = run_once(benchmark, "figure4", trials=bench_trials, rng=0)
    by_ratio = {row["w_to_ars_ratio"]: row for row in result.rows}

    # Paper §5.3: W variance 1/16 (ratio 1:4) gives ~94% consistency right
    # after the write and ~99.9% after 1 ms; W ten times slower (1:0.10) gives
    # ~41% immediately and needs ~65 ms for 99.9%.
    assert by_ratio["1:4"]["p@t=0ms"] > 0.90
    assert by_ratio["1:4"]["p@t=2ms"] > 0.99
    assert by_ratio["1:0.10"]["p@t=0ms"] < 0.55
    assert 30.0 < by_ratio["1:0.10"]["t_visibility_99.9_ms"] < 120.0

    # Consistency at commit decreases monotonically as writes get slower.
    ordered = [by_ratio[label]["p@t=0ms"] for label, _ in _RATIO_ORDER]
    assert ordered == sorted(ordered, reverse=True)


_RATIO_ORDER = (
    ("1:4", 4.0),
    ("1:2", 2.0),
    ("1:1", 1.0),
    ("1:0.50", 0.5),
    ("1:0.20", 0.2),
    ("1:0.10", 0.1),
)


@pytest.mark.benchmark(group="figure4")
def test_bench_section53_variance(benchmark, bench_trials):
    """§5.3: with fixed write mean, higher write variance worsens t-visibility."""
    result = run_once(benchmark, "section5.3-variance", trials=bench_trials, rng=0)
    rows = {row["write_distribution"]: row for row in result.rows}
    assert (
        rows["normal sd=5"]["p_consistent_at_commit"]
        < rows["normal sd=0.5"]["p_consistent_at_commit"]
    )
    assert (
        rows["wide uniform"]["t_visibility_99.9_ms"]
        >= rows["constant-ish uniform"]["t_visibility_99.9_ms"]
    )
