"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a single numbered figure; they quantify the
assumptions the paper makes (and that this reproduction mirrors):

* read repair and hinted handoff disabled (conservative anti-entropy model);
* reads fanned out to all N replicas (Dynamo) vs only R (Voldemort);
* Equation 4's instantaneous-read assumption vs the full WARS Monte Carlo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.staleness import observe_staleness
from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.core.tvisibility import EmpiricalPropagation, visibility_lower_bound
from repro.core.wars import WARSModel
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload


def _slow_write_distributions() -> WARSDistributions:
    return WARSDistributions(
        w=ExponentialLatency.from_mean(50.0),
        a=ConstantLatency(0.5),
        r=ConstantLatency(0.5),
        s=ConstantLatency(0.5),
    )


def _staleness_rate(read_repair: bool, fanout_all: bool, seed: int = 17) -> float:
    cluster = DynamoCluster(
        ReplicaConfig(3, 1, 1),
        _slow_write_distributions(),
        read_repair=read_repair,
        read_fanout_all=fanout_all,
        rng=seed,
    )
    operations = validation_workload(
        key="k", writes=300, write_interval_ms=40.0, read_offsets_ms=(1.0, 10.0)
    )
    WorkloadRunner(cluster).run(operations)
    observations = observe_staleness(cluster.trace_log, key="k")
    return 1.0 - float(np.mean([obs.consistent for obs in observations]))


@pytest.mark.benchmark(group="ablations")
def test_bench_read_repair_ablation(benchmark):
    """Read repair (extra anti-entropy beyond WARS) only reduces observed staleness."""

    def run() -> tuple[float, float]:
        return _staleness_rate(read_repair=False, fanout_all=True), _staleness_rate(
            read_repair=True, fanout_all=True
        )

    without_repair, with_repair = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["staleness_without_repair"] = without_repair
    benchmark.extra_info["staleness_with_repair"] = with_repair
    assert without_repair > 0.0
    assert with_repair <= without_repair + 0.02


@pytest.mark.benchmark(group="ablations")
def test_bench_read_fanout_ablation(benchmark):
    """Voldemort-style fanout (send reads to only R replicas) leaves staleness unchanged.

    §2.3: provided staleness probabilities are independent across requests,
    contacting R of N replicas instead of N of N does not affect staleness —
    the coordinator only ever waits for R responses.
    """

    def run() -> tuple[float, float]:
        return _staleness_rate(read_repair=False, fanout_all=True), _staleness_rate(
            read_repair=False, fanout_all=False
        )

    dynamo_style, voldemort_style = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["staleness_fanout_all"] = dynamo_style
    benchmark.extra_info["staleness_fanout_r"] = voldemort_style
    assert dynamo_style == pytest.approx(voldemort_style, abs=0.08)


@pytest.mark.benchmark(group="ablations")
def test_bench_equation4_vs_wars(benchmark):
    """Equation 4 (instantaneous reads) is an upper bound on staleness vs full WARS.

    The closed-form bound ignores the extra propagation time writes gain while
    read requests and responses are in flight, so its predicted probability of
    consistency is never higher than the Monte Carlo estimate.
    """
    config = ReplicaConfig(3, 1, 1)
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0), other=ExponentialLatency.from_mean(2.0)
    )

    def run() -> list[tuple[float, float, float]]:
        result = WARSModel(distributions, config).sample(60_000, rng=3)
        arrivals = result.write_arrivals_ms - result.commit_latencies_ms[:, None]
        propagation = EmpiricalPropagation(arrival_delays_ms=arrivals)
        rows = []
        for t_ms in (0.0, 5.0, 10.0, 20.0, 50.0):
            rows.append(
                (
                    t_ms,
                    visibility_lower_bound(config, propagation, t_ms),
                    result.consistency_probability(t_ms),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {"t_ms": t, "equation4_lower_bound": eq4, "wars_monte_carlo": mc} for t, eq4, mc in rows
    ]
    for _, eq4_bound, wars_estimate in rows:
        assert eq4_bound <= wars_estimate + 0.02
