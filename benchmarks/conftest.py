"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper via the
experiment registry, runs it exactly once under ``pytest-benchmark`` (the
interesting measurement is the experiment runtime, not per-call jitter), and
attaches the resulting rows to ``benchmark.extra_info`` so the numbers appear
in ``--benchmark-json`` output and can be diffed across runs.

Everything under ``benchmarks/`` is automatically marked ``slow`` (see
``pytest_collection_modifyitems`` below) and is therefore deselected by the
tier-1 ``pytest -x -q`` run (the repository ``pytest.ini`` adds
``-m "not slow"``).  Run the benchmarks with::

    pytest -m slow --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from repro.experiments.registry import ExperimentResult, run_experiment  # noqa: E402

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items) -> None:
    """Mark every test under benchmarks/ as ``slow`` so tier-1 skips them."""
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


def run_once(benchmark, experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment exactly once under the benchmark fixture."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs=kwargs, rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["paper_artifact"] = result.paper_artifact
    benchmark.extra_info["rows"] = [
        {key: (value if isinstance(value, (int, float, str, bool)) else str(value)) for key, value in row.items()}
        for row in result.rows
    ]
    return result


@pytest.fixture
def bench_trials() -> int:
    """Monte Carlo fidelity used by the benchmarks (lower than the paper's 50k-1M)."""
    return 50_000
