"""Setup shim.

The project metadata lives in ``pyproject.toml`` (PEP 621).  This file exists
so that ``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required for PEP 660 editable installs.
"""

from setuptools import setup

setup()
