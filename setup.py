"""Setup shim.

The project metadata lives in ``setup.cfg`` (declarative setuptools) rather
than a PEP 621 ``pyproject.toml`` deliberately: with no ``pyproject.toml``
present, ``pip install -e .`` takes the legacy ``setup.py develop`` path,
which works in offline environments whose setuptools lacks the ``wheel``
package required for PEP 517/660 editable builds.
"""

from setuptools import setup

setup()
