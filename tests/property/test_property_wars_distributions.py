"""Property-based tests for latency distributions and the WARS Monte Carlo kernel."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.latency.distributions import (
    ConstantLatency,
    ExponentialLatency,
    ParetoLatency,
    UniformLatency,
)
from repro.latency.mixture import pareto_exponential_mixture
from repro.latency.production import WARSDistributions


def _distribution_strategy():
    """A strategy over a representative set of latency distributions."""
    return st.one_of(
        st.floats(min_value=0.05, max_value=50.0).map(ExponentialLatency.from_mean),
        st.tuples(
            st.floats(min_value=0.05, max_value=10.0), st.floats(min_value=1.1, max_value=8.0)
        ).map(lambda args: ParetoLatency(xm=args[0], alpha=args[1])),
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0), st.floats(min_value=0.1, max_value=10.0)
        ).map(lambda args: UniformLatency(low=args[0], high=args[0] + args[1])),
        st.floats(min_value=0.0, max_value=20.0).map(ConstantLatency),
        st.tuples(
            st.floats(min_value=0.5, max_value=0.99),
            st.floats(min_value=0.1, max_value=5.0),
            st.floats(min_value=1.5, max_value=8.0),
            st.floats(min_value=0.01, max_value=2.0),
        ).map(lambda args: pareto_exponential_mixture(*args)),
    )


class TestDistributionProperties:
    @settings(max_examples=60)
    @given(distribution=_distribution_strategy(), seed=st.integers(min_value=0, max_value=2**31))
    def test_samples_are_finite_and_non_negative(self, distribution, seed):
        samples = distribution.sample(500, np.random.default_rng(seed))
        assert samples.shape == (500,)
        assert np.all(np.isfinite(samples))
        assert np.all(samples >= 0.0)

    @settings(max_examples=60)
    @given(
        distribution=_distribution_strategy(),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_cdf_of_quantile_round_trips(self, distribution, q):
        x = distribution.ppf(q)
        # CDF is non-decreasing, so the CDF at the q-quantile is at least q
        # minus sampling error for distributions with sampled fallbacks.
        assert distribution.cdf(x) >= q - 0.05

    @settings(max_examples=40)
    @given(
        distribution=_distribution_strategy(),
        lo=st.floats(min_value=0.01, max_value=0.5),
        hi=st.floats(min_value=0.5, max_value=0.99),
    )
    def test_quantiles_monotone(self, distribution, lo, hi):
        assert distribution.ppf(lo) <= distribution.ppf(hi) + 1e-9


@st.composite
def wars_configs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    r = draw(st.integers(min_value=1, max_value=n))
    w = draw(st.integers(min_value=1, max_value=n))
    return ReplicaConfig(n=n, r=r, w=w)


class TestWARSKernelProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        config=wars_configs(),
        write_mean=st.floats(min_value=0.1, max_value=30.0),
        other_mean=st.floats(min_value=0.1, max_value=10.0),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_invariants_hold_for_any_configuration(self, config, write_mean, other_mean, seed):
        distributions = WARSDistributions.write_specialised(
            write=ExponentialLatency.from_mean(write_mean),
            other=ExponentialLatency.from_mean(other_mean),
        )
        result = WARSModel(distributions, config).sample(2_000, rng=seed)

        # Latencies are positive and finite.
        assert np.all(result.commit_latencies_ms > 0)
        assert np.all(result.read_latencies_ms > 0)
        assert np.all(np.isfinite(result.staleness_thresholds_ms))

        # Probability of consistency is a CDF in t: bounded and non-decreasing.
        p0 = result.consistency_probability(0.0)
        p_large = result.consistency_probability(1e6)
        assert 0.0 <= p0 <= p_large <= 1.0

        # Strict quorums are always consistent at commit time.
        if config.is_strict:
            assert p0 == 1.0

        # t-visibility targets are ordered in the target probability.
        assert result.t_visibility(0.5) <= result.t_visibility(0.99) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        write_mean=st.floats(min_value=0.5, max_value=20.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_monte_carlo_matches_closed_form_without_propagation(self, write_mean, seed):
        """When reads race writes with zero elapsed time and instant read legs,
        consistency at t=0 can never drop below the Equation 1 lower bound
        1 - C(N-W,R)/C(N,R); sampling noise stays well inside 5 points."""
        from repro.core.kstaleness import consistency_probability

        config = ReplicaConfig(3, 1, 1)
        distributions = WARSDistributions.write_specialised(
            write=ExponentialLatency.from_mean(write_mean),
            other=ConstantLatency(0.0),
        )
        result = WARSModel(distributions, config).sample(4_000, rng=seed)
        closed_form = consistency_probability(config, 1)
        assert result.consistency_probability(0.0) >= closed_form - 0.05
