"""Property-based tests for the closed-form PBS models (Equations 1-5)."""

from __future__ import annotations

from math import comb

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kstaleness import (
    consistency_probability,
    probability_nonintersection,
    staleness_probability,
)
from repro.core.ktstaleness import kt_staleness_probability
from repro.core.load import k_staleness_load
from repro.core.monotonic import monotonic_reads_probability
from repro.core.quorum import ReplicaConfig
from repro.core.tvisibility import ExponentialPropagation, staleness_upper_bound


@st.composite
def replica_configs(draw, max_n: int = 12) -> ReplicaConfig:
    """Any valid (N, R, W) configuration up to ``max_n`` replicas."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    r = draw(st.integers(min_value=1, max_value=n))
    w = draw(st.integers(min_value=1, max_value=n))
    return ReplicaConfig(n=n, r=r, w=w)


class TestEquationOneProperties:
    @given(config=replica_configs())
    def test_probability_in_unit_interval(self, config):
        p = probability_nonintersection(config)
        assert 0.0 <= p <= 1.0

    @given(config=replica_configs())
    def test_strict_iff_zero(self, config):
        p = probability_nonintersection(config)
        if config.is_strict:
            assert p == 0.0
        else:
            assert p > 0.0

    @given(config=replica_configs())
    def test_symmetry_in_r_and_w(self, config):
        swapped = ReplicaConfig(n=config.n, r=config.w, w=config.r)
        assert probability_nonintersection(config) == (
            probability_nonintersection(swapped)
        )

    @given(config=replica_configs())
    def test_matches_hypergeometric_identity(self, config):
        # C(N-W, R)/C(N, R) == C(N-R, W)/C(N, W) when both sides are defined.
        n, r, w = config.n, config.r, config.w
        lhs = probability_nonintersection(config)
        rhs = (comb(n - r, w) / comb(n, w)) if n - r >= 0 else 0.0
        assert abs(lhs - rhs) < 1e-12

    @given(config=replica_configs(max_n=8))
    def test_growing_read_quorum_never_hurts(self, config):
        if config.r < config.n:
            bigger = config.with_r(config.r + 1)
            assert probability_nonintersection(bigger) <= probability_nonintersection(config)

    @given(config=replica_configs(max_n=8))
    def test_growing_write_quorum_never_hurts(self, config):
        if config.w < config.n:
            bigger = config.with_w(config.w + 1)
            assert probability_nonintersection(bigger) <= probability_nonintersection(config)


class TestEquationTwoProperties:
    @given(config=replica_configs(), k=st.integers(min_value=1, max_value=50))
    def test_staleness_bounded_and_complementary(self, config, k):
        stale = staleness_probability(config, k)
        assert 0.0 <= stale <= 1.0
        assert abs(stale + consistency_probability(config, k) - 1.0) < 1e-12

    @given(config=replica_configs(), k=st.integers(min_value=1, max_value=30))
    def test_monotone_nonincreasing_in_k(self, config, k):
        assert staleness_probability(config, k + 1) <= staleness_probability(config, k) + 1e-15

    @given(config=replica_configs(), k=st.integers(min_value=1, max_value=20))
    def test_exponentiation_identity(self, config, k):
        base = probability_nonintersection(config)
        assert abs(staleness_probability(config, k) - base**k) < 1e-12


class TestMonotonicReadsProperties:
    @given(
        config=replica_configs(),
        write_rate=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        read_rate=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
    )
    def test_probability_in_unit_interval(self, config, write_rate, read_rate):
        p = monotonic_reads_probability(config, write_rate, read_rate)
        assert 0.0 <= p <= 1.0

    @given(
        config=replica_configs(),
        write_rate=st.floats(min_value=0.0, max_value=1e3),
        read_rate=st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_at_least_single_version_consistency(self, config, write_rate, read_rate):
        # Monotonic reads (k >= 1 exponent) is never harder than k=1 freshness.
        assert monotonic_reads_probability(config, write_rate, read_rate) >= (
            consistency_probability(config, 1) - 1e-12
        )


class TestLoadProperties:
    @given(
        n=st.integers(min_value=1, max_value=100),
        p=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(min_value=1, max_value=50),
    )
    def test_load_bound_in_unit_interval(self, n, p, k):
        load = k_staleness_load(n, p, k)
        assert 0.0 <= load <= 1.0

    @given(
        n=st.integers(min_value=1, max_value=50),
        p=st.floats(min_value=0.0, max_value=0.999),
        k=st.integers(min_value=1, max_value=20),
    )
    def test_bound_never_exceeds_one_over_sqrt_n(self, n, p, k):
        assert k_staleness_load(n, p, k) <= 1.0 / np.sqrt(n) + 1e-12


class TestTVisibilityProperties:
    @settings(max_examples=50)
    @given(
        config=replica_configs(max_n=8),
        rate=st.floats(min_value=1e-3, max_value=10.0),
        t_ms=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_equation4_bounded_by_equation1(self, config, rate, t_ms):
        propagation = ExponentialPropagation(rate_per_ms=rate)
        bound = staleness_upper_bound(config, propagation, t_ms)
        assert 0.0 <= bound <= probability_nonintersection(config) + 1e-12

    @settings(max_examples=50)
    @given(
        config=replica_configs(max_n=6),
        rate=st.floats(min_value=1e-3, max_value=5.0),
        t_ms=st.floats(min_value=0.0, max_value=500.0),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_equation5_monotone_in_k_and_bounded(self, config, rate, t_ms, k):
        propagation = ExponentialPropagation(rate_per_ms=rate)
        p_k = kt_staleness_probability(config, propagation, k, t_ms)
        p_k1 = kt_staleness_probability(config, propagation, k + 1, t_ms)
        assert 0.0 <= p_k <= 1.0
        assert p_k1 <= p_k + 1e-12
