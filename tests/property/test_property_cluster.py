"""Property-based tests for cluster data structures: versioning, ring, Merkle trees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.merkle import MerkleTree
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.versioning import Causality, VectorClock, Version

_node_names = st.text(alphabet="abcdefghij", min_size=1, max_size=4)
_vector_clocks = st.dictionaries(_node_names, st.integers(min_value=0, max_value=20), max_size=5).map(
    VectorClock
)


class TestVectorClockProperties:
    @given(a=_vector_clocks, b=_vector_clocks)
    def test_merge_is_commutative(self, a, b):
        assert a.merge(b).counters == b.merge(a).counters

    @given(a=_vector_clocks, b=_vector_clocks, c=_vector_clocks)
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c).counters == a.merge(b.merge(c)).counters

    @given(a=_vector_clocks)
    def test_merge_is_idempotent(self, a):
        assert a.merge(a).counters == a.counters

    @given(a=_vector_clocks, b=_vector_clocks)
    def test_merge_dominates_both_inputs(self, a, b):
        merged = a.merge(b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    @given(a=_vector_clocks, b=_vector_clocks)
    def test_compare_is_antisymmetric(self, a, b):
        forward = a.compare(b)
        backward = b.compare(a)
        if forward is Causality.BEFORE:
            assert backward is Causality.AFTER
        elif forward is Causality.AFTER:
            assert backward is Causality.BEFORE
        elif forward is Causality.EQUAL:
            assert backward is Causality.EQUAL
        else:
            assert backward is Causality.CONCURRENT

    @given(a=_vector_clocks, node=_node_names)
    def test_increment_strictly_dominates(self, a, node):
        advanced = a.increment(node)
        assert advanced.compare(a) is Causality.AFTER


class TestVersionProperties:
    @given(
        t1=st.integers(min_value=0, max_value=1000),
        t2=st.integers(min_value=0, max_value=1000),
        w1=_node_names,
        w2=_node_names,
    )
    def test_total_order_is_total_and_antisymmetric(self, t1, t2, w1, w2):
        a, b = Version(t1, w1), Version(t2, w2)
        assert (a < b) or (b < a) or (a == b)
        if a < b:
            assert not b < a


class TestRingProperties:
    @settings(max_examples=30)
    @given(
        node_count=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=5),
        key=st.text(min_size=1, max_size=20),
    )
    def test_preference_list_distinct_and_sized(self, node_count, n, key):
        if n > node_count:
            return
        ring = ConsistentHashRing([f"node-{i}" for i in range(node_count)], virtual_nodes=16)
        replicas = ring.preference_list(key, n)
        assert len(replicas) == n
        assert len(set(replicas)) == n
        assert set(replicas) <= ring.nodes

    @settings(max_examples=30)
    @given(key=st.text(min_size=1, max_size=20), n=st.integers(min_value=1, max_value=4))
    def test_preference_list_prefixes_are_consistent(self, key, n):
        ring = ConsistentHashRing([f"node-{i}" for i in range(6)], virtual_nodes=16)
        full = ring.preference_list(key, 4)
        assert ring.preference_list(key, n) == full[:n]


class TestMerkleProperties:
    _contents = st.dictionaries(
        st.text(alphabet="abcdefkey-0123456789", min_size=1, max_size=12),
        st.integers(min_value=0, max_value=50).map(lambda t: Version(t, "w")),
        max_size=30,
    )

    @settings(max_examples=40)
    @given(contents=_contents)
    def test_same_contents_same_root(self, contents):
        assert (
            MerkleTree.build(contents, 16).root_hash == MerkleTree.build(dict(contents), 16).root_hash
        )

    @settings(max_examples=40)
    @given(contents=_contents, key=st.text(alphabet="xyz", min_size=1, max_size=5))
    def test_adding_a_key_changes_the_root(self, contents, key):
        if key in contents:
            return
        modified = dict(contents)
        modified[key] = Version(99, "w")
        left = MerkleTree.build(contents, 16)
        right = MerkleTree.build(modified, 16)
        assert left.root_hash != right.root_hash
        assert len(left.differing_buckets(right)) >= 1
