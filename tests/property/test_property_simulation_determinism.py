"""Property-based tests for end-to-end simulation determinism and trace invariants.

Reproducibility is a first-class requirement for a measurement framework: two
runs with the same seed must produce byte-identical traces, and the traces
must respect basic protocol invariants (commits follow starts, quorum sizes
are honoured, arrival times are consistent with commit times).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.store import DynamoCluster
from repro.cluster.client import WorkloadRunner
from repro.core.quorum import ReplicaConfig
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload


def _build_cluster(config: ReplicaConfig, write_mean: float, seed: int) -> DynamoCluster:
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(write_mean),
        other=ExponentialLatency.from_mean(1.0),
    )
    return DynamoCluster(config=config, distributions=distributions, rng=seed)


def _run_small_workload(cluster: DynamoCluster) -> None:
    operations = validation_workload(
        key="k", writes=30, write_interval_ms=50.0, read_offsets_ms=(1.0, 10.0)
    )
    WorkloadRunner(cluster).run(operations)


def _trace_fingerprint(cluster: DynamoCluster) -> tuple:
    """Behavioural fingerprint of a run.

    Operation ids are deliberately excluded: they come from a process-wide
    counter, so they differ between two clusters created in the same process
    even though the simulated behaviour is identical.
    """
    writes = tuple(
        (trace.started_ms, trace.committed_ms, trace.version.timestamp)
        for trace in cluster.trace_log.writes
    )
    reads = tuple(
        (
            trace.started_ms,
            trace.completed_ms,
            None if trace.returned_version is None else trace.returned_version.timestamp,
        )
        for trace in cluster.trace_log.reads
    )
    return writes, reads


@st.composite
def small_configs(draw) -> ReplicaConfig:
    n = draw(st.integers(min_value=1, max_value=4))
    r = draw(st.integers(min_value=1, max_value=n))
    w = draw(st.integers(min_value=1, max_value=n))
    return ReplicaConfig(n=n, r=r, w=w)


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(
        config=small_configs(),
        write_mean=st.floats(min_value=1.0, max_value=30.0),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_same_seed_gives_identical_traces(self, config, write_mean, seed):
        first = _build_cluster(config, write_mean, seed)
        second = _build_cluster(config, write_mean, seed)
        _run_small_workload(first)
        _run_small_workload(second)
        assert _trace_fingerprint(first) == _trace_fingerprint(second)

    @settings(max_examples=6, deadline=None)
    @given(
        config=small_configs(),
        write_mean=st.floats(min_value=1.0, max_value=30.0),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_different_seeds_produce_different_timings(self, config, write_mean, seed):
        first = _build_cluster(config, write_mean, seed)
        second = _build_cluster(config, write_mean, seed + 1)
        _run_small_workload(first)
        _run_small_workload(second)
        first_commits = [t.committed_ms for t in first.trace_log.writes if t.committed]
        second_commits = [t.committed_ms for t in second.trace_log.writes if t.committed]
        # Continuous latency distributions make collisions across all commits
        # essentially impossible; equality would indicate seed leakage.
        assert first_commits != second_commits


class TestTraceInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        config=small_configs(),
        write_mean=st.floats(min_value=1.0, max_value=30.0),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_protocol_invariants_hold(self, config, write_mean, seed):
        cluster = _build_cluster(config, write_mean, seed)
        _run_small_workload(cluster)
        cluster.run()

        for write in cluster.trace_log.writes:
            if write.committed:
                # Commit requires W acknowledgements and never precedes the start.
                assert write.committed_ms >= write.started_ms
                acks_by_commit = [
                    t for t in write.ack_arrivals_ms.values() if t <= write.committed_ms
                ]
                assert len(acks_by_commit) >= config.w
            # A replica cannot have received the write before the write started.
            for arrival in write.replica_arrivals_ms.values():
                assert arrival >= write.started_ms
            # All N replicas eventually receive every delivered write.
            assert len(write.replica_arrivals_ms) + len(write.dropped_replicas) == config.n

        for read in cluster.trace_log.reads:
            if not read.completed:
                continue
            assert read.completed_ms >= read.started_ms
            assert len(read.quorum_responses) == config.r

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_versions_are_unique_and_increasing_per_coordinator(self, seed):
        cluster = _build_cluster(ReplicaConfig(3, 1, 1), 10.0, seed)
        _run_small_workload(cluster)
        versions = [trace.version for trace in cluster.trace_log.writes]
        assert len(set(versions)) == len(versions)
        timestamps = [version.timestamp for version in versions]
        assert timestamps == sorted(timestamps)
