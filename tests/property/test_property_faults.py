"""Property tests for the fault-plan draw-accounting contract.

The invariant under test: a fault plan modulates *values* after they leave
the draw buffers, so a modulated run consumes exactly as many latency draws
(and triggers exactly as many refills) as the same seeded run without the
plan — for any gray-failure schedule, any burst process, and any batch size.
This is what keeps fault scenarios inside the serial ≡ sharded conformance
envelope: block seeds fully determine the draw streams either way.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.faults.plan import BurstProcess, FaultPlan, GrayFailure
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload

LEG_SUBSETS = st.sampled_from(
    [("W",), ("A",), ("R", "S"), ("W", "A"), ("W", "A", "R", "S")]
)

GRAY_FAILURES = st.builds(
    GrayFailure,
    multiplier=st.floats(min_value=1.1, max_value=10.0, allow_nan=False),
    start_ms=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    duration_ms=st.one_of(
        st.none(), st.floats(min_value=50.0, max_value=400.0, allow_nan=False)
    ),
    legs=LEG_SUBSETS,
    nodes=st.sampled_from([(), ("node-1",), ("node-2", "node-3")]),
)

BURSTS = st.builds(
    BurstProcess,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    on_multiplier=st.floats(min_value=1.1, max_value=8.0, allow_nan=False),
    mean_on_ms=st.floats(min_value=20.0, max_value=500.0, allow_nan=False),
    mean_off_ms=st.floats(min_value=20.0, max_value=500.0, allow_nan=False),
    legs=LEG_SUBSETS,
)

FAULT_PLANS = st.one_of(
    st.builds(lambda g: FaultPlan(name="p", gray_failures=(g,)), GRAY_FAILURES),
    st.builds(lambda b: FaultPlan(name="p", bursts=(b,)), BURSTS),
    st.builds(
        lambda g, b: FaultPlan(name="p", gray_failures=(g,), bursts=(b,)),
        GRAY_FAILURES,
        BURSTS,
    ),
)


def _run(seed: int, batch_size: int, fault_plan: FaultPlan | None) -> DynamoCluster:
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(10.0),
    )
    cluster = DynamoCluster(
        ReplicaConfig(3, 1, 1),
        distributions,
        rng=np.random.default_rng(seed),
        draw_batch_size=batch_size,
        fault_plan=fault_plan,
    )
    operations = validation_workload(
        key="k", writes=25, write_interval_ms=25.0, read_offsets_ms=(1.0, 10.0)
    )
    WorkloadRunner(cluster).run(operations)
    return cluster


class TestDrawAccountingInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        plan=FAULT_PLANS,
        seed=st.integers(min_value=0, max_value=2**16),
        batch_size=st.sampled_from([1, 7, 64]),
    )
    def test_modulated_runs_consume_identical_draw_counts(self, plan, seed, batch_size):
        base = _run(seed, batch_size, None)
        modulated = _run(seed, batch_size, plan)
        assert modulated.network.draws_consumed == base.network.draws_consumed
        assert modulated.network.draw_refills == base.network.draw_refills
        # Same accounting on a rerun of the modulated config, too.
        again = _run(seed, batch_size, plan)
        assert again.network.draws_consumed == modulated.network.draws_consumed

    @settings(max_examples=10, deadline=None)
    @given(plan=FAULT_PLANS, seed=st.integers(min_value=0, max_value=2**16))
    def test_modulated_runs_are_bit_for_bit_reproducible(self, plan, seed):
        first = _run(seed, 64, plan)
        second = _run(seed, 64, plan)
        assert [w.committed_ms for w in first.trace_log.writes] == [
            w.committed_ms for w in second.trace_log.writes
        ]
