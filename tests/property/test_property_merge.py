"""Property tests for the sweep engine's merge contract.

``StreamingHistogram.merge`` and ``_ConfigAccumulator.merge`` are the
foundation of the multiprocess-sharded engine: partials accumulated by worker
processes must fold together into exactly the state a single sequential
accumulation would have produced.  That requires the merge operation to be a
commutative monoid over accumulator states sharing a frozen layout:

* **associative** — ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)``,
* **commutative** — ``a ⊕ b == b ⊕ a``,
* **faithful** — merging per-shard states equals the single-stream state that
  saw all the data in order.

States are compared exactly (bin-for-bin, not approximately): the sharded
engine's bit-for-bit guarantee rests on it.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import AnalysisError
from repro.latency.production import ymmr
from repro.montecarlo.engine import StreamingHistogram, _ConfigAccumulator

_QUANTILES = (0.0, 0.1, 0.5, 0.9, 0.99, 1.0)


def _histogram_states_equal(one: StreamingHistogram, other: StreamingHistogram) -> bool:
    if (one.count, one._underflow, one._overflow) != (
        other.count,
        other._underflow,
        other._overflow,
    ):
        return False
    if one.count and (one.min, one.max) != (other.min, other.max):
        return False
    if (one._edges is None) != (other._edges is None):
        return False
    if one._edges is not None and not (
        np.array_equal(one._edges, other._edges)
        and np.array_equal(one._counts, other._counts)
    ):
        return False
    return all(one.quantile(q) == other.quantile(q) for q in _QUANTILES) if one.count else True


def _merged(*histograms: StreamingHistogram) -> StreamingHistogram:
    """Left-fold merge onto a deep copy (merge mutates the receiver)."""
    result = copy.deepcopy(histograms[0])
    for histogram in histograms[1:]:
        result.merge(copy.deepcopy(histogram))
    return result


def _value_batches(seed: int, sizes: tuple[int, ...], log_scale: bool) -> list[np.ndarray]:
    generator = np.random.default_rng(seed)
    if log_scale:
        return [generator.lognormal(1.0, 1.5, size) for size in sizes]
    return [generator.normal(5.0, 3.0, size) for size in sizes]


@st.composite
def _shard_triples(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    sizes = tuple(draw(st.integers(min_value=1, max_value=400)) for _ in range(3))
    log_scale = draw(st.booleans())
    return seed, sizes, log_scale


class TestStreamingHistogramMergeProperties:
    @settings(max_examples=30, deadline=None)
    @given(params=_shard_triples())
    def test_merge_is_associative(self, params):
        seed, sizes, log_scale = params
        batches = _value_batches(seed, sizes, log_scale)
        a = StreamingHistogram(bins=128, log_scale=log_scale)
        a.update(batches[0])  # freezes the shared layout
        b, c = a.spawn_empty(), a.spawn_empty()
        b.update(batches[1])
        c.update(batches[2])
        left = _merged(_merged(a, b), c)
        right = _merged(a, _merged(b, c))
        assert _histogram_states_equal(left, right)

    @settings(max_examples=30, deadline=None)
    @given(params=_shard_triples())
    def test_merge_is_commutative(self, params):
        seed, sizes, log_scale = params
        batches = _value_batches(seed, sizes, log_scale)
        a = StreamingHistogram(bins=128, log_scale=log_scale)
        a.update(batches[0])
        b = a.spawn_empty()
        b.update(batches[1])
        assert _histogram_states_equal(_merged(a, b), _merged(b, a))

    @settings(max_examples=30, deadline=None)
    @given(params=_shard_triples())
    def test_merged_shards_equal_single_stream(self, params):
        """Merged per-shard quantiles equal single-stream quantiles on the
        same data — bin-for-bin, not just approximately."""
        seed, sizes, log_scale = params
        batches = _value_batches(seed, sizes, log_scale)
        single = StreamingHistogram(bins=128, log_scale=log_scale)
        for batch in batches:
            single.update(batch)
        first = StreamingHistogram(bins=128, log_scale=log_scale)
        first.update(batches[0])
        shards = [first]
        for batch in batches[1:]:
            shard = first.spawn_empty()
            shard.update(batch)
            shards.append(shard)
        assert _histogram_states_equal(_merged(*shards), single)
        for q in _QUANTILES:
            assert _merged(*shards).quantile(q) == single.quantile(q)

    def test_empty_sides_are_identities(self):
        primed = StreamingHistogram(bins=32)
        primed.update(np.arange(50.0))
        # empty ⊕ primed adopts; primed ⊕ empty is a no-op.
        left = StreamingHistogram(bins=32)
        left.merge(primed)
        right = _merged(primed, StreamingHistogram(bins=32))
        assert _histogram_states_equal(left, primed)
        assert _histogram_states_equal(right, primed)

    def test_mismatched_layouts_are_rejected(self):
        a = StreamingHistogram(bins=32)
        a.update(np.arange(10.0))
        b = StreamingHistogram(bins=32)
        b.update(np.arange(100.0, 200.0))  # different frozen edges
        with pytest.raises(AnalysisError):
            a.merge(b)
        with pytest.raises(AnalysisError):
            a.merge(StreamingHistogram(bins=64))
        with pytest.raises(AnalysisError):
            a.merge(StreamingHistogram(bins=32, log_scale=True))


def _accumulator_shards(seed: int, pieces: int = 3) -> tuple[list[_ConfigAccumulator], _ConfigAccumulator]:
    """Per-slice shard accumulators plus the sequential reference."""
    config = ReplicaConfig(3, 2, 1)
    times = np.asarray([0.0, 1.0, 10.0])
    result = WARSModel(ymmr(), config).sample(600, seed)
    slices = np.array_split(np.arange(result.trials), pieces)

    def piece(indices):
        from repro.core.wars import WARSTrialResult

        return WARSTrialResult(
            config=config,
            commit_latencies_ms=result.commit_latencies_ms[indices],
            read_latencies_ms=result.read_latencies_ms[indices],
            staleness_thresholds_ms=result.staleness_thresholds_ms[indices],
        )

    sequential = _ConfigAccumulator(config, times, histogram_bins=64, keep_samples=False)
    for indices in slices:
        sequential.update(piece(indices))

    first = _ConfigAccumulator(config, times, histogram_bins=64, keep_samples=False)
    first.update(piece(slices[0]))
    shards = [first]
    for indices in slices[1:]:
        shard = first.spawn_empty()
        shard.update(piece(indices))
        shards.append(shard)
    return shards, sequential


def _accumulator_states_equal(one: _ConfigAccumulator, other: _ConfigAccumulator) -> bool:
    return (
        one.config == other.config
        and one.trials == other.trials
        and np.array_equal(one.consistent_counts, other.consistent_counts)
        and one.nonpositive_thresholds == other.nonpositive_thresholds
        and _histogram_states_equal(one.threshold_histogram, other.threshold_histogram)
        and _histogram_states_equal(one.read_histogram, other.read_histogram)
        and _histogram_states_equal(one.write_histogram, other.write_histogram)
    )


class TestConfigAccumulatorMergeProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_merge_matches_sequential_accumulation(self, seed):
        shards, sequential = _accumulator_shards(seed)
        merged = copy.deepcopy(shards[0])
        for shard in shards[1:]:
            merged.merge(copy.deepcopy(shard))
        assert _accumulator_states_equal(merged, sequential)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_merge_is_associative_and_commutative(self, seed):
        shards, _ = _accumulator_shards(seed)
        a, b, c = (copy.deepcopy(shard) for shard in shards)
        left = copy.deepcopy(a)
        left.merge(copy.deepcopy(b))
        left.merge(copy.deepcopy(c))
        bc = copy.deepcopy(b)
        bc.merge(copy.deepcopy(c))
        right = copy.deepcopy(a)
        right.merge(bc)
        assert _accumulator_states_equal(left, right)
        swapped = copy.deepcopy(b)
        swapped.merge(copy.deepcopy(a))
        ab = copy.deepcopy(a)
        ab.merge(copy.deepcopy(b))
        assert _accumulator_states_equal(swapped, ab)

    def test_merge_rejects_incompatible_accumulators(self):
        times = np.asarray([0.0, 1.0])
        a = _ConfigAccumulator(ReplicaConfig(3, 1, 1), times, 64, keep_samples=False)
        b = _ConfigAccumulator(ReplicaConfig(3, 2, 1), times, 64, keep_samples=False)
        with pytest.raises(AnalysisError):
            a.merge(b)
        c = _ConfigAccumulator(
            ReplicaConfig(3, 1, 1), np.asarray([0.0, 2.0]), 64, keep_samples=False
        )
        with pytest.raises(AnalysisError):
            a.merge(c)

    def test_merge_rejects_mixed_sample_retention_both_ways(self):
        """Neither direction may silently drop retained samples."""
        config = ReplicaConfig(3, 1, 1)
        times = np.asarray([0.0, 1.0])
        result = WARSModel(ymmr(), config).sample(100, 0)

        def accumulator(keep: bool) -> _ConfigAccumulator:
            built = _ConfigAccumulator(config, times, 64, keep_samples=keep)
            built.update(result)
            return built

        with pytest.raises(AnalysisError):
            accumulator(True).merge(accumulator(False))
        with pytest.raises(AnalysisError):
            accumulator(False).merge(accumulator(True))
        # Both-retaining merges concatenate in order.
        both = accumulator(True)
        both.merge(accumulator(True))
        assert both.trials == 200 and len(both.kept_results()) == 2
