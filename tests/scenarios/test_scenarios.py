"""Reduced-scale conformance tests for the hostile-conditions scenario matrix.

Every registered scenario runs at 2k writes and must:

* produce bit-for-bit identical divergence reports serially and sharded
  (the blocked discipline inherited from the validation experiment);
* emit a schema-valid, JSON-serialisable report with finite divergence
  metrics;
* be reachable through the experiment registry and the CLI
  (``pbs-repro run scenario --name ...``).
"""

from __future__ import annotations

import functools
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ScenarioError
from repro.scenarios import (
    Scenario,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
    validate_divergence,
)
from repro.scenarios.definitions import benign_distributions

#: Scenario names pinned by this suite: removing or renaming a scenario is a
#: breaking change to the BENCH trajectory lines and must update this list.
PINNED_SCENARIOS = (
    "baseline",
    "zipfian-skew",
    "partition",
    "message-loss",
    "wan-topology",
    "anti-entropy",
    "membership-churn",
    "crash-recovery",
    "gray-failure",
    "correlated-bursts",
)

#: Conformance-scale settings: multiple blocks at 2k writes, modest
#: prediction fidelity to keep tier-1 fast.
CONFORMANCE_KWARGS = dict(
    writes=2_000,
    block_writes=500,
    prediction_trials=20_000,
    rng=0,
)


@functools.lru_cache(maxsize=None)
def _conformance_run(name):
    """One serial conformance run per scenario, shared across the suite."""
    return run_scenario(name, workers=1, **CONFORMANCE_KWARGS)


class TestRegistry:
    def test_all_pinned_scenarios_registered(self):
        assert tuple(scenario_names()) == PINNED_SCENARIOS

    def test_at_least_six_hostile_scenarios(self):
        hostile = [s for s in list_scenarios() if s.hostile]
        assert len(hostile) >= 6

    def test_baseline_is_the_only_benign_scenario(self):
        benign = [s.name for s in list_scenarios() if not s.hostile]
        assert benign == ["baseline"]

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(ScenarioError, match="baseline"):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        from repro.scenarios import register_scenario

        with pytest.raises(ScenarioError):
            register_scenario(
                Scenario(
                    name="baseline",
                    description="duplicate",
                    base_distributions=benign_distributions,
                )
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "has space"},
            {"name": "ok", "write_interval_ms": 0.0},
            {"name": "ok", "read_offsets_ms": ()},
            {"name": "ok", "read_offsets_ms": (-1.0,)},
        ],
    )
    def test_invalid_scenario_definitions_rejected(self, kwargs):
        with pytest.raises(ScenarioError):
            Scenario(
                description="bad",
                base_distributions=benign_distributions,
                **kwargs,
            )

    def test_scenario_descriptions_are_nonempty(self):
        for scenario in list_scenarios():
            assert scenario.description.strip()


class TestRunScenarioValidation:
    def test_too_few_writes_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario("baseline", writes=5)

    def test_bad_workers_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario("baseline", writes=100, workers=0)

    def test_bad_block_writes_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario("baseline", writes=100, block_writes=5)


@pytest.mark.parametrize("name", PINNED_SCENARIOS)
class TestConformance:
    """The per-scenario 2k-write pinned conformance contract."""

    def test_serial_matches_sharded_bit_for_bit(self, name, workers):
        serial = _conformance_run(name)
        sharded = run_scenario(name, workers=workers, **CONFORMANCE_KWARGS)
        assert serial.to_dict() == sharded.to_dict()

    def test_object_trace_backend_matches_columnar_bit_for_bit(self, name):
        # The columnar trace log is a storage change, not a semantics change:
        # the object-backend run must reproduce the default report exactly.
        objects = run_scenario(
            name, workers=1, trace_backend="object", **CONFORMANCE_KWARGS
        )
        assert objects.to_dict() == _conformance_run(name).to_dict()

    def test_report_is_schema_valid_and_json_safe(self, name):
        divergence = _conformance_run(name)
        payload = divergence.to_dict()
        validate_divergence(payload)
        # Round-trips through JSON without NaN/Infinity leakage.
        rehydrated = json.loads(json.dumps(payload, allow_nan=False))
        validate_divergence(rehydrated)
        assert rehydrated["scenario"] == name

    def test_divergence_metrics_finite_and_bounded(self, name):
        divergence = _conformance_run(name)
        assert np.isfinite(divergence.consistency_rmse)
        assert 0.0 <= divergence.consistency_rmse <= 1.0
        assert 0.0 <= divergence.max_abs_delta_p <= 1.0
        assert divergence.mean_abs_delta_p <= divergence.max_abs_delta_p
        assert np.isfinite(divergence.read_latency_nrmse)
        assert np.isfinite(divergence.write_latency_nrmse)
        assert divergence.observations > 0
        assert divergence.writes == CONFORMANCE_KWARGS["writes"]
        # The i.i.d. benign base is analytically tractable for every
        # built-in scenario, so the analytic comparison must be present.
        assert divergence.analytic_rmse is not None
        assert np.isfinite(divergence.analytic_rmse)


class TestScenarioSemantics:
    """Spot-checks that the hostile mutations actually engage."""

    def test_baseline_reproduces_validation_cell(self):
        divergence = _conformance_run("baseline")
        assert not divergence.hostile
        assert divergence.dropped_messages == 0
        # 2k writes: within a few percent of the Monte Carlo prediction
        # (50k writes in the slow suite tightens this to the paper's <= 1%).
        assert divergence.consistency_rmse < 0.05

    def test_partition_and_loss_drop_messages(self):
        for name in ("partition", "message-loss"):
            divergence = _conformance_run(name)
            assert divergence.dropped_messages > 0, name

    def test_zipfian_skew_uses_multiple_keys(self):
        divergence = _conformance_run("zipfian-skew")
        # Reads racing another key's write are not observations against
        # their own key's history; the multi-key observation count differs
        # from the single-key scenarios' (writes * offsets) shape.
        baseline = _conformance_run("baseline")
        assert divergence.observations != baseline.observations

    def test_wan_topology_inflates_latency_divergence(self):
        wan = _conformance_run("wan-topology")
        baseline = _conformance_run("baseline")
        # The cluster pays WAN hops the predictor does not model.
        assert wan.read_latency_nrmse > baseline.read_latency_nrmse

    def test_rng_generator_draws_are_reproducible(self):
        first = run_scenario(
            "baseline",
            writes=100,
            block_writes=50,
            prediction_trials=2_000,
            rng=np.random.default_rng(3),
        )
        second = run_scenario(
            "baseline",
            writes=100,
            block_writes=50,
            prediction_trials=2_000,
            rng=np.random.default_rng(3),
        )
        assert first.to_dict() == second.to_dict()

    def test_custom_config_is_honoured(self):
        divergence = run_scenario(
            "baseline",
            writes=100,
            block_writes=50,
            prediction_trials=2_000,
            rng=0,
            config=ReplicaConfig(n=3, r=2, w=2),
        )
        assert divergence.config == ReplicaConfig(n=3, r=2, w=2)
        assert divergence.to_dict()["config"] == {"n": 3, "r": 2, "w": 2}


class TestExperimentAndCLI:
    @pytest.mark.parametrize("name", PINNED_SCENARIOS)
    def test_cli_scenario_path(self, name, capsys):
        assert (
            main(["run", "scenario", "--name", name, "--trials", "50", "--seed", "1"])
            == 0
        )
        output = capsys.readouterr().out
        assert f"Scenario divergence: {name}" in output
        assert "consistency_rmse_pct" in output

    def test_cli_unknown_scenario_errors(self, capsys):
        assert main(["run", "scenario", "--name", "nope", "--trials", "50"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_cli_name_flag_ignored_by_other_experiments(self, capsys):
        assert main(["run", "section3-kstaleness", "--trials", "100", "--name", "partition"]) == 0
        assert "k-staleness" in capsys.readouterr().out

    def test_scenarios_matrix_experiment_rows_cover_registry(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            "scenarios", trials=50, rng=0, prediction_trials=2_000
        )
        assert [row["scenario"] for row in result.rows] == list(PINNED_SCENARIOS)
        hostile_rows = [row for row in result.rows if row["hostile"]]
        assert len(hostile_rows) >= 6
