"""Unit tests for the streaming reservoir (Vitter's Algorithm R, batched)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DistributionError
from repro.serving.reservoir import StreamingReservoir


class TestStreamingReservoir:
    def test_fills_to_capacity_verbatim(self):
        reservoir = StreamingReservoir(capacity=8, seed=0)
        reservoir.extend(np.arange(5.0))
        assert len(reservoir) == 5
        assert reservoir.total_observed == 5
        np.testing.assert_array_equal(reservoir.values(), np.arange(5.0))

    def test_capacity_bounds_memory(self):
        reservoir = StreamingReservoir(capacity=100, seed=1)
        reservoir.extend(np.random.default_rng(0).exponential(1.0, size=10_000))
        assert len(reservoir) == 100
        assert reservoir.total_observed == 10_000

    def test_batch_split_invariance(self):
        # Contents are a pure function of (seed, capacity, stream) no matter
        # how the stream is chopped into observe/extend calls.
        stream = np.random.default_rng(3).gamma(2.0, 2.0, size=5_000)
        whole = StreamingReservoir(capacity=64, seed=9)
        whole.extend(stream)
        pieces = StreamingReservoir(capacity=64, seed=9)
        for chunk in np.array_split(stream, 37):
            pieces.extend(chunk)
        np.testing.assert_array_equal(whole.values(), pieces.values())

    def test_single_observe_matches_extend(self):
        stream = np.random.default_rng(4).exponential(1.0, size=500)
        batched = StreamingReservoir(capacity=32, seed=2)
        batched.extend(stream)
        single = StreamingReservoir(capacity=32, seed=2)
        for value in stream:
            single.observe(float(value))
        np.testing.assert_array_equal(batched.values(), single.values())

    def test_sample_is_unbiased(self):
        # Average reservoir mean over many seeds tracks the stream mean.
        stream = np.concatenate([np.full(500, 1.0), np.full(500, 3.0)])
        means = []
        for seed in range(200):
            reservoir = StreamingReservoir(capacity=50, seed=seed)
            reservoir.extend(stream)
            means.append(reservoir.values().mean())
        assert np.mean(means) == pytest.approx(stream.mean(), abs=0.05)

    def test_values_returns_a_copy(self):
        reservoir = StreamingReservoir(capacity=4, seed=0)
        reservoir.extend([1.0, 2.0])
        snapshot = reservoir.values()
        snapshot[0] = 99.0
        assert reservoir.values()[0] == 1.0

    def test_bad_batches_rejected_wholesale(self):
        reservoir = StreamingReservoir(capacity=4, seed=0)
        with pytest.raises(DistributionError):
            reservoir.extend([1.0, float("nan")])
        with pytest.raises(DistributionError):
            reservoir.extend([1.0, -2.0])
        with pytest.raises(DistributionError):
            reservoir.extend(np.ones((2, 2)))
        # Nothing from the bad batches leaked in.
        assert len(reservoir) == 0 and reservoir.total_observed == 0

    def test_empty_batch_is_a_noop(self):
        reservoir = StreamingReservoir(capacity=4, seed=0)
        assert reservoir.extend([]) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingReservoir(capacity=0)
