"""End-to-end tests for the JSON/HTTP front end and the serve CLI."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import PredictorService, make_server


@pytest.fixture
def server_url():
    service = PredictorService()
    service.register_tenant("acme", "LNKD-SSD")
    server = make_server(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.01}, daemon=True
    )
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(url: str, body: dict | None = None) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(body or {}).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, server_url):
        assert _get(f"{server_url}/healthz") == (200, {"status": "ok"})

    def test_tenant_listing_and_registration(self, server_url):
        status, body = _get(f"{server_url}/tenants")
        assert status == 200 and body == {"tenants": ["acme"]}
        status, body = _post(f"{server_url}/tenants/beta", {"fit": "YMMR"})
        assert status == 200 and body["tenant"] == "beta"
        assert len(body["fingerprint"]) == 64
        assert _get(f"{server_url}/tenants")[1] == {"tenants": ["acme", "beta"]}

    def test_predict_roundtrip(self, server_url):
        status, body = _get(f"{server_url}/tenants/acme/predict?n=3&r=1&w=2")
        assert status == 200
        assert body["config"] == {"n": 3, "r": 1, "w": 2}
        assert 0.0 <= body["consistency_at_commit"] <= 1.0
        assert "0.999" in body["t_visibility_ms"]

    def test_recommend_roundtrip(self, server_url):
        status, body = _get(
            f"{server_url}/tenants/acme/recommend"
            "?read_latency_ms=10&t_visibility_ms=20"
        )
        assert status == 200
        assert body["best"] is not None
        assert body["best"]["meets_target"] is True

    def test_ingest_and_refit(self, server_url):
        status, body = _post(
            f"{server_url}/tenants/acme/observations",
            {"leg": "W", "values": [1.0, 2.0, 3.0]},
        )
        assert status == 200 and body["ingested"] == 3
        before = _get(f"{server_url}/stats")[1]["tenants"][0]["fingerprint"]
        status, body = _post(f"{server_url}/tenants/acme/refit")
        assert status == 200 and body["fingerprint"] != before

    def test_stats_exposes_counters(self, server_url):
        _get(f"{server_url}/tenants/acme/predict?n=3&r=1&w=1")
        status, body = _get(f"{server_url}/stats")
        assert status == 200
        assert body["predictions_served"] == 1
        assert body["cache"]["capacity"] > 0


class TestErrorMapping:
    def test_unknown_tenant_is_404(self, server_url):
        status, body = _get(f"{server_url}/tenants/ghost/predict?n=3&r=1&w=1")
        assert status == 404 and "ghost" in body["error"]

    def test_unknown_route_is_404(self, server_url):
        assert _get(f"{server_url}/nothing")[0] == 404

    def test_invalid_config_is_400(self, server_url):
        status, body = _get(f"{server_url}/tenants/acme/predict?n=3&r=9&w=1")
        assert status == 400 and "error" in body

    def test_malformed_observations_are_400(self, server_url):
        status, _ = _post(f"{server_url}/tenants/acme/observations", {"leg": "W"})
        assert status == 400
        status, _ = _post(
            f"{server_url}/tenants/acme/observations",
            {"leg": "W", "values": [1.0, -5.0]},
        )
        assert status == 400

    def test_wan_registration_is_400(self, server_url):
        status, body = _post(f"{server_url}/tenants/wan", {"fit": "WAN"})
        assert status == 400 and "i.i.d." in body["error"]


class TestServeCommand:
    def test_request_limit_run(self):
        import io
        import re
        import time
        from contextlib import redirect_stdout

        from repro.cli import main

        out = io.StringIO()

        def run() -> None:
            with redirect_stdout(out):
                main(
                    [
                        "serve",
                        "--port",
                        "0",
                        "--fit",
                        "LNKD-DISK",
                        "--request-limit",
                        "2",
                        "--no-spot-checks",
                    ]
                )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        match = None
        deadline = time.monotonic() + 10.0
        while match is None and time.monotonic() < deadline:
            match = re.search(r"http://[\d.]+:(\d+)", out.getvalue())
            time.sleep(0.02)
        assert match is not None, "serve never reported its address"
        base = f"http://127.0.0.1:{match.group(1)}"
        assert _get(f"{base}/healthz")[0] == 200
        assert _get(f"{base}/tenants")[1] == {"tenants": ["default"]}
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert "served 2 responses" in out.getvalue()

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8080
        assert args.fit == "LNKD-SSD" and args.request_limit is None


def _post_raw(url: str, data: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=data, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestInputHardening:
    """Hostile payloads must 400 without poisoning the tenant's reservoirs."""

    OBSERVATIONS = "/tenants/acme/observations"

    def _observed(self, server_url) -> dict:
        return _get(f"{server_url}/stats")[1]["tenants"][0]["observed"]

    def test_non_finite_values_are_rejected(self, server_url):
        # json.dumps happily emits the NaN/Infinity literals; the server
        # must not parse them into the reservoirs.
        for poison in (float("nan"), float("inf"), -float("inf")):
            status, body = _post(
                f"{server_url}{self.OBSERVATIONS}",
                {"leg": "W", "values": [1.0, poison]},
            )
            assert status == 400 and "error" in body
        assert self._observed(server_url) == {}

    def test_non_numeric_values_are_rejected(self, server_url):
        for values in (["1.0"], [True], [None], [[1.0]], [{"v": 1.0}]):
            status, body = _post(
                f"{server_url}{self.OBSERVATIONS}", {"leg": "W", "values": values}
            )
            assert status == 400 and "error" in body
        assert self._observed(server_url) == {}

    def test_malformed_json_body_is_400(self, server_url):
        for raw in (b"{nope", b"[1, 2", b"\xff\xfe", b"null", b'"text"'):
            status, body = _post_raw(f"{server_url}{self.OBSERVATIONS}", raw)
            assert status == 400 and "error" in body
        assert self._observed(server_url) == {}

    def test_valid_ingest_still_works_after_rejections(self, server_url):
        _post_raw(f"{server_url}{self.OBSERVATIONS}", b"{nope")
        _post(f"{server_url}{self.OBSERVATIONS}", {"leg": "W", "values": [float("nan")]})
        status, body = _post(
            f"{server_url}{self.OBSERVATIONS}", {"leg": "W", "values": [1.0, 2.0]}
        )
        assert status == 200 and body["ingested"] == 2
        assert self._observed(server_url) == {"W": 2}
