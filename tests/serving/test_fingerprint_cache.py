"""Unit tests for environment fingerprints and the LRU result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sla import SLATarget
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ExponentialLatency, ParetoLatency
from repro.latency.empirical import EmpiricalDistribution
from repro.latency.production import WARSDistributions, lnkd_ssd
from repro.serving.cache import LRUCache
from repro.serving.fingerprint import (
    distribution_token,
    environment_fingerprint,
    request_key,
)


class TestFingerprints:
    def test_equal_parameters_equal_fingerprint(self):
        # Separately constructed but parameter-identical environments share
        # a fingerprint (the cache-sharing property).
        first = WARSDistributions.symmetric(ExponentialLatency(rate=0.5))
        second = WARSDistributions.symmetric(ExponentialLatency(rate=0.5))
        assert environment_fingerprint(first, (1, 2, 3)) == environment_fingerprint(
            second, (1, 2, 3)
        )

    def test_parameter_change_changes_fingerprint(self):
        base = WARSDistributions.symmetric(ExponentialLatency(rate=0.5))
        drifted = WARSDistributions.symmetric(ExponentialLatency(rate=0.6))
        assert environment_fingerprint(base, (3,)) != environment_fingerprint(
            drifted, (3,)
        )

    def test_replication_grid_is_part_of_the_fingerprint(self):
        wars = lnkd_ssd()
        assert environment_fingerprint(wars, (1, 2, 3)) != environment_fingerprint(
            wars, (1, 2, 3, 4, 5)
        )

    def test_distribution_class_distinguished(self):
        # Same mean, different family -> different token.
        assert distribution_token(ExponentialLatency(rate=1.0)) != distribution_token(
            ParetoLatency(xm=0.5, alpha=2.0)
        )

    def test_empirical_observations_hashed_by_content(self):
        first = EmpiricalDistribution.from_samples([1.0, 2.0, 3.0])
        same = EmpiricalDistribution.from_samples(np.array([1.0, 2.0, 3.0]))
        other = EmpiricalDistribution.from_samples([1.0, 2.0, 3.5])
        assert distribution_token(first) == distribution_token(same)
        assert distribution_token(first) != distribution_token(other)

    def test_request_key_separates_kinds_and_payloads(self):
        keys = {
            request_key("fp", "predict", (3, 1, 1)),
            request_key("fp", "predict", (3, 1, 2)),
            request_key("fp", "recommend", (3, 1, 1)),
            request_key("other", "predict", (3, 1, 1)),
        }
        assert len(keys) == 4

    def test_sla_target_payloads_tokenise(self):
        lenient = SLATarget(read_latency_ms=10.0)
        strict = SLATarget(read_latency_ms=5.0)
        assert request_key("fp", "recommend", lenient) != request_key(
            "fp", "recommend", strict
        )
        assert request_key("fp", "recommend", lenient) == request_key(
            "fp", "recommend", SLATarget(read_latency_ms=10.0)
        )


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache: LRUCache[str] = LRUCache(capacity=2)
        cache.put("a", "A")
        assert cache.get("a") == "A"
        assert cache.get("missing") is None

    def test_least_recently_used_is_evicted(self):
        cache: LRUCache[int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_stats_track_hits_misses_evictions(self):
        cache: LRUCache[int] = LRUCache(capacity=1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts a
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.evictions == 1
        assert stats.size == 1 and stats.capacity == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_put_refreshes_existing_key(self):
        cache: LRUCache[int] = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: b must survive the next put
        cache.put("c", 3)
        assert cache.get("a") == 10 and cache.get("c") == 3
        assert cache.get("b") is None

    def test_clear_empties_but_keeps_counters(self):
        cache: LRUCache[int] = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCache(capacity=0)
