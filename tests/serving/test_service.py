"""Unit tests for :class:`repro.serving.PredictorService`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.core.sla import SLAOptimizer, SLATarget
from repro.exceptions import ConfigurationError, PBSError
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions, production_fit
from repro.serving import PredictorService


@pytest.fixture
def service() -> PredictorService:
    svc = PredictorService()
    svc.register_tenant("acme", "LNKD-SSD")
    return svc


class TestTenantLifecycle:
    def test_register_by_fit_name_and_explicit_distributions(self):
        svc = PredictorService()
        by_name = svc.register_tenant("a", "LNKD-SSD")
        explicit = svc.register_tenant("b", production_fit("LNKD-SSD"))
        # Same parameters -> same fingerprint, regardless of construction.
        assert by_name == explicit
        assert svc.tenants() == ("a", "b")

    def test_wan_model_rejected(self):
        svc = PredictorService()
        with pytest.raises(ConfigurationError, match="i.i.d."):
            svc.register_tenant("wan", production_fit("WAN", replica_count=3))

    def test_unknown_tenant_raises_key_error(self, service):
        with pytest.raises(KeyError, match="ghost"):
            service.predict("ghost", ReplicaConfig(3, 1, 1))

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictorService().register_tenant("", "LNKD-SSD")


class TestPredict:
    def test_matches_offline_analytic_predictor(self, service):
        from repro.analytic.predictor import AnalyticPredictor

        config = ReplicaConfig(3, 1, 2)
        served = service.predict("acme", config)
        offline = AnalyticPredictor(distributions=production_fit("LNKD-SSD")).result(
            config
        )
        assert served.consistency_at_commit == offline.probability_never_stale()
        assert served.t_visibility_ms[0.999] == offline.t_visibility(0.999)
        assert served.read_latency_ms[99.9] == offline.read_latency_percentile(99.9)

    def test_repeat_queries_hit_the_cache(self, service):
        config = ReplicaConfig(3, 1, 1)
        first = service.predict("acme", config)
        second = service.predict("acme", config)
        assert first == second
        stats = service.stats()
        assert stats.cache.hits == 1
        assert stats.predictions_served == 2

    def test_strict_quorum_is_immediately_consistent(self, service):
        served = service.predict("acme", ReplicaConfig(3, 2, 2))
        assert served.consistency_at_commit == 1.0
        assert served.t_visibility_ms[0.999] == 0.0

    def test_to_dict_is_json_ready(self, service):
        import json

        payload = service.predict("acme", ReplicaConfig(3, 1, 1)).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestRecommend:
    def test_byte_identical_to_offline_sla_optimizer(self, service):
        # The acceptance criterion: a served recommendation for a static
        # environment equals the offline analytic optimiser's, field for field.
        target = SLATarget(read_latency_ms=10.0, t_visibility_ms=20.0)
        served = service.recommend("acme", target)
        offline = SLAOptimizer(production_fit("LNKD-SSD"), mode="analytic")
        assert served.best == offline.best(target)
        assert list(served.evaluations) == offline.evaluate_all(target)

    def test_infeasible_target_yields_none(self, service):
        served = service.recommend(
            "acme", SLATarget(read_latency_ms=1e-6, t_visibility_ms=1e-6)
        )
        assert served.best is None
        assert all(not e.meets_target for e in served.evaluations)

    def test_recommendations_cached(self, service):
        target = SLATarget(t_visibility_ms=10.0)
        service.recommend("acme", target)
        service.recommend("acme", target)
        assert service.stats().cache.hits == 1


class TestRefit:
    def test_refit_changes_fingerprint_and_invalidates(self):
        svc = PredictorService()
        original = svc.register_tenant("t", "LNKD-SSD")
        config = ReplicaConfig(3, 1, 1)
        before = svc.predict("t", config)
        svc.ingest("t", "W", np.random.default_rng(0).exponential(5.0, size=1_000))
        refit = svc.refit("t")
        assert refit != original
        after = svc.predict("t", config)
        assert after.fingerprint == refit
        # The old entry was not served: both lookups were cache misses.
        assert svc.stats().cache.misses == 2
        assert before.fingerprint == original

    def test_refit_is_deterministic(self):
        def build() -> str:
            svc = PredictorService()
            svc.register_tenant("t", "LNKD-SSD")
            rng = np.random.default_rng(7)
            for leg in "WARS":
                svc.ingest("t", leg, rng.exponential(2.0, size=300))
            return svc.refit("t")

        assert build() == build()

    def test_refit_without_observations_keeps_distributions(self):
        svc = PredictorService()
        original = svc.register_tenant("t", "LNKD-SSD")
        assert svc.refit("t") == original

    def test_auto_refit_after_threshold(self):
        svc = PredictorService(refit_every=100)
        original = svc.register_tenant("t", "LNKD-SSD")
        svc.ingest("t", "W", np.random.default_rng(1).exponential(1.0, size=100))
        assert svc.fingerprint_of("t") != original

    def test_mixture_refit_uses_fit_pipeline(self):
        svc = PredictorService(refit_method="mixture")
        svc.register_tenant("t", "LNKD-SSD")
        svc.ingest("t", "W", np.random.default_rng(2).exponential(2.0, size=2_000))
        svc.refit("t")
        # Smooth parametric tail: the refit leg must support deep quantiles.
        served = svc.predict("t", ReplicaConfig(3, 1, 1))
        assert served.write_latency_ms[99.9] > served.write_latency_ms[50.0]

    def test_invalid_leg_rejected(self):
        svc = PredictorService()
        svc.register_tenant("t", "LNKD-SSD")
        with pytest.raises(ConfigurationError, match="leg"):
            svc.ingest("t", "X", [1.0])


class TestSpotChecks:
    def test_served_answers_are_audited_within_tolerance(self):
        svc = PredictorService(spot_check_trials=20_000)
        svc.register_tenant("t", "LNKD-SSD")
        svc.predict("t", ReplicaConfig(3, 1, 1))
        results = svc.run_pending_spot_checks()
        assert len(results) == 1
        assert results[0].passed
        assert results[0].max_absolute_error < 0.02
        stats = svc.stats()
        assert stats.spot_checks_run == 1 and stats.spot_checks_failed == 0

    def test_cache_hits_do_not_enqueue_audits(self):
        svc = PredictorService()
        svc.register_tenant("t", "LNKD-SSD")
        config = ReplicaConfig(3, 1, 1)
        svc.predict("t", config)
        svc.predict("t", config)
        assert svc.stats().spot_checks_pending == 1

    def test_recommendation_winner_is_audited(self):
        svc = PredictorService()
        svc.register_tenant("t", "LNKD-SSD")
        served = svc.recommend("t", SLATarget(t_visibility_ms=100.0))
        assert served.best is not None
        results = svc.run_pending_spot_checks()
        assert results[0].config == served.best.config

    def test_worker_thread_drains_queue(self):
        import time

        svc = PredictorService(spot_check_trials=1_000)
        svc.register_tenant("t", "LNKD-SSD")
        svc.predict("t", ReplicaConfig(3, 1, 1))
        svc.start_spot_check_worker(interval_seconds=0.01)
        try:
            deadline = time.monotonic() + 10.0
            while svc.stats().spot_checks_run == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            svc.stop_spot_check_worker()
        assert svc.stats().spot_checks_run == 1


class TestStats:
    def test_snapshot_shape(self, service):
        service.ingest("acme", "W", [1.0, 2.0])
        service.predict("acme", ReplicaConfig(3, 1, 1))
        stats = service.stats()
        assert stats.tenants[0].name == "acme"
        assert stats.tenants[0].observed == {"W": 2}
        assert stats.predictions_served == 1
        payload = stats.to_dict()
        import json

        assert json.loads(json.dumps(payload)) == payload


class TestConstructionValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictorService(replication_factors=())
        with pytest.raises(ConfigurationError):
            PredictorService(refit_method="magic")
        with pytest.raises(ConfigurationError):
            PredictorService(refit_every=0)
        with pytest.raises(ConfigurationError):
            PredictorService(spot_check_trials=10)
        with pytest.raises(ConfigurationError):
            PredictorService(spot_check_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            PredictorService(spot_check_queue=0)


class TestSharedStaticPredictor:
    def test_sla_optimizer_shares_one_predictor_for_static_distributions(self):
        optimizer = SLAOptimizer(production_fit("LNKD-SSD"), mode="analytic")
        optimizer.evaluate_all(SLATarget(t_visibility_ms=10.0))
        # One environment for all five replication factors, not five.
        assert len(optimizer._analytic_cache) == 1

    def test_injected_predictor_is_used(self):
        from repro.analytic.predictor import AnalyticPredictor

        predictor = AnalyticPredictor(distributions=production_fit("LNKD-SSD"))
        optimizer = SLAOptimizer(
            production_fit("LNKD-SSD"), mode="analytic", analytic_predictor=predictor
        )
        assert optimizer._analytic_for(3) is predictor
        assert optimizer._analytic_for(5) is predictor

    def test_injected_predictor_rejected_with_callable_distributions(self):
        from repro.analytic.predictor import AnalyticPredictor

        wars = WARSDistributions.symmetric(ExponentialLatency(rate=1.0))
        with pytest.raises(ConfigurationError):
            SLAOptimizer(
                lambda n: wars,
                mode="analytic",
                analytic_predictor=AnalyticPredictor(distributions=wars),
            )

    def test_rebind_preserves_tuning(self):
        from repro.analytic.predictor import AnalyticPredictor

        first = AnalyticPredictor(
            distributions=production_fit("LNKD-SSD"), grid_points=512
        )
        rebound = first.rebind(production_fit("LNKD-DISK"))
        assert rebound.grid_points == 512
        assert rebound.distributions.name == "LNKD-DISK"
        # Same object -> same predictor (warm tables preserved).
        assert first.rebind(first.distributions) is first


class _FailingRebind:
    """Predictor stand-in whose ``rebind`` always raises.

    Wraps the tenant's real predictor so serving keeps working (all other
    attribute access delegates) while every refit attempt blows up — the
    shape of a wedged fit pipeline, not a dead tenant.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    def rebind(self, distributions):
        raise RuntimeError("fit pipeline wedged")

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _wedge(svc: PredictorService, tenant: str) -> None:
    state = svc._tenants[tenant]
    state.predictor = _FailingRebind(state.predictor)


def _heal(svc: PredictorService, tenant: str) -> None:
    state = svc._tenants[tenant]
    state.predictor = state.predictor._inner


class TestGracefulDegradation:
    def _observations(self, n: int = 8):
        return np.random.default_rng(0).exponential(2.0, size=n)

    def test_failed_auto_refit_keeps_serving_degraded(self):
        svc = PredictorService(refit_every=8, refit_retries=0)
        svc.register_tenant("t", "LNKD-SSD")
        config = ReplicaConfig(3, 1, 1)
        healthy = svc.predict("t", config)
        assert not healthy.degraded

        _wedge(svc, "t")
        svc.ingest("t", "W", self._observations())  # trips auto-refit -> fails
        served = svc.predict("t", config)
        assert served.degraded
        # Stale-while-revalidate: same last-good environment as before.
        assert served.fingerprint == healthy.fingerprint
        assert served.consistency_at_commit == healthy.consistency_at_commit

        tenant = svc.stats().tenants[0]
        assert tenant.degraded
        assert tenant.refit_failures == 1
        assert tenant.consecutive_refit_failures == 1
        assert "wedged" in tenant.last_refit_error

    def test_cache_hits_carry_the_current_degraded_flag(self):
        svc = PredictorService(refit_every=8, refit_retries=0)
        svc.register_tenant("t", "LNKD-SSD")
        config = ReplicaConfig(3, 1, 1)
        assert not svc.predict("t", config).degraded  # miss, cached healthy

        _wedge(svc, "t")
        svc.ingest("t", "W", self._observations())
        flagged = svc.predict("t", config)  # cache hit, flag must flip
        assert flagged.degraded
        assert svc.stats().cache.hits == 1

    def test_retries_consume_attempts_before_degrading(self):
        svc = PredictorService(refit_retries=2)
        svc.register_tenant("t", "LNKD-SSD")
        svc.ingest("t", "W", self._observations())
        _wedge(svc, "t")
        with pytest.raises(PBSError):
            svc.refit("t")
        # One failed *round* regardless of the internal attempt count.
        assert svc.stats().tenants[0].refit_failures == 1

    def test_backoff_doubles_auto_refit_threshold(self):
        svc = PredictorService(refit_every=8, refit_retries=0)
        svc.register_tenant("t", "LNKD-SSD")
        _wedge(svc, "t")
        svc.ingest("t", "W", self._observations())  # failure #1 at 8 obs
        assert svc.stats().tenants[0].refit_failures == 1
        svc.ingest("t", "W", self._observations(4))  # 12 since refit: below 16
        assert svc.stats().tenants[0].refit_failures == 1
        svc.ingest("t", "W", self._observations(4))  # 16 since refit -> retry
        assert svc.stats().tenants[0].refit_failures == 2

    def test_circuit_opens_after_threshold_and_manual_probe_closes_it(self):
        svc = PredictorService(
            refit_every=4, refit_retries=0, refit_failure_threshold=2
        )
        svc.register_tenant("t", "LNKD-SSD")
        config = ReplicaConfig(3, 1, 1)
        _wedge(svc, "t")
        for _ in range(3):  # 4, 8 (backoff x2) -> two failures, circuit opens
            svc.ingest("t", "W", self._observations(4))
        assert svc.stats().tenants[0].consecutive_refit_failures == 2

        # Open circuit: further ingests never attempt a refit.
        for _ in range(10):
            svc.ingest("t", "W", self._observations(4))
        assert svc.stats().tenants[0].refit_failures == 2

        # Manual probe against the still-broken pipeline: raises, keeps serving.
        with pytest.raises(PBSError):
            svc.refit("t")
        assert svc.predict("t", config).degraded

        # Repair the pipeline; the next manual refit closes the circuit.
        _heal(svc, "t")
        svc.refit("t")
        tenant = svc.stats().tenants[0]
        assert not tenant.degraded
        assert tenant.consecutive_refit_failures == 0
        assert tenant.last_refit_error is None
        assert not svc.predict("t", config).degraded

    def test_service_level_counters_and_json_shape(self):
        svc = PredictorService(refit_every=8, refit_retries=0)
        svc.register_tenant("t", "LNKD-SSD")
        _wedge(svc, "t")
        svc.ingest("t", "W", self._observations())
        stats = svc.stats()
        assert stats.refit_failures == 1
        assert stats.degraded_tenants == 1
        payload = stats.to_dict()
        assert payload["refit_failures"] == 1
        assert payload["degraded_tenants"] == 1
        assert payload["tenants"][0]["degraded"] is True
        assert payload["spot_checks"]["worker_errors"] == 0
        assert payload["spot_checks"]["worker_backoff_seconds"] == 0.0

    def test_consistency_probabilities_curve(self):
        svc = PredictorService()
        svc.register_tenant("t", "LNKD-SSD")
        curve = svc.consistency_probabilities(
            "t", ReplicaConfig(3, 1, 1), (1.0, 10.0, 100.0)
        )
        assert len(curve) == 3
        assert all(0.0 <= p <= 1.0 for p in curve)
        assert curve == tuple(sorted(curve))  # monotone in t


class TestWorkerResilience:
    def test_worker_survives_exceptions_with_bounded_backoff(self, monkeypatch):
        import time

        svc = PredictorService(spot_check_worker_backoff_max_seconds=0.08)
        svc.register_tenant("t", "LNKD-SSD")

        def boom(max_checks=None):
            raise RuntimeError("audit crashed")

        monkeypatch.setattr(svc, "run_pending_spot_checks", boom)
        svc.start_spot_check_worker(interval_seconds=0.01)
        try:
            deadline = time.monotonic() + 10.0
            while svc.stats().spot_check_worker_errors < 3 and time.monotonic() < deadline:
                time.sleep(0.02)
            stats = svc.stats()
            assert stats.spot_check_worker_errors >= 3
            assert 0.0 < stats.spot_check_worker_backoff_seconds <= 0.08
            assert svc._worker.is_alive()
        finally:
            svc.stop_spot_check_worker()

    def test_backoff_resets_after_clean_drain(self, monkeypatch):
        import time

        svc = PredictorService(spot_check_worker_backoff_max_seconds=0.08)
        svc.register_tenant("t", "LNKD-SSD")
        failures = {"left": 2}
        real = svc.run_pending_spot_checks

        def flaky(max_checks=None):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return real(max_checks)

        monkeypatch.setattr(svc, "run_pending_spot_checks", flaky)
        svc.start_spot_check_worker(interval_seconds=0.01)
        try:
            deadline = time.monotonic() + 10.0
            while failures["left"] > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            time.sleep(0.1)  # let one clean drain land
            stats = svc.stats()
            assert stats.spot_check_worker_errors == 2
            assert stats.spot_check_worker_backoff_seconds == pytest.approx(0.01)
        finally:
            svc.stop_spot_check_worker()
