"""Unit tests for the struct-of-arrays trace backend.

Pins the columnar pipeline's three contracts:

* the narrow ``begin_*``/``note_*`` recording API produces row views whose
  attribute surface is indistinguishable from the object dataclasses;
* ``ColumnarTraceLog.merge`` concatenates columns in block order, so a merged
  sharded log answers every query exactly like the serial log;
* query caches (sort orders, per-key commit indexes) are invalidated by
  mutation — and on the object log the per-key index is built exactly once,
  never once per query (the ``index_scans`` regression counter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.tracelog import ColumnarTraceLog
from repro.cluster.tracing import ReadTrace, TraceLog, WriteTrace
from repro.cluster.versioning import Version


def _record_workload(log, op_base: int = 0) -> None:
    """Drive one small mixed workload through the narrow recording API."""
    w0 = log.begin_write(op_base + 0, "alpha", Version(1, "c-0"), "c-0", 10.0)
    log.note_write_arrival(w0, "node-0", 12.0)
    log.note_write_arrival(w0, "node-1", 15.5)
    log.note_write_ack(w0, "node-0", 13.0)
    log.note_write_commit(w0, 13.0)
    log.note_write_drop(w0, "node-2")

    w1 = log.begin_write(op_base + 1, "beta", Version(2, "c-1"), "c-1", 20.0)
    log.note_write_arrival(w1, "node-1", 24.0)
    # w1 never commits.

    w2 = log.begin_write(op_base + 2, "alpha", Version(3, "c-0"), "c-0", 30.0)
    log.note_write_arrival(w2, "node-0", 31.0)
    log.note_write_ack(w2, "node-0", 32.0)
    log.note_write_commit(w2, 32.0)

    r0 = log.begin_read(op_base + 3, "alpha", "c-0", 40.0)
    log.note_read_response(r0, "node-0", 41.0)
    log.note_read_quorum(r0, "node-0", Version(3, "c-0"))
    log.note_read_complete(r0, Version(3, "c-0"), 41.0)
    log.note_read_late(r0, "node-1", Version(1, "c-0"))
    log.note_read_repair(r0)

    r1 = log.begin_read(op_base + 4, "alpha", "c-1", 50.0)
    log.note_read_response(r1, "node-2", 51.0)
    log.note_read_quorum(r1, "node-2", None)
    log.note_read_complete(r1, None, 51.0)

    r2 = log.begin_read(op_base + 5, "beta", "c-0", 60.0)
    log.note_read_timeout(r2)


def _write_tuple(trace) -> tuple:
    return (
        trace.operation_id,
        trace.key,
        (trace.version.timestamp, trace.version.writer),
        trace.coordinator,
        trace.started_ms,
        trace.committed_ms,
        dict(trace.replica_arrivals_ms),
        dict(trace.ack_arrivals_ms),
        set(trace.dropped_replicas),
        trace.committed,
        trace.commit_latency_ms,
        trace.arrival_offsets_from_commit(),
    )


def _read_tuple(trace) -> tuple:
    return (
        trace.operation_id,
        trace.key,
        trace.coordinator,
        trace.started_ms,
        dict(trace.quorum_responses),
        dict(trace.late_responses),
        dict(trace.response_arrivals_ms),
        trace.returned_version,
        trace.completed_ms,
        trace.timed_out,
        trace.repairs_issued,
        trace.completed,
        trace.latency_ms,
    )


def _log_tuples(log) -> tuple:
    return (
        tuple(_write_tuple(t) for t in log.writes),
        tuple(_read_tuple(t) for t in log.reads),
    )


class TestNarrowApiEquivalence:
    """Both backends fed the same scalar calls expose identical traces."""

    def test_columnar_views_match_object_traces(self):
        columnar = ColumnarTraceLog()
        objects = TraceLog()
        _record_workload(columnar)
        _record_workload(objects)
        assert _log_tuples(columnar) == _log_tuples(objects)

    def test_view_scalars_are_python_types(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        write = log.writes[0]
        assert type(write.operation_id) is int
        assert type(write.started_ms) is float
        assert type(write.committed) is bool
        read = log.reads[0]
        assert type(read.repairs_issued) is int
        assert type(read.timed_out) is bool

    def test_counts_and_uncommitted_sentinels(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        assert log.write_count == 3
        assert log.read_count == 3
        assert log.writes[1].committed_ms is None
        assert log.writes[1].commit_latency_ms is None
        assert log.writes[1].arrival_offsets_from_commit() == {}
        assert log.reads[1].returned_version is None
        assert log.reads[2].completed is False
        assert log.reads[2].latency_ms is None

    def test_roundtrip_conversions(self):
        columnar = ColumnarTraceLog()
        _record_workload(columnar)
        materialised = columnar.to_object_log()
        assert _log_tuples(materialised) == _log_tuples(columnar)
        back = ColumnarTraceLog.from_object_log(materialised)
        assert _log_tuples(back) == _log_tuples(columnar)

    def test_clear_drops_rows_and_strings(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        log.clear()
        assert log.write_count == 0
        assert log.read_count == 0
        assert log.string_table() == []
        assert log.committed_writes() == []
        assert log.completed_reads() == []
        # The log is reusable after clear.
        _record_workload(log)
        assert log.write_count == 3


class TestQueries:
    def test_committed_writes_in_commit_order(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        committed = log.committed_writes("alpha")
        assert [t.operation_id for t in committed] == [0, 2]
        assert [t.committed_ms for t in committed] == [13.0, 32.0]
        assert log.committed_writes("beta") == []
        assert log.committed_writes("missing") == []

    def test_completed_reads_in_start_order(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        assert [t.operation_id for t in log.completed_reads()] == [3, 4]
        assert [t.operation_id for t in log.completed_reads("alpha")] == [3, 4]
        assert log.completed_reads("beta") == []  # timed out

    def test_latest_committed_version_before(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        assert log.latest_committed_version_before("alpha", 12.9) is None
        assert log.latest_committed_version_before("alpha", 13.0) == Version(1, "c-0")
        assert log.latest_committed_version_before("alpha", 99.0) == Version(3, "c-0")
        assert log.latest_committed_version_before("missing", 99.0) is None

    def test_commit_time_of(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        assert log.commit_time_of("alpha", Version(1, "c-0")) == 13.0
        assert log.commit_time_of("alpha", Version(3, "c-0")) == 32.0
        assert log.commit_time_of("alpha", Version(2, "c-1")) is None
        assert log.commit_time_of("alpha", Version(1, "never-seen")) is None

    def test_mutation_invalidates_cached_queries(self):
        log = ColumnarTraceLog()
        _record_workload(log)
        assert len(log.committed_writes("alpha")) == 2
        ref = log.begin_write(99, "alpha", Version(9, "c-0"), "c-0", 100.0)
        log.note_write_commit(ref, 105.0)
        assert len(log.committed_writes("alpha")) == 3
        assert log.latest_committed_version_before("alpha", 200.0) == Version(9, "c-0")

    def test_writer_sort_ranks_are_lexicographic(self):
        log = ColumnarTraceLog()
        # Intern in an order that differs from string order: "c-10" < "c-2".
        first = log.intern("c-2")
        second = log.intern("c-10")
        ranks = log.writer_sort_ranks()
        assert ranks[second] < ranks[first]


class TestMergeContract:
    """Block-order merge reproduces the serial log bit-for-bit."""

    def test_merge_equals_serial_recording(self):
        serial = ColumnarTraceLog()
        _record_workload(serial, op_base=0)
        _record_workload(serial, op_base=10)

        block_a = ColumnarTraceLog()
        block_b = ColumnarTraceLog()
        _record_workload(block_a, op_base=0)
        _record_workload(block_b, op_base=10)
        merged = ColumnarTraceLog.merge([block_a, block_b])

        assert _log_tuples(merged) == _log_tuples(serial)
        assert merged.string_table() == serial.string_table()
        # Query surfaces agree too (same rows, same order).
        assert [t.operation_id for t in merged.committed_writes("alpha")] == [
            t.operation_id for t in serial.committed_writes("alpha")
        ]
        assert merged.latest_committed_version_before(
            "alpha", 1e9
        ) == serial.latest_committed_version_before("alpha", 1e9)

    def test_merge_remaps_disjoint_string_tables(self):
        block_a = ColumnarTraceLog()
        ref = block_a.begin_write(0, "only-a", Version(1, "w-a"), "co-a", 1.0)
        block_a.note_write_commit(ref, 2.0)
        block_b = ColumnarTraceLog()
        ref = block_b.begin_read(1, "only-b", "co-b", 3.0)
        block_b.note_read_quorum(ref, "nb", Version(1, "w-a"))
        block_b.note_read_complete(ref, Version(1, "w-a"), 4.0)
        merged = ColumnarTraceLog.merge([block_b, block_a])
        assert merged.writes[0].key == "only-a"
        assert merged.reads[0].returned_version == Version(1, "w-a")
        assert merged.reads[0].quorum_responses == {"nb": Version(1, "w-a")}

    def test_merge_of_empty_logs(self):
        merged = ColumnarTraceLog.merge([ColumnarTraceLog(), ColumnarTraceLog()])
        assert merged.write_count == 0
        assert merged.read_count == 0

    def test_column_growth_past_initial_capacity(self):
        log = ColumnarTraceLog()
        for index in range(1_000):  # large enough to force repeated list growth
            ref = log.begin_write(index, "k", Version(index, "c"), "c", float(index))
            log.note_write_commit(ref, float(index) + 0.5)
        assert log.write_count == 1_000
        assert [t.operation_id for t in log.committed_writes("k")][:3] == [0, 1, 2]
        assert log.latest_committed_version_before("k", 1e9) == Version(999, "c")


class TestObjectLogIndexing:
    """The object log's per-key commit index is built once, not per query."""

    def _filled_log(self, writes: int = 50) -> TraceLog:
        log = TraceLog()
        for index in range(writes):
            log.record_write(
                WriteTrace(
                    operation_id=index,
                    key="hot",
                    version=Version(index, "c"),
                    coordinator="c",
                    started_ms=float(index),
                    committed_ms=float(index) + 0.5,
                )
            )
        return log

    def test_repeated_version_queries_scan_the_log_once(self):
        writes = 50
        log = self._filled_log(writes)
        assert log.index_scans == 0
        for probe in range(200):
            log.latest_committed_version_before("hot", float(probe % writes))
            log.commit_time_of("hot", Version(probe % writes, "c"))
        # 400 queries, one index build: the counter advances by one full scan,
        # not one per query.
        assert log.index_scans == writes

    def test_mutation_triggers_exactly_one_rebuild(self):
        writes = 50
        log = self._filled_log(writes)
        log.latest_committed_version_before("hot", 10.0)
        assert log.index_scans == writes
        log.record_write(
            WriteTrace(
                operation_id=writes,
                key="hot",
                version=Version(writes, "c"),
                coordinator="c",
                started_ms=float(writes),
                committed_ms=float(writes) + 0.5,
            )
        )
        for _ in range(10):
            assert log.latest_committed_version_before("hot", 1e9) == Version(writes, "c")
        assert log.index_scans == writes + (writes + 1)

    def test_committed_writes_returns_fresh_copies(self):
        log = self._filled_log(5)
        first = log.committed_writes("hot")
        first.clear()  # callers may mutate their copy...
        assert len(log.committed_writes("hot")) == 5  # ...without corrupting the cache

    def test_narrow_api_mutations_invalidate_caches(self):
        log = TraceLog()
        ref = log.begin_write(0, "k", Version(1, "c"), "c", 0.0)
        assert log.committed_writes("k") == []
        log.note_write_commit(ref, 1.0)
        assert len(log.committed_writes("k")) == 1
        read = log.begin_read(1, "k", "c", 2.0)
        log.note_read_complete(read, Version(1, "c"), 3.0)
        assert len(log.completed_reads("k")) == 1
        log.note_read_timeout(read)
        assert log.completed_reads("k") == []


class TestBackendSelection:
    def test_store_rejects_unknown_trace_backend(self):
        from repro.cluster.store import DynamoCluster
        from repro.core.quorum import ReplicaConfig
        from repro.exceptions import ConfigurationError
        from repro.latency.distributions import ExponentialLatency
        from repro.latency.production import WARSDistributions

        distributions = WARSDistributions.symmetric(ExponentialLatency.from_mean(1.0))
        with pytest.raises(ConfigurationError):
            DynamoCluster(
                ReplicaConfig(3, 1, 1), distributions, trace_backend="parquet"
            )

    def test_store_backend_types(self):
        from repro.cluster.store import DynamoCluster
        from repro.core.quorum import ReplicaConfig
        from repro.latency.distributions import ExponentialLatency
        from repro.latency.production import WARSDistributions

        distributions = WARSDistributions.symmetric(ExponentialLatency.from_mean(1.0))
        columnar = DynamoCluster(ReplicaConfig(3, 1, 1), distributions)
        assert isinstance(columnar.trace_log, ColumnarTraceLog)
        objects = DynamoCluster(
            ReplicaConfig(3, 1, 1), distributions, trace_backend="object"
        )
        assert isinstance(objects.trace_log, TraceLog)
