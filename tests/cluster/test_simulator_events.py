"""Unit tests for the clock, event queue, and discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.cluster.clock import SimulationClock
from repro.cluster.events import EventQueue
from repro.cluster.simulator import Simulator
from repro.exceptions import SimulationError


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now_ms == 0.0

    def test_advance_forward(self):
        clock = SimulationClock()
        clock.advance_to(12.5)
        assert clock.now_ms == 12.5

    def test_cannot_move_backwards(self):
        clock = SimulationClock(start_ms=10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimulationClock(start_ms=-1.0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance_to(100.0)
        clock.reset()
        assert clock.now_ms == 0.0


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.push(5.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order: list[int] = []
        for index in range(5):
            queue.push(3.0, lambda i=index: order.append(i))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired: list[str] = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(2.0, lambda: fired.append("drop"))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["keep"]
        assert keep.label == ""

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(7.0, lambda: None)
        assert queue.peek_time() == 7.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_schedule_and_run_advances_clock(self):
        simulator = Simulator(rng=0)
        seen: list[float] = []
        simulator.schedule(10.0, lambda: seen.append(simulator.now_ms))
        simulator.schedule(5.0, lambda: seen.append(simulator.now_ms))
        simulator.run()
        assert seen == [5.0, 10.0]
        assert simulator.now_ms == 10.0
        assert simulator.processed_events == 2

    def test_schedule_at_absolute_time(self):
        simulator = Simulator(rng=0)
        simulator.schedule_at(3.0, lambda: None)
        simulator.run()
        assert simulator.now_ms == 3.0

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator(rng=0)
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_run_until_horizon_leaves_later_events(self):
        simulator = Simulator(rng=0)
        fired: list[float] = []
        simulator.schedule(1.0, lambda: fired.append(1.0))
        simulator.schedule(100.0, lambda: fired.append(100.0))
        simulator.run(until_ms=10.0)
        assert fired == [1.0]
        assert simulator.now_ms == 10.0
        assert simulator.pending_events == 1
        simulator.run()
        assert fired == [1.0, 100.0]

    def test_events_can_schedule_events(self):
        simulator = Simulator(rng=0)
        fired: list[str] = []

        def first() -> None:
            fired.append("first")
            simulator.schedule(5.0, lambda: fired.append("second"))

        simulator.schedule(1.0, first)
        simulator.run()
        assert fired == ["first", "second"]
        assert simulator.now_ms == 6.0

    def test_event_storm_guard(self):
        simulator = Simulator(rng=0, max_events=100)

        def rescheduling() -> None:
            simulator.schedule(1.0, rescheduling)

        simulator.schedule(1.0, rescheduling)
        with pytest.raises(SimulationError):
            simulator.run(until_ms=1_000.0)

    def test_reset_clears_queue_and_clock(self):
        simulator = Simulator(rng=0)
        simulator.schedule(50.0, lambda: None)
        simulator.run()
        simulator.schedule(10.0, lambda: None)
        simulator.reset()
        assert simulator.pending_events == 0
        assert simulator.now_ms == 0.0
        assert simulator.processed_events == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator(rng=0).step() is False

    def test_deterministic_rng_from_seed(self):
        a = Simulator(rng=7).rng.random(5)
        b = Simulator(rng=7).rng.random(5)
        assert list(a) == list(b)


class TestLiveCountAccounting:
    """Regression tests for the O(1) ``len(queue)`` counter.

    The count must stay exact through every push/pop/cancel/drain sequence —
    the pre-overhaul implementation recomputed it with an O(n) scan, so any
    drift here is silent corruption rather than a crash.
    """

    def test_len_exact_through_mixed_cancellation_and_drain(self):
        queue = EventQueue()
        events = [queue.push(float(i % 7), lambda: None) for i in range(50)]
        assert len(queue) == 50
        for event in events[::3]:
            event.cancel()
        expected = 50 - len(events[::3])
        assert len(queue) == expected
        drained = 0
        while queue.pop() is not None:
            drained += 1
            assert len(queue) == expected - drained
        assert drained == expected
        assert len(queue) == 0

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        event = queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # already fired; must not decrement the live count
        assert len(queue) == 1

    def test_cancel_after_clear_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        event.cancel()
        queue.push(1.0, lambda: None)
        assert len(queue) == 1

    def test_peek_time_discards_cancelled_head_and_keeps_count(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        head.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_push_action_entries_are_counted_and_popped(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.push_action(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        assert len(queue) == 2
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b"]
        assert len(queue) == 0

    def test_compaction_preserves_order_and_count(self):
        from repro.cluster.events import COMPACTION_MIN_CANCELLED

        queue = EventQueue()
        cancellable = [
            queue.push(float(i), lambda: None)
            for i in range(COMPACTION_MIN_CANCELLED + 10)
        ]
        survivors: list[float] = []
        keep_a = queue.push(0.5, lambda: survivors.append(0.5))
        keep_b = queue.push(2_000.0, lambda: survivors.append(2_000.0))
        for event in cancellable:
            event.cancel()
        # All cancellable events cancelled: compaction must have fired at the
        # threshold, bounding the heap to the stragglers cancelled after the
        # rebuild plus the two live events.
        assert len(queue) == 2
        assert len(queue._heap) < COMPACTION_MIN_CANCELLED
        while (event := queue.pop()) is not None:
            event.action()
        assert survivors == [0.5, 2_000.0]
        assert keep_a.cancelled is False and keep_b.cancelled is False


class TestFastPathScheduling:
    def test_push_call_dispatches_with_arguments(self):
        simulator = Simulator(rng=0)
        seen: list[tuple] = []

        def record(a, b):
            seen.append((a, b, simulator.now_ms))

        simulator.queue.push_call(4.0, record, "x", 1)
        simulator.queue.push_call(2.0, record, "y", 2)
        simulator.run()
        assert seen == [("y", 2, 2.0), ("x", 1, 4.0)]
        assert simulator.processed_events == 2

    def test_push_call_three_arguments_and_step(self):
        simulator = Simulator(rng=0)
        seen: list[tuple] = []
        simulator.queue.push_call(1.0, lambda a, b, c: seen.append((a, b, c)), 1, 2, 3)
        assert simulator.step() is True
        assert seen == [(1, 2, 3)]

    def test_schedule_action_runs_without_event_allocation(self):
        simulator = Simulator(rng=0)
        fired: list[float] = []
        simulator.schedule_action(5.0, lambda: fired.append(simulator.now_ms))
        with pytest.raises(SimulationError):
            simulator.schedule_action(-1.0, lambda: None)
        simulator.run()
        assert fired == [5.0]

    def test_schedule_at_action_validates_past(self):
        simulator = Simulator(rng=0)
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at_action(1.0, lambda: None)
        simulator.schedule_at_action(9.0, lambda: None)
        simulator.run()
        assert simulator.now_ms == 9.0

    def test_pop_wraps_raw_entries_in_events(self):
        queue = EventQueue()
        fired: list[int] = []
        queue.push_call(1.0, fired.append, 7)
        event = queue.pop()
        assert event is not None
        event.action()
        assert fired == [7]


class TestReferenceEngine:
    def test_reference_simulator_matches_new_engine_timing(self):
        from repro.cluster.reference import ReferenceSimulator

        for simulator in (Simulator(rng=0), ReferenceSimulator(rng=0)):
            seen: list[float] = []
            simulator.schedule(10.0, lambda s=simulator: seen.append(s.now_ms))
            simulator.schedule(5.0, lambda s=simulator: seen.append(s.now_ms))
            simulator.run(until_ms=7.0)
            assert seen == [5.0]
            assert simulator.now_ms == 7.0
            simulator.run()
            assert seen == [5.0, 10.0]
            assert simulator.processed_events == 2

    def test_reference_queue_len_and_cancel(self):
        from repro.cluster.reference import ReferenceEventQueue

        queue = ReferenceEventQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert len(queue) == 1


class TestProcessedCountOnFailure:
    def test_processed_events_exact_when_action_raises(self):
        simulator = Simulator(rng=0)
        simulator.schedule(1.0, lambda: None)

        def boom() -> None:
            raise RuntimeError("event action failed")

        simulator.schedule(2.0, boom)
        with pytest.raises(RuntimeError):
            simulator.run()
        # The event before the failure *and* the failing event were processed.
        assert simulator.processed_events == 2

    def test_event_storm_budget_survives_retried_runs(self):
        simulator = Simulator(rng=0, max_events=10)

        def rescheduling() -> None:
            simulator.schedule(1.0, rescheduling)

        simulator.schedule(1.0, rescheduling)
        with pytest.raises(SimulationError):
            simulator.run(until_ms=1_000.0)
        processed_after_storm = simulator.processed_events
        assert processed_after_storm >= 10
        # A retried run must not restart the budget from a stale count: the
        # very next processed event exceeds it again.
        simulator.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.run(until_ms=2_000.0)
        assert simulator.processed_events == processed_after_storm + 1
