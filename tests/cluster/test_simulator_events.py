"""Unit tests for the clock, event queue, and discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.cluster.clock import SimulationClock
from repro.cluster.events import EventQueue
from repro.cluster.simulator import Simulator
from repro.exceptions import SimulationError


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now_ms == 0.0

    def test_advance_forward(self):
        clock = SimulationClock()
        clock.advance_to(12.5)
        assert clock.now_ms == 12.5

    def test_cannot_move_backwards(self):
        clock = SimulationClock(start_ms=10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimulationClock(start_ms=-1.0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance_to(100.0)
        clock.reset()
        assert clock.now_ms == 0.0


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.push(5.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order: list[int] = []
        for index in range(5):
            queue.push(3.0, lambda i=index: order.append(i))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired: list[str] = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(2.0, lambda: fired.append("drop"))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["keep"]
        assert keep.label == ""

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(7.0, lambda: None)
        assert queue.peek_time() == 7.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_schedule_and_run_advances_clock(self):
        simulator = Simulator(rng=0)
        seen: list[float] = []
        simulator.schedule(10.0, lambda: seen.append(simulator.now_ms))
        simulator.schedule(5.0, lambda: seen.append(simulator.now_ms))
        simulator.run()
        assert seen == [5.0, 10.0]
        assert simulator.now_ms == 10.0
        assert simulator.processed_events == 2

    def test_schedule_at_absolute_time(self):
        simulator = Simulator(rng=0)
        simulator.schedule_at(3.0, lambda: None)
        simulator.run()
        assert simulator.now_ms == 3.0

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator(rng=0)
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_run_until_horizon_leaves_later_events(self):
        simulator = Simulator(rng=0)
        fired: list[float] = []
        simulator.schedule(1.0, lambda: fired.append(1.0))
        simulator.schedule(100.0, lambda: fired.append(100.0))
        simulator.run(until_ms=10.0)
        assert fired == [1.0]
        assert simulator.now_ms == 10.0
        assert simulator.pending_events == 1
        simulator.run()
        assert fired == [1.0, 100.0]

    def test_events_can_schedule_events(self):
        simulator = Simulator(rng=0)
        fired: list[str] = []

        def first() -> None:
            fired.append("first")
            simulator.schedule(5.0, lambda: fired.append("second"))

        simulator.schedule(1.0, first)
        simulator.run()
        assert fired == ["first", "second"]
        assert simulator.now_ms == 6.0

    def test_event_storm_guard(self):
        simulator = Simulator(rng=0, max_events=100)

        def rescheduling() -> None:
            simulator.schedule(1.0, rescheduling)

        simulator.schedule(1.0, rescheduling)
        with pytest.raises(SimulationError):
            simulator.run(until_ms=1_000.0)

    def test_reset_clears_queue_and_clock(self):
        simulator = Simulator(rng=0)
        simulator.schedule(50.0, lambda: None)
        simulator.run()
        simulator.schedule(10.0, lambda: None)
        simulator.reset()
        assert simulator.pending_events == 0
        assert simulator.now_ms == 0.0
        assert simulator.processed_events == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator(rng=0).step() is False

    def test_deterministic_rng_from_seed(self):
        a = Simulator(rng=7).rng.random(5)
        b = Simulator(rng=7).rng.random(5)
        assert list(a) == list(b)
