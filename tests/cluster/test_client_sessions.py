"""Unit tests for client sessions and the workload runner."""

from __future__ import annotations

import pytest

from repro.cluster.client import ClientSession, WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import WorkloadError
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.arrivals import FixedIntervalArrivals
from repro.workloads.keys import SingleKey
from repro.workloads.operations import MixedWorkload, Operation, OperationKind


def constant_wars() -> WARSDistributions:
    return WARSDistributions(
        w=ConstantLatency(1.0),
        a=ConstantLatency(1.0),
        r=ConstantLatency(1.0),
        s=ConstantLatency(1.0),
    )


def slow_write_wars() -> WARSDistributions:
    return WARSDistributions(
        w=ExponentialLatency.from_mean(30.0),
        a=ConstantLatency(0.1),
        r=ConstantLatency(0.1),
        s=ConstantLatency(0.1),
    )


class TestClientSession:
    def test_read_your_writes_with_strict_quorum(self):
        cluster = DynamoCluster(ReplicaConfig(3, 2, 2), constant_wars(), rng=0)
        session = ClientSession(cluster, "alice")
        session.write("profile", "v1")
        read = session.read("profile")
        assert read.value is not None and read.value.value == "v1"
        assert session.stats.read_your_writes_violations == 0
        assert session.stats.writes == 1 and session.stats.reads == 1

    def test_partial_quorum_sessions_can_violate_read_your_writes(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), slow_write_wars(), rng=11)
        session = ClientSession(cluster, "bob")
        violations = 0
        for index in range(60):
            session.write("item", f"v{index}")
            session.read("item")
        violations = session.stats.read_your_writes_violations
        assert violations > 0
        assert session.stats.read_your_writes_violation_rate == pytest.approx(
            violations / 60
        )

    def test_monotonic_violation_tracking_moves_forward(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), slow_write_wars(), rng=13)
        session = ClientSession(cluster, "carol")
        for index in range(40):
            session.write("feed", f"v{index}")
            session.read("feed")
        assert session.stats.reads == 40
        assert 0.0 <= session.stats.monotonic_violation_rate <= 1.0

    def test_empty_read_counted(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        session = ClientSession(cluster, "dave")
        session.read("never-written")
        assert session.stats.empty_reads == 1

    def test_zero_reads_rates_are_zero(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        session = ClientSession(cluster, "erin")
        assert session.stats.monotonic_violation_rate == 0.0
        assert session.stats.read_your_writes_violation_rate == 0.0


class TestWorkloadRunner:
    def test_runs_generated_workload_and_records_traces(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        workload = MixedWorkload(
            keys=SingleKey("hot"),
            arrivals=FixedIntervalArrivals(interval_ms=10.0),
            read_fraction=0.5,
        )
        operations = workload.generate(horizon_ms=500.0, rng=3)
        runner = WorkloadRunner(cluster)
        runner.run(operations)
        assert runner.scheduled_operations == len(operations)
        recorded = len(cluster.trace_log.writes) + len(cluster.trace_log.reads)
        assert recorded == len(operations)

    def test_rejects_operations_in_the_past(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        cluster.write("warmup", "x")  # advances the clock past zero
        runner = WorkloadRunner(cluster)
        with pytest.raises(WorkloadError):
            runner.schedule([Operation(start_ms=0.0, kind=OperationKind.READ, key="k")])

    def test_empty_workload_is_a_noop(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        WorkloadRunner(cluster).run([])
        assert not cluster.trace_log.writes and not cluster.trace_log.reads
