"""Tests for Dynamo-style sloppy quorums (write availability under replica failure)."""

from __future__ import annotations

import pytest

from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.latency.distributions import ConstantLatency
from repro.latency.production import WARSDistributions


def constant_wars() -> WARSDistributions:
    return WARSDistributions(
        w=ConstantLatency(2.0),
        a=ConstantLatency(1.0),
        r=ConstantLatency(1.0),
        s=ConstantLatency(1.0),
    )


def _cluster(sloppy: bool, hinted: bool = False) -> DynamoCluster:
    return DynamoCluster(
        ReplicaConfig(3, 1, 2),
        constant_wars(),
        node_count=5,
        sloppy_quorum=sloppy,
        hinted_handoff=hinted,
        timeout_ms=100.0,
        rng=0,
    )


class TestSloppyQuorumAvailability:
    def test_write_fails_without_sloppy_quorum(self):
        cluster = _cluster(sloppy=False)
        for node in cluster.replicas_for("key")[:2]:
            node.crash()
        handle = cluster.write("key", "value")
        assert not handle.committed

    def test_write_commits_with_sloppy_quorum(self):
        cluster = _cluster(sloppy=True)
        home_replicas = cluster.replicas_for("key")
        for node in home_replicas[:2]:
            node.crash()
        handle = cluster.write("key", "value")
        assert handle.committed
        # Two distinct fallback nodes were used, and they are not home replicas.
        assert len(handle.used_fallbacks) == 2
        assert handle.used_fallbacks.isdisjoint({n.node_id for n in home_replicas})

    def test_fallbacks_hold_the_data(self):
        cluster = _cluster(sloppy=True)
        for node in cluster.replicas_for("key")[:2]:
            node.crash()
        handle = cluster.write("key", "value")
        cluster.run()
        for fallback_id in handle.used_fallbacks:
            assert cluster.node(fallback_id).version_of("key") == handle.trace.version

    def test_no_commit_when_every_node_is_down(self):
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 2),
            constant_wars(),
            node_count=3,
            sloppy_quorum=True,
            timeout_ms=50.0,
            rng=0,
        )
        for node in cluster.replicas_for("key"):
            node.crash()
        handle = cluster.write("key", "value")
        assert not handle.committed

    def test_sloppy_quorum_with_hinted_handoff_replays_to_home_replica(self):
        cluster = _cluster(sloppy=True, hinted=True)
        victims = cluster.replicas_for("key")[:2]
        for node in victims:
            node.crash()
        handle = cluster.write("key", "value")
        cluster.run()
        assert handle.committed
        coordinator = cluster.coordinators[0]
        assert coordinator.pending_hint_count >= 1
        for node in victims:
            node.recover()
        cluster.replay_hints()
        cluster.run()
        for node in victims:
            assert node.version_of("key") == handle.trace.version

    def test_healthy_cluster_never_uses_fallbacks(self):
        cluster = _cluster(sloppy=True)
        handle = cluster.write("key", "value")
        cluster.run()
        assert handle.committed
        assert handle.used_fallbacks == set()

    def test_sloppy_reads_are_unaffected(self):
        # Reads still go to the home preference list, so a value held only by a
        # fallback is not visible until hints are replayed — matching Dynamo.
        cluster = _cluster(sloppy=True)
        victims = cluster.replicas_for("key")[:2]
        for node in victims:
            node.crash()
        cluster.write("key", "value")
        read = cluster.read("key")
        cluster.run()
        assert read.trace.completed
