"""Unit tests for anti-entropy, failure injection, tracing, and staleness detection."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.staleness_detector import StalenessDetector
from repro.cluster.store import DynamoCluster
from repro.cluster.tracing import ReadTrace, TraceLog, WriteTrace
from repro.cluster.versioning import Version
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions


def constant_wars() -> WARSDistributions:
    return WARSDistributions(
        w=ConstantLatency(4.0),
        a=ConstantLatency(1.0),
        r=ConstantLatency(2.0),
        s=ConstantLatency(3.0),
    )


def slow_write_wars(mean_ms: float = 50.0) -> WARSDistributions:
    return WARSDistributions(
        w=ExponentialLatency.from_mean(mean_ms),
        a=ConstantLatency(0.1),
        r=ConstantLatency(0.1),
        s=ConstantLatency(0.1),
    )


class TestMerkleAntiEntropy:
    def test_sync_repairs_diverged_replicas(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), slow_write_wars(500.0), rng=5)
        controller = cluster.enable_merkle_anti_entropy(interval_ms=50.0, pairs_per_round=3)
        write = cluster.write("key", "value")
        # Run long enough for several anti-entropy rounds but far less than the
        # 500 ms mean write propagation delay would need on its own... the
        # quorum expansion still happens, so instead verify the controller
        # performed work and replicas converge.
        cluster.run(until_ms=cluster.now_ms + 2_000.0)
        controller.stop()
        assert controller.stats.rounds > 0
        for node in cluster.replicas_for("key"):
            assert node.version_of("key") == write.trace.version

    def test_invalid_parameters_rejected(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        with pytest.raises(ConfigurationError):
            cluster.enable_merkle_anti_entropy(interval_ms=0.0)

    def test_no_work_when_replicas_agree(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 3), constant_wars(), rng=0)
        cluster.write("key", "value")
        cluster.run()
        controller = cluster.enable_merkle_anti_entropy(interval_ms=10.0)
        cluster.run(until_ms=cluster.now_ms + 100.0)
        controller.stop()
        assert controller.stats.keys_transferred == 0


class TestFailureInjection:
    def test_failure_event_validation(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(node_id="a", crash_at_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(node_id="a", crash_at_ms=10.0, recover_at_ms=5.0)

    def test_scheduled_crash_and_recovery(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        victim = cluster.nodes[0]
        cluster.failure_injector.schedule_crash(victim.node_id, at_ms=10.0, downtime_ms=20.0)
        cluster.run(until_ms=15.0)
        assert not victim.alive
        cluster.run(until_ms=40.0)
        assert victim.alive
        assert len(cluster.failure_injector.scheduled_events) == 1

    def test_random_failures_respect_horizon(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=1)
        injector = FailureInjector(cluster.simulator, cluster.membership)
        events = injector.schedule_random_failures(
            mean_time_to_failure_ms=100.0, mean_downtime_ms=10.0, horizon_ms=1_000.0
        )
        assert all(event.crash_at_ms < 1_000.0 for event in events)

    def test_random_failures_validate_parameters(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=1)
        with pytest.raises(ConfigurationError):
            cluster.failure_injector.schedule_random_failures(0.0, 1.0, 1.0)

    def test_overlapping_windows_for_same_node_rejected(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        injector = cluster.failure_injector
        node = cluster.nodes[0].node_id
        injector.schedule_crash(node, at_ms=10.0, downtime_ms=20.0)  # [10, 30)
        with pytest.raises(ConfigurationError, match="overlaps"):
            injector.schedule_crash(node, at_ms=25.0, downtime_ms=20.0)
        with pytest.raises(ConfigurationError, match="overlaps"):
            injector.schedule_crash(node, at_ms=5.0, downtime_ms=10.0)
        # The rejected events never landed: the list and the calendar agree.
        assert len(injector.scheduled_events) == 1

    def test_open_ended_downtime_blocks_every_later_crash(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        node = cluster.nodes[0].node_id
        cluster.failure_injector.schedule_crash(node, at_ms=50.0)  # never recovers
        with pytest.raises(ConfigurationError, match="overlaps"):
            cluster.failure_injector.schedule_crash(node, at_ms=1e9)

    def test_touching_windows_and_other_nodes_are_fine(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        injector = cluster.failure_injector
        first, second = cluster.nodes[0].node_id, cluster.nodes[1].node_id
        injector.schedule_crash(first, at_ms=10.0, downtime_ms=20.0)  # [10, 30)
        injector.schedule_crash(first, at_ms=30.0, downtime_ms=5.0)  # half-open: ok
        injector.schedule_crash(second, at_ms=15.0, downtime_ms=20.0)  # other node
        assert len(injector.scheduled_events) == 3


class TestTraceLog:
    def test_latest_committed_version_before(self):
        log = TraceLog()
        log.record_write(
            WriteTrace(
                operation_id=1,
                key="k",
                version=Version(1, "c"),
                coordinator="c",
                started_ms=0.0,
                committed_ms=5.0,
            )
        )
        log.record_write(
            WriteTrace(
                operation_id=2,
                key="k",
                version=Version(2, "c"),
                coordinator="c",
                started_ms=10.0,
                committed_ms=15.0,
            )
        )
        assert log.latest_committed_version_before("k", 4.0) is None
        assert log.latest_committed_version_before("k", 7.0) == Version(1, "c")
        assert log.latest_committed_version_before("k", 100.0) == Version(2, "c")
        assert log.commit_time_of("k", Version(2, "c")) == 15.0
        assert log.commit_time_of("k", Version(9, "c")) is None

    def test_committed_and_completed_filters(self):
        log = TraceLog()
        log.record_write(
            WriteTrace(
                operation_id=1,
                key="k",
                version=Version(1, "c"),
                coordinator="c",
                started_ms=0.0,
            )
        )
        log.record_read(
            ReadTrace(operation_id=2, key="k", coordinator="c", started_ms=1.0)
        )
        assert log.committed_writes() == []
        assert log.completed_reads() == []
        log.clear()
        assert not log.writes and not log.reads

    def test_arrival_offsets_require_commit(self):
        trace = WriteTrace(
            operation_id=1,
            key="k",
            version=Version(1, "c"),
            coordinator="c",
            started_ms=0.0,
            replica_arrivals_ms={"a": 3.0},
        )
        assert trace.arrival_offsets_from_commit() == {}
        trace.committed_ms = 5.0
        assert trace.arrival_offsets_from_commit() == {"a": -2.0}


class TestStalenessDetector:
    def _run_workload(self) -> DynamoCluster:
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), slow_write_wars(20.0), rng=7)
        for index in range(40):
            cluster.schedule_write("key", f"v{index}", at_ms=index * 50.0)
            cluster.schedule_read("key", at_ms=index * 50.0 + 1.0)
        cluster.run()
        return cluster

    def test_detector_flags_and_confirms_staleness(self):
        cluster = self._run_workload()
        detector = StalenessDetector(cluster.trace_log)
        signals = detector.inspect_all("key")
        assert len(signals) == len(cluster.trace_log.completed_reads("key"))
        # With a 20 ms mean write delay and reads 1 ms after the write starts,
        # some reads must be stale and some fresh.
        assert 0 < detector.confirmed_count < len(signals)
        # The raw detector can have false positives (newer uncommitted data)
        # but flagged + missed must cover every confirmed-stale read.
        for signal in signals:
            if signal.confirmed_stale and signal.newest_late_version is not None:
                assert (
                    signal.flagged
                    or signal.returned_version is None
                    or signal.newest_late_version <= signal.returned_version
                )

    def test_counts_are_consistent(self):
        cluster = self._run_workload()
        detector = cluster.staleness_detector
        detector.inspect_all("key")
        total_flagged = detector.flagged_count
        assert detector.false_positive_count <= total_flagged
        assert detector.confirmed_count + detector.false_positive_count >= total_flagged
