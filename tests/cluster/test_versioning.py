"""Unit tests for Lamport versions, vector clocks, and versioned values."""

from __future__ import annotations

import pytest

from repro.cluster.versioning import (
    Causality,
    LamportClock,
    VectorClock,
    Version,
    VersionedValue,
)
from repro.exceptions import SimulationError


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.time == 2

    def test_observe_takes_maximum_plus_one(self):
        clock = LamportClock(start=5)
        assert clock.observe(10) == 11
        assert clock.observe(3) == 12

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            LamportClock(start=-1)
        with pytest.raises(SimulationError):
            LamportClock().observe(-1)


class TestVersion:
    def test_total_order_by_timestamp_then_writer(self):
        assert Version(1, "b") < Version(2, "a")
        assert Version(2, "a") < Version(2, "b")
        assert Version(3, "a") > Version(2, "z")

    def test_is_newer_than_none(self):
        assert Version(1, "a").is_newer_than(None)

    def test_is_newer_than_other(self):
        assert Version(5, "a").is_newer_than(Version(4, "z"))
        assert not Version(4, "a").is_newer_than(Version(4, "a"))

    def test_negative_timestamp_rejected(self):
        with pytest.raises(SimulationError):
            Version(-1, "a")


class TestVectorClock:
    def test_increment_creates_new_clock(self):
        clock = VectorClock()
        advanced = clock.increment("node-a")
        assert clock.counters == {}
        assert advanced.counters == {"node-a": 1}

    def test_merge_is_elementwise_max(self):
        left = VectorClock({"a": 2, "b": 1})
        right = VectorClock({"b": 3, "c": 1})
        merged = left.merge(right)
        assert merged.counters == {"a": 2, "b": 3, "c": 1}

    def test_compare_equal(self):
        assert VectorClock({"a": 1}).compare(VectorClock({"a": 1})) is Causality.EQUAL

    def test_compare_before_and_after(self):
        small = VectorClock({"a": 1})
        big = VectorClock({"a": 2, "b": 1})
        assert small.compare(big) is Causality.BEFORE
        assert big.compare(small) is Causality.AFTER

    def test_compare_concurrent(self):
        left = VectorClock({"a": 1})
        right = VectorClock({"b": 1})
        assert left.compare(right) is Causality.CONCURRENT

    def test_dominates(self):
        base = VectorClock({"a": 1})
        assert base.increment("a").dominates(base)
        assert base.dominates(base)
        assert not base.dominates(base.increment("b"))

    def test_missing_entries_treated_as_zero(self):
        assert VectorClock({"a": 0}).compare(VectorClock({})) is Causality.EQUAL

    def test_negative_counter_rejected(self):
        with pytest.raises(SimulationError):
            VectorClock({"a": -1})


class TestVersionedValue:
    def test_supersedes_uses_total_order(self):
        old = VersionedValue(key="k", value=1, version=Version(1, "a"))
        new = VersionedValue(key="k", value=2, version=Version(2, "a"))
        assert new.supersedes(old)
        assert not old.supersedes(new)
        assert new.supersedes(None)

    def test_supersedes_rejects_cross_key_comparison(self):
        first = VersionedValue(key="k1", value=1, version=Version(1, "a"))
        second = VersionedValue(key="k2", value=1, version=Version(2, "a"))
        with pytest.raises(SimulationError):
            second.supersedes(first)
