"""Unit tests for the coordinator protocol and the DynamoCluster facade."""

from __future__ import annotations

import pytest

from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions


def constant_wars(w: float = 4.0, a: float = 1.0, r: float = 2.0, s: float = 3.0) -> WARSDistributions:
    """Deterministic WARS distributions for exact protocol assertions."""
    return WARSDistributions(
        w=ConstantLatency(w), a=ConstantLatency(a), r=ConstantLatency(r), s=ConstantLatency(s)
    )


class TestWritePath:
    def test_write_commits_after_w_acks(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 2), constant_wars(), rng=0)
        handle = cluster.write("key", "value")
        assert handle.committed
        # Commit latency = W delay + A delay (constant) = 5 ms.
        assert handle.trace.commit_latency_ms == pytest.approx(5.0)
        # All three replicas eventually receive the write; run out the queue.
        cluster.run()
        assert len(handle.trace.replica_arrivals_ms) == 3
        assert len(handle.trace.ack_arrivals_ms) == 3

    def test_write_trace_records_arrival_times(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(w=7.0), rng=0)
        handle = cluster.write("key", "value")
        cluster.run()
        for arrival in handle.trace.replica_arrivals_ms.values():
            assert arrival == pytest.approx(7.0)

    def test_versions_increase_across_writes(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        first = cluster.write("key", "v1")
        second = cluster.write("key", "v2")
        assert second.trace.version > first.trace.version

    def test_replicas_store_newest_version(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        cluster.write("key", "v1")
        second = cluster.write("key", "v2")
        cluster.run()
        for node in cluster.replicas_for("key"):
            assert node.version_of("key") == second.trace.version

    def test_write_with_failed_quorum_does_not_commit(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 2), constant_wars(), timeout_ms=50.0, rng=0)
        # Crash two replicas of the key: W=2 can never be reached.
        for node in cluster.replicas_for("key")[:2]:
            node.crash()
        handle = cluster.write("key", "value")
        assert handle.finished
        assert not handle.committed
        assert len(handle.trace.dropped_replicas) == 2

    def test_write_commits_despite_one_failure_when_w1(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        cluster.replicas_for("key")[0].crash()
        handle = cluster.write("key", "value")
        assert handle.committed


class TestReadPath:
    def test_read_returns_latest_committed_value(self):
        cluster = DynamoCluster(ReplicaConfig(3, 2, 2), constant_wars(), rng=0)
        write = cluster.write("key", "value")
        cluster.run()
        read = cluster.read("key")
        assert read.trace.returned_version == write.trace.version
        assert read.value is not None and read.value.value == "value"
        # Read latency = R delay + S delay = 5 ms.
        assert read.trace.latency_ms == pytest.approx(5.0)

    def test_read_of_missing_key_returns_none(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        read = cluster.read("absent")
        assert read.trace.completed
        assert read.trace.returned_version is None
        assert read.value is None

    def test_read_quorum_size_respected(self):
        cluster = DynamoCluster(ReplicaConfig(3, 2, 1), constant_wars(), rng=0)
        cluster.write("key", "value")
        cluster.run()
        read = cluster.read("key")
        assert len(read.trace.quorum_responses) == 2
        cluster.run()
        assert len(read.trace.late_responses) == 1

    def test_read_times_out_without_quorum(self):
        cluster = DynamoCluster(ReplicaConfig(3, 3, 1), constant_wars(), timeout_ms=50.0, rng=0)
        cluster.write("key", "value")
        cluster.run()
        cluster.replicas_for("key")[0].crash()
        read = cluster.read("key")
        assert read.trace.timed_out
        assert not read.trace.completed

    def test_voldemort_style_fanout_contacts_only_r_replicas(self):
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 1), constant_wars(), read_fanout_all=False, rng=0
        )
        cluster.write("key", "value")
        cluster.run()
        read = cluster.read("key")
        cluster.run()
        assert len(read.trace.quorum_responses) == 1
        assert len(read.trace.late_responses) == 0


class TestReadRepairAndHints:
    def test_read_repair_pushes_newest_version_to_stale_replicas(self):
        # Slow write propagation: with W=1 only the fastest replica has the
        # value when the read happens; read repair should fix the others.
        distributions = WARSDistributions(
            w=ExponentialLatency.from_mean(50.0),
            a=ConstantLatency(0.1),
            r=ConstantLatency(0.1),
            s=ConstantLatency(0.1),
        )
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 1), distributions, read_repair=True, rng=3
        )
        write = cluster.write("key", "value")
        read = cluster.read("key")
        cluster.run()
        assert read.trace.completed
        coordinator = cluster.coordinators[0]
        assert coordinator.repairs_sent >= 1
        for node in cluster.replicas_for("key"):
            assert node.version_of("key") == write.trace.version

    def test_hinted_handoff_counts_hints_for_crashed_replicas(self):
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 1), constant_wars(), hinted_handoff=True, node_count=4, rng=0
        )
        victim = cluster.replicas_for("key")[1]
        victim.crash()
        cluster.write("key", "value")
        cluster.run()
        coordinator = cluster.coordinators[0]
        assert coordinator.hints_stored == 1
        assert coordinator.pending_hint_count == 1
        victim.recover()
        assert cluster.replay_hints() == 1
        cluster.run()
        assert victim.version_of("key") is not None
        assert coordinator.pending_hint_count == 0


class TestDynamoClusterFacade:
    def test_node_count_defaults_to_replication_factor(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        assert len(cluster.nodes) == 3

    def test_node_count_below_n_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), node_count=2)

    def test_invalid_coordinator_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), coordinator_count=0)

    def test_scheduled_operations_record_traces(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        cluster.schedule_write("key", "v1", at_ms=10.0)
        cluster.schedule_read("key", at_ms=50.0)
        cluster.run()
        assert len(cluster.trace_log.writes) == 1
        assert len(cluster.trace_log.reads) == 1
        assert cluster.trace_log.writes[0].started_ms == pytest.approx(10.0)
        assert cluster.trace_log.reads[0].started_ms == pytest.approx(50.0)

    def test_round_robin_coordinators(self):
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 1), constant_wars(), coordinator_count=2, rng=0
        )
        first = cluster.write("a", 1)
        second = cluster.write("b", 2)
        assert first.trace.coordinator != second.trace.coordinator

    def test_replicas_for_returns_n_nodes(self):
        cluster = DynamoCluster(ReplicaConfig(3, 2, 2), constant_wars(), node_count=5, rng=0)
        assert len(cluster.replicas_for("some-key")) == 3

    def test_merkle_anti_entropy_controller_is_singleton(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        first = cluster.enable_merkle_anti_entropy(interval_ms=100.0)
        second = cluster.enable_merkle_anti_entropy(interval_ms=100.0)
        assert first is second
        assert cluster.anti_entropy is first
        first.stop()
