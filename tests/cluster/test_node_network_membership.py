"""Unit tests for storage nodes, the network model, and cluster membership."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.membership import Membership
from repro.cluster.network import Network
from repro.cluster.node import StorageNode
from repro.cluster.versioning import VectorClock, Version, VersionedValue
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ConstantLatency
from repro.latency.production import WARSDistributions, wan


def _value(key: str, timestamp: int, writer: str = "c", payload: object = None) -> VersionedValue:
    return VersionedValue(
        key=key,
        value=payload if payload is not None else f"v{timestamp}",
        version=Version(timestamp, writer),
        vector_clock=VectorClock({writer: timestamp}),
    )


class TestStorageNode:
    def test_apply_and_read(self):
        node = StorageNode(node_id="n1")
        result = node.apply_write(_value("k", 1), at_ms=5.0)
        assert result.applied
        stored = node.read("k")
        assert stored is not None and stored.version == Version(1, "c")
        assert node.arrival_time_ms("k") == 5.0
        assert node.applied_writes == 1
        assert node.served_reads == 1

    def test_newer_version_overwrites(self):
        node = StorageNode(node_id="n1")
        node.apply_write(_value("k", 1), 1.0)
        result = node.apply_write(_value("k", 2), 2.0)
        assert result.applied
        assert result.superseded_version == Version(1, "c")
        assert node.version_of("k") == Version(2, "c")

    def test_older_version_is_ignored(self):
        node = StorageNode(node_id="n1")
        node.apply_write(_value("k", 5), 1.0)
        result = node.apply_write(_value("k", 3), 2.0)
        assert not result.applied
        assert node.version_of("k") == Version(5, "c")
        assert node.arrival_time_ms("k") == 1.0

    def test_concurrent_versions_kept_as_siblings(self):
        node = StorageNode(node_id="n1")
        node.apply_write(_value("k", 5, writer="a"), 1.0)
        concurrent = VersionedValue(
            key="k",
            value="other",
            version=Version(4, "b"),
            vector_clock=VectorClock({"b": 1}),
        )
        node.apply_write(concurrent, 2.0)
        assert node.version_of("k") == Version(5, "a")
        assert len(node.siblings("k")) == 1

    def test_crashed_node_drops_messages(self):
        node = StorageNode(node_id="n1")
        node.crash()
        assert not node.apply_write(_value("k", 1), 1.0).applied
        assert node.read("k") is None
        assert node.dropped_messages == 2
        node.recover()
        assert node.apply_write(_value("k", 1), 2.0).applied

    def test_crash_preserves_existing_data(self):
        node = StorageNode(node_id="n1")
        node.apply_write(_value("k", 1), 1.0)
        node.crash()
        node.recover()
        assert node.version_of("k") == Version(1, "c")

    def test_snapshot_and_merkle(self):
        node = StorageNode(node_id="n1")
        node.apply_write(_value("a", 1), 1.0)
        node.apply_write(_value("b", 2), 1.0)
        snapshot = node.snapshot_versions()
        assert snapshot == {"a": Version(1, "c"), "b": Version(2, "c")}
        assert node.key_count() == 2
        assert set(node.keys()) == {"a", "b"}
        assert "a" in node
        node.validate()
        assert node.merkle_tree().root_hash != StorageNode(node_id="x").merkle_tree().root_hash


class TestNetwork:
    def _network(self, loss: float = 0.0) -> Network:
        distributions = WARSDistributions(
            w=ConstantLatency(4.0),
            a=ConstantLatency(3.0),
            r=ConstantLatency(2.0),
            s=ConstantLatency(1.0),
        )
        return Network(
            distributions=distributions,
            rng=np.random.default_rng(0),
            replica_slots={"n0": 0, "n1": 1, "n2": 2},
            loss_probability=loss,
        )

    def test_leg_specific_delays(self):
        network = self._network()
        assert network.write_delay("n0") == 4.0
        assert network.ack_delay("n0") == 3.0
        assert network.read_delay("n0") == 2.0
        assert network.response_delay("n0") == 1.0

    def test_per_replica_distribution_uses_slots(self):
        network = Network(
            distributions=wan(replica_count=3),
            rng=np.random.default_rng(0),
            replica_slots={"n0": 0, "n1": 1, "n2": 2},
        )
        # Slot 0 is local; slots 1-2 pay the 75 ms WAN delay.
        assert network.write_delay("n0") < 75.0
        assert network.write_delay("n1") > 75.0

    def test_per_replica_requires_slot(self):
        network = Network(
            distributions=wan(replica_count=3),
            rng=np.random.default_rng(0),
            replica_slots={},
        )
        with pytest.raises(ConfigurationError):
            network.write_delay("unknown")

    def test_partition_blocks_delivery_until_healed(self):
        network = self._network()
        assert network.delivers("a", "b")
        network.partition("a", "b")
        assert not network.delivers("a", "b")
        assert not network.delivers("b", "a")
        assert network.delivers("a", "c")
        network.heal("a", "b")
        assert network.delivers("a", "b")
        assert network.dropped_messages == 2

    def test_heal_all(self):
        network = self._network()
        network.partition("a", "b")
        network.partition("b", "c")
        network.heal_all()
        assert network.delivers("a", "b") and network.delivers("b", "c")

    def test_loss_probability_drops_messages(self):
        network = self._network(loss=0.5)
        outcomes = [network.delivers("a", "b") for _ in range(2_000)]
        drop_rate = 1.0 - np.mean(outcomes)
        assert 0.4 < drop_rate < 0.6

    def test_invalid_loss_probability(self):
        with pytest.raises(ConfigurationError):
            self._network(loss=1.5)


class TestMembership:
    def test_roster_and_lookup(self):
        membership = Membership(["a", "b", "c"])
        assert membership.node_ids == ["a", "b", "c"]
        assert membership.node("b").node_id == "b"
        assert len(membership) == 3
        with pytest.raises(ConfigurationError):
            membership.node("zzz")

    def test_duplicate_or_empty_roster_rejected(self):
        with pytest.raises(ConfigurationError):
            Membership(["a", "a"])
        with pytest.raises(ConfigurationError):
            Membership([])

    def test_preference_list_returns_nodes(self):
        membership = Membership(["a", "b", "c", "d"])
        replicas = membership.preference_list("key-1", 3)
        assert len(replicas) == 3
        assert all(hasattr(node, "apply_write") for node in replicas)

    def test_alive_and_failed_tracking(self):
        membership = Membership(["a", "b", "c"])
        membership.node("b").crash()
        assert {node.node_id for node in membership.failed_nodes()} == {"b"}
        assert {node.node_id for node in membership.alive_nodes()} == {"a", "c"}

    def test_add_and_remove_nodes(self):
        membership = Membership(["a", "b"])
        membership.add_node("c")
        assert "c" in membership.node_ids
        membership.remove_node("a")
        assert "a" not in membership.node_ids
        with pytest.raises(ConfigurationError):
            membership.add_node("c")

    def test_fallback_for_failed_replica(self):
        membership = Membership(["a", "b", "c", "d"])
        replicas = membership.preference_list("key-9", 3)
        failed = replicas[0].node_id
        fallback = membership.fallback_for("key-9", 3, failed)
        assert fallback is not None
        assert fallback.node_id not in {node.node_id for node in replicas}

    def test_fallback_requires_replica_membership(self):
        membership = Membership(["a", "b", "c", "d"])
        replicas = {node.node_id for node in membership.preference_list("key-9", 3)}
        outsider = next(node_id for node_id in membership.node_ids if node_id not in replicas)
        with pytest.raises(ConfigurationError):
            membership.fallback_for("key-9", 3, outsider)

    def test_fallback_none_when_all_nodes_are_replicas(self):
        membership = Membership(["a", "b", "c"])
        failed = membership.preference_list("key-1", 3)[0].node_id
        assert membership.fallback_for("key-1", 3, failed) is None
