"""Tests for the network's batched draw buffers (loss, partitions, determinism).

The contract under test (see :mod:`repro.cluster.sampling`):

* draws are consumed strictly in request order by delivered messages;
* delivery decisions never touch a latency buffer — a dropped message
  consumes exactly one loss draw and zero latency draws;
* fixed seed + fixed batch size => bit-for-bit reproducible runs;
* ``draw_batch_size=1`` reproduces the legacy per-message sampling stream,
  which the pinned reference engine also produces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Network
from repro.cluster.sampling import LatencyDrawBuffer, UniformDrawBuffer
from repro.cluster.store import DynamoCluster
from repro.cluster.client import WorkloadRunner
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.composite import PerReplicaLatency
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload


def _network(seed: int, batch_size: int = 64, loss: float = 0.0) -> Network:
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(10.0),
    )
    return Network(
        distributions=distributions,
        rng=np.random.default_rng(seed),
        replica_slots={f"n{i}": i for i in range(3)},
        loss_probability=loss,
        draw_batch_size=batch_size,
    )


class TestDrawBuffers:
    def test_buffer_serves_samples_in_order(self):
        distribution = ExponentialLatency.from_mean(5.0)
        buffer = LatencyDrawBuffer(distribution, np.random.default_rng(3), 16)
        expected = distribution.sample(16, np.random.default_rng(3))
        got = [buffer.draw() for _ in range(16)]
        assert got == pytest.approx(list(expected))
        assert buffer.refills == 1

    def test_refill_happens_exactly_at_batch_boundary(self):
        buffer = LatencyDrawBuffer(
            ExponentialLatency.from_mean(5.0), np.random.default_rng(0), 8
        )
        for index in range(20):
            buffer.draw()
            assert buffer.refills == index // 8 + 1

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LatencyDrawBuffer(
                ExponentialLatency.from_mean(5.0), np.random.default_rng(0), 0
            )
        with pytest.raises(ConfigurationError):
            UniformDrawBuffer(np.random.default_rng(0), -1)

    def test_uniform_buffer_matches_generator_stream(self):
        buffer = UniformDrawBuffer(np.random.default_rng(9), 8)
        expected = np.random.default_rng(9).random(8)
        assert [buffer.draw() for _ in range(8)] == pytest.approx(list(expected))


class TestNetworkBatching:
    def test_legs_sharing_a_distribution_share_one_buffer(self):
        # write_specialised aliases A=R=S to one object: its buffer serves
        # those legs' draws interleaved in request order.
        network = _network(seed=5, batch_size=32)
        other = network.distributions.a
        assert network.distributions.r is other and network.distributions.s is other
        expected = iter(other.sample(32, np.random.default_rng(5)))
        assert network.ack_delay("n0") == pytest.approx(next(expected))
        assert network.read_delay("n1") == pytest.approx(next(expected))
        assert network.response_delay("n2") == pytest.approx(next(expected))
        assert network.ack_delay("n2") == pytest.approx(next(expected))

    def test_batch_size_one_reproduces_legacy_per_draw_stream(self):
        network = _network(seed=11, batch_size=1)
        rng = np.random.default_rng(11)
        w = network.distributions.w
        other = network.distributions.a
        # Interleave legs exactly as a write+read would; the legacy path drew
        # sample(1, rng) per message at these same points.
        assert network.write_delay("n0") == pytest.approx(float(w.sample(1, rng)[0]))
        assert network.ack_delay("n0") == pytest.approx(float(other.sample(1, rng)[0]))
        assert network.read_delay("n1") == pytest.approx(float(other.sample(1, rng)[0]))
        assert network.write_delay("n2") == pytest.approx(float(w.sample(1, rng)[0]))

    def test_dropped_messages_consume_no_latency_draws(self):
        # Replica n1's messages are partitioned away; the delays served to
        # n0 and n2 must be exactly the first two values of the stream — the
        # dropped message shifts consumption, it does not burn a draw.
        baseline = _network(seed=7, batch_size=16)
        first, second = baseline.write_delay("n0"), baseline.write_delay("n1")

        partitioned = _network(seed=7, batch_size=16)
        partitioned.partition("coordinator-0", "n1")
        assert partitioned.delivers("coordinator-0", "n0")
        got_first = partitioned.write_delay("n0")
        assert not partitioned.delivers("coordinator-0", "n1")
        assert partitioned.delivers("coordinator-0", "n2")
        got_second = partitioned.write_delay("n2")
        assert (got_first, got_second) == (first, second)
        assert partitioned.dropped_messages == 1

    def test_loss_draws_come_from_a_dedicated_buffer(self):
        network = _network(seed=13, batch_size=8, loss=0.5)
        for _ in range(20):
            network.delivers("a", "b")
        # Loss decisions refilled their own buffer; no latency buffer exists
        # yet, so no latency draw was consumed by delivery decisions.
        assert network.draw_refills == 0
        assert network._loss_buffer is not None
        assert network._loss_buffer.refills >= 1
        assert network.dropped_messages > 0

    def test_fixed_seed_and_batch_size_are_deterministic(self):
        first = _network(seed=21, batch_size=16, loss=0.2)
        second = _network(seed=21, batch_size=16, loss=0.2)
        for _ in range(50):
            assert first.delivers("a", "b") == second.delivers("a", "b")
            assert first.write_delay("n0") == second.write_delay("n0")
        assert first.dropped_messages == second.dropped_messages

    def test_per_replica_distributions_get_separate_buffers(self):
        local = ExponentialLatency.from_mean(1.0, name="local")
        remote = ExponentialLatency.from_mean(80.0, name="remote")
        per_replica = PerReplicaLatency(replicas=(local, remote, remote))
        distributions = WARSDistributions(
            w=per_replica, a=local, r=local, s=local, name="wan-ish"
        )
        network = Network(
            distributions=distributions,
            rng=np.random.default_rng(2),
            replica_slots={"n0": 0, "n1": 1, "n2": 2},
            draw_batch_size=16,
        )
        # Slot 0 draws come from `local`'s stream, untouched by slot-1 draws.
        # The local buffer refills first (slot 0 is drawn first), so its
        # batch precedes the remote one on the shared generator's stream.
        probe = np.random.default_rng(2)
        expected_local = iter(local.sample(16, probe))
        expected_remote = iter(remote.sample(16, probe))
        assert network.write_delay("n0") == pytest.approx(next(expected_local))
        # Slots 1 and 2 alias the same `remote` object and share its buffer,
        # consuming that stream in request order.
        assert network.write_delay("n1") == pytest.approx(next(expected_remote))
        assert network.write_delay("n0") == pytest.approx(next(expected_local))
        assert network.write_delay("n2") == pytest.approx(next(expected_remote))

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            _network(seed=0, batch_size=0)


def _trace_fingerprint(cluster: DynamoCluster) -> tuple:
    writes = tuple(
        (trace.started_ms, trace.committed_ms, trace.version.timestamp)
        for trace in cluster.trace_log.writes
    )
    reads = tuple(
        (
            trace.started_ms,
            trace.completed_ms,
            None if trace.returned_version is None else trace.returned_version.timestamp,
        )
        for trace in cluster.trace_log.reads
    )
    return writes, reads


def _run_cluster(seed: int, **kwargs) -> DynamoCluster:
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(10.0),
    )
    cluster = DynamoCluster(
        config=ReplicaConfig(n=3, r=1, w=1),
        distributions=distributions,
        rng=seed,
        **kwargs,
    )
    operations = validation_workload(
        key="k", writes=40, write_interval_ms=100.0, read_offsets_ms=(1.0, 5.0, 20.0)
    )
    WorkloadRunner(cluster).run(operations)
    return cluster


class TestEndToEndDeterminism:
    def test_lossy_batched_runs_are_reproducible(self):
        first = _run_cluster(3, loss_probability=0.1)
        second = _run_cluster(3, loss_probability=0.1)
        assert _trace_fingerprint(first) == _trace_fingerprint(second)
        assert first.network.dropped_messages == second.network.dropped_messages

    def test_batch_size_one_matches_reference_engine_exactly(self):
        """draw_batch_size=1 on the new engine == the pinned pre-overhaul engine.

        The event representation never consumes randomness, so the two
        engines must produce bit-for-bit identical traces when both draw one
        sample per message.
        """
        batched_off = _run_cluster(17, draw_batch_size=1)
        reference = _run_cluster(17, engine="reference", event_labels=True)
        assert _trace_fingerprint(batched_off) == _trace_fingerprint(reference)

    def test_batch_size_changes_stream_but_not_statistics(self):
        # Different batch sizes give different (but statistically equivalent)
        # traces; this pins that they are *expected* to differ, so equality
        # tests elsewhere must hold batch size fixed.
        small = _run_cluster(23, draw_batch_size=2)
        large = _run_cluster(23, draw_batch_size=4096)
        assert _trace_fingerprint(small) != _trace_fingerprint(large)
        assert len(small.trace_log.reads) == len(large.trace_log.reads)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            _run_cluster(0, engine="warp-drive")


#: Endpoint pool for the churn property test: the original replicas plus
#: nodes that join mid-run.  The i.i.d. write distribution serves any node
#: name, matching how churned clusters draw for joiners without a slot.
_CHURN_NODES = ("n0", "n1", "n2", "joiner-a", "joiner-b")

_delivery_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(_CHURN_NODES) - 1), st.booleans()),
    min_size=1,
    max_size=40,
)


class TestDroppedDrawAccountingUnderChurn:
    """Dropped messages consume zero latency draws, even as nodes come and go.

    The property generalises ``test_dropped_messages_consume_no_latency_draws``
    to arbitrary partition/heal interleavings over a churned endpoint pool:
    whatever subset of messages is dropped, the delivered messages' delays are
    exactly the prefix of the loss-free stream, in order.
    """

    @given(plan=_delivery_plans, seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_delivered_delays_are_the_loss_free_prefix(self, plan, seed):
        baseline = _network(seed=seed, batch_size=16)
        expected = [
            baseline.write_delay(_CHURN_NODES[node]) for node, dropped in plan if not dropped
        ]

        network = _network(seed=seed, batch_size=16)
        delivered_delays = []
        for node_index, dropped in plan:
            node = _CHURN_NODES[node_index]
            if dropped:
                network.partition("coordinator-0", node)
                assert not network.delivers("coordinator-0", node)
                network.heal("coordinator-0", node)
            else:
                assert network.delivers("coordinator-0", node)
                delivered_delays.append(network.write_delay(node))

        assert delivered_delays == expected
        assert network.dropped_messages == sum(1 for _, dropped in plan if dropped)

    def test_lossy_churned_rebalancing_runs_are_reproducible(self):
        """Mid-run membership churn (ring rebalancing) plus message loss stays
        deterministic: same seed, same trace, same dropped count."""

        def churned(seed: int) -> DynamoCluster:
            distributions = WARSDistributions.write_specialised(
                write=ExponentialLatency.from_mean(20.0),
                other=ExponentialLatency.from_mean(10.0),
            )
            cluster = DynamoCluster(
                config=ReplicaConfig(n=3, r=1, w=1),
                distributions=distributions,
                rng=seed,
                node_count=5,
                loss_probability=0.1,
            )
            simulator = cluster.simulator
            simulator.schedule_at(
                1_500.0, lambda: cluster.membership.add_node("node-joiner"), label="join"
            )
            simulator.schedule_at(
                2_500.0, lambda: cluster.membership.remove_node("node-4"), label="leave"
            )
            operations = validation_workload(
                key="k", writes=40, write_interval_ms=100.0, read_offsets_ms=(1.0, 5.0, 20.0)
            )
            WorkloadRunner(cluster).run(operations)
            return cluster

        first = churned(31)
        second = churned(31)
        assert _trace_fingerprint(first) == _trace_fingerprint(second)
        assert first.network.dropped_messages == second.network.dropped_messages
        assert first.network.draw_refills == second.network.draw_refills
        assert first.membership.generation == second.membership.generation == 2
        # The churn actually rebalanced: the joiner is live, node-4 is gone.
        assert first.membership.node("node-joiner") is not None
        with pytest.raises(ConfigurationError):
            first.membership.node("node-4")
