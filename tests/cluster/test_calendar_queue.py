"""Tests for the calendar (bucket) event queue and the ``calendar`` engine.

The :class:`~repro.cluster.events.CalendarQueue` promises the *exact*
ordering contract of the tuple-heap :class:`~repro.cluster.events.EventQueue`
— same ``(time, sequence)`` tie-breaks, same cancellation and drain
semantics — so a cluster run on ``engine="calendar"`` must reproduce the
heap engine's traces bit for bit.  These tests pin that contract three ways:
unit behaviour mirroring the heap queue's tests, randomized pop-order
equivalence against the heap, and end-to-end cluster trace equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.events import (
    CALENDAR_MIN_BUCKETS,
    COMPACTION_MIN_CANCELLED,
    CalendarQueue,
    EventQueue,
)
from repro.cluster.client import WorkloadRunner
from repro.cluster.simulator import Simulator
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import SimulationError
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload


class TestCalendarQueueBehaviour:
    """The heap queue's unit behaviours, replayed on the calendar queue."""

    def test_pop_in_time_order(self):
        queue = CalendarQueue()
        fired: list[str] = []
        queue.push(5.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        queue = CalendarQueue()
        order: list[int] = []
        for index in range(5):
            queue.push(3.0, lambda i=index: order.append(i))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = CalendarQueue()
        fired: list[str] = []
        queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(2.0, lambda: fired.append("drop"))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["keep"]

    def test_len_ignores_cancelled(self):
        queue = CalendarQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        cancelled.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = CalendarQueue()
        assert queue.peek_time() is None
        queue.push(7.0, lambda: None)
        assert queue.peek_time() == 7.0
        assert len(queue) == 1  # peek does not consume

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            CalendarQueue().push(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            CalendarQueue().push_action(-1.0, lambda: None)

    def test_non_positive_width_rejected(self):
        with pytest.raises(SimulationError):
            CalendarQueue(width_ms=0.0)
        with pytest.raises(SimulationError):
            CalendarQueue(width_ms=-2.0)

    def test_push_action_and_push_call_entries_pop_in_order(self):
        queue = CalendarQueue()
        fired: list[object] = []
        queue.push_action(2.0, lambda: fired.append("action"))
        queue.push_call(1.0, fired.append, "call")
        queue.push(3.0, lambda: fired.append("event"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["call", "action", "event"]

    def test_clear_empties_and_detaches_events(self):
        queue = CalendarQueue()
        event = queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None
        event.cancel()  # detached: must not corrupt the cleared counters
        queue.push(1.0, lambda: None)
        assert len(queue) == 1

    def test_push_earlier_than_cursor_still_pops_first(self):
        # Pop at t=50 moves the cursor forward; a later push at t=10 must
        # still come out before t=60 (the cursor is lowered on insert).
        queue = CalendarQueue()
        queue.push(50.0, lambda: None)
        queue.push(60.0, lambda: None)
        assert queue.pop().time_ms == 50.0
        queue.push(10.0, lambda: None)
        assert queue.pop().time_ms == 10.0
        assert queue.pop().time_ms == 60.0

    def test_sparse_times_use_year_wrap_fallback(self):
        # Times separated by far more than nbuckets * width force the
        # empty-year fallback scan on every pop.
        queue = CalendarQueue(width_ms=1.0)
        times = [0.0, 10_000.0, 1_000_000.0, 3.0e9]
        for time_ms in reversed(times):
            queue.push(time_ms, lambda: None)
        assert [queue.pop().time_ms for _ in times] == times
        assert queue.pop() is None


class TestCalendarResizeAndCompaction:
    def test_grow_and_shrink_preserve_order(self):
        queue = CalendarQueue()
        count = 10 * CALENDAR_MIN_BUCKETS  # forces several doublings
        times = [float(i % 97) for i in range(count)]
        expected = sorted(range(count), key=lambda i: (times[i], i))
        popped: list[int] = []
        for index, time_ms in enumerate(times):
            queue.push(time_ms, lambda i=index: popped.append(i))
        assert queue._nbuckets > CALENDAR_MIN_BUCKETS
        while (event := queue.pop()) is not None:  # shrinks back down while draining
            event.action()
        assert popped == expected
        assert queue._nbuckets >= CALENDAR_MIN_BUCKETS

    def test_mass_cancellation_triggers_compaction(self):
        queue = CalendarQueue()
        cancellable = [
            queue.push(float(i), lambda: None)
            for i in range(COMPACTION_MIN_CANCELLED + 10)
        ]
        survivors: list[float] = []
        queue.push(0.5, lambda: survivors.append(0.5))
        queue.push(2_000.0, lambda: survivors.append(2_000.0))
        for event in cancellable:
            event.cancel()
        assert len(queue) == 2
        # Compaction dropped the cancelled entries from the buckets.
        assert queue._count - len(queue) < COMPACTION_MIN_CANCELLED
        while (event := queue.pop()) is not None:
            event.action()
        assert survivors == [0.5, 2_000.0]

    def test_rebuild_refits_width_to_pending_gaps(self):
        queue = CalendarQueue(width_ms=1.0)
        for i in range(4 * CALENDAR_MIN_BUCKETS):  # trigger at least one rebuild
            queue.push(100.0 * i, lambda: None)
        assert queue._width != 1.0  # refit to the observed 100 ms spacing
        times = [queue.pop().time_ms for _ in range(len(queue))]
        assert times == sorted(times)


class TestHeapEquivalence:
    """Randomized conformance: identical pop order to the tuple heap."""

    def test_fuzz_pop_order_matches_heap(self):
        rng = np.random.default_rng(1234)
        for _ in range(20):
            heap, calendar = EventQueue(), CalendarQueue()
            tracked = []
            for _ in range(200):
                time_ms = float(rng.choice([rng.uniform(0, 50), rng.uniform(0, 5_000)]))
                tracked.append((heap.push(time_ms, lambda: None),
                                calendar.push(time_ms, lambda: None)))
            for index in rng.choice(len(tracked), size=60, replace=False):
                heap_event, calendar_event = tracked[index]
                heap_event.cancel()
                calendar_event.cancel()
            heap_order = []
            while (event := heap.pop()) is not None:
                heap_order.append((event.time_ms, event.sequence))
            calendar_order = []
            while (event := calendar.pop()) is not None:
                calendar_order.append((event.time_ms, event.sequence))
            assert calendar_order == heap_order

    def test_fuzz_interleaved_push_pop(self):
        rng = np.random.default_rng(99)
        heap, calendar = EventQueue(), CalendarQueue()
        popped_heap: list[tuple] = []
        popped_calendar: list[tuple] = []
        floor = 0.0
        for _ in range(1_000):
            if len(heap) == 0 or rng.random() < 0.6:
                time_ms = floor + float(rng.uniform(0, 100))
                heap.push(time_ms, lambda: None)
                calendar.push(time_ms, lambda: None)
            else:
                a, b = heap.pop(), calendar.pop()
                assert (a.time_ms, a.sequence) == (b.time_ms, b.sequence)
                floor = a.time_ms
                popped_heap.append((a.time_ms, a.sequence))
        while (event := heap.pop()) is not None:
            popped_heap.append((event.time_ms, event.sequence))
        while (event := calendar.pop()) is not None:
            popped_calendar.append((event.time_ms, event.sequence))
        assert popped_heap[-len(popped_calendar):] == popped_calendar


class TestSimulatorIntegration:
    def test_simulator_runs_on_calendar_queue(self):
        simulator = Simulator(rng=0, queue=CalendarQueue())
        seen: list[float] = []
        simulator.schedule(10.0, lambda: seen.append(simulator.now_ms))
        simulator.schedule(5.0, lambda: seen.append(simulator.now_ms))
        simulator.run(until_ms=7.0)
        assert seen == [5.0]
        assert simulator.now_ms == 7.0
        simulator.run()
        assert seen == [5.0, 10.0]
        assert simulator.processed_events == 2

    def test_push_call_dispatches_with_arguments(self):
        simulator = Simulator(rng=0, queue=CalendarQueue())
        seen: list[tuple] = []
        simulator.queue.push_call(4.0, lambda a, b: seen.append((a, b)), "x", 1)
        simulator.queue.push_call(2.0, lambda a: seen.append((a,)), "y")
        simulator.queue.push_call(6.0, lambda a, b, c: seen.append((a, b, c)), 1, 2, 3)
        simulator.run()
        assert seen == [("y",), ("x", 1), (1, 2, 3)]

    def test_event_storm_guard(self):
        simulator = Simulator(rng=0, max_events=100, queue=CalendarQueue())

        def rescheduling() -> None:
            simulator.schedule(1.0, rescheduling)

        simulator.schedule(1.0, rescheduling)
        with pytest.raises(SimulationError):
            simulator.run(until_ms=1_000.0)


def _trace_fingerprint(cluster: DynamoCluster) -> tuple:
    writes = tuple(
        (trace.started_ms, trace.committed_ms, trace.version.timestamp)
        for trace in cluster.trace_log.writes
    )
    reads = tuple(
        (
            trace.started_ms,
            trace.completed_ms,
            None if trace.returned_version is None else trace.returned_version.timestamp,
        )
        for trace in cluster.trace_log.reads
    )
    return writes, reads


def _run_cluster(seed: int, **kwargs) -> DynamoCluster:
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(10.0),
    )
    cluster = DynamoCluster(
        config=ReplicaConfig(n=3, r=1, w=1),
        distributions=distributions,
        rng=seed,
        **kwargs,
    )
    operations = validation_workload(
        key="k", writes=40, write_interval_ms=100.0, read_offsets_ms=(1.0, 5.0, 20.0)
    )
    WorkloadRunner(cluster).run(operations)
    return cluster


class TestCalendarEngine:
    def test_calendar_engine_matches_batched_engine_exactly(self):
        for seed in (3, 17):
            batched = _run_cluster(seed, engine="batched")
            calendar = _run_cluster(seed, engine="calendar")
            assert isinstance(calendar.simulator._queue, CalendarQueue)
            assert _trace_fingerprint(calendar) == _trace_fingerprint(batched)

    def test_calendar_engine_matches_reference_engine_at_batch_size_one(self):
        reference = _run_cluster(5, engine="reference")
        calendar = _run_cluster(5, engine="calendar", draw_batch_size=1)
        assert _trace_fingerprint(calendar) == _trace_fingerprint(reference)

    def test_calendar_engine_with_loss_and_object_backend(self):
        batched = _run_cluster(11, engine="batched", loss_probability=0.2)
        calendar = _run_cluster(
            11, engine="calendar", loss_probability=0.2, trace_backend="object"
        )
        assert _trace_fingerprint(calendar) == _trace_fingerprint(batched)
