"""Unit tests for the consistent-hash ring and Merkle trees."""

from __future__ import annotations

import pytest

from repro.cluster.merkle import MerkleTree, diff_buckets
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.versioning import Version
from repro.exceptions import ConfigurationError


class TestConsistentHashRing:
    def test_preference_list_size_and_distinctness(self):
        ring = ConsistentHashRing([f"node-{i}" for i in range(5)])
        replicas = ring.preference_list("some-key", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_placement_is_deterministic(self):
        nodes = ["a", "b", "c", "d"]
        first = ConsistentHashRing(nodes).preference_list("key-42", 3)
        second = ConsistentHashRing(nodes).preference_list("key-42", 3)
        assert first == second

    def test_placement_stable_under_unrelated_node_removal(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = ring.preference_list("key-7", 2)
        unrelated = next(node for node in ["a", "b", "c", "d"] if node not in before)
        ring.remove_node(unrelated)
        after = ring.preference_list("key-7", 2)
        assert before == after

    def test_add_and_remove_nodes(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.add_node("c")
        assert ring.nodes == frozenset({"a", "b", "c"})
        ring.remove_node("a")
        assert ring.nodes == frozenset({"b", "c"})
        assert len(ring) == 2

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ConfigurationError):
            ring.add_node("a")
        with pytest.raises(ConfigurationError):
            ring.remove_node("zzz")
        with pytest.raises(ConfigurationError):
            ring.add_node("")

    def test_preference_list_larger_than_cluster_rejected(self):
        ring = ConsistentHashRing(["a", "b"])
        with pytest.raises(ConfigurationError):
            ring.preference_list("k", 3)
        with pytest.raises(ConfigurationError):
            ring.preference_list("k", 0)

    def test_ownership_reasonably_balanced(self):
        ring = ConsistentHashRing([f"node-{i}" for i in range(4)], virtual_nodes=128)
        fractions = ring.ownership_fractions([f"key-{i}" for i in range(2_000)])
        assert sum(fractions.values()) == pytest.approx(1.0)
        for fraction in fractions.values():
            assert 0.1 < fraction < 0.45

    def test_primary_is_first_of_preference_list(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.primary("key-1") == ring.preference_list("key-1", 3)[0]

    def test_invalid_virtual_node_count(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(["a"], virtual_nodes=0)


class TestMerkleTree:
    def _contents(self, count: int, stamp: int = 1) -> dict[str, Version]:
        return {f"key-{i}": Version(stamp, "writer") for i in range(count)}

    def test_identical_contents_have_identical_roots(self):
        left = MerkleTree.build(self._contents(50))
        right = MerkleTree.build(self._contents(50))
        assert left.root_hash == right.root_hash
        assert left.differing_buckets(right) == []

    def test_single_difference_is_localised(self):
        base = self._contents(100)
        changed = dict(base)
        changed["key-42"] = Version(2, "writer")
        left = MerkleTree.build(base, bucket_count=32)
        right = MerkleTree.build(changed, bucket_count=32)
        differing = left.differing_buckets(right)
        assert len(differing) == 1
        keys = diff_buckets(changed, differing, 32)
        assert "key-42" in keys

    def test_empty_trees_are_equal(self):
        assert MerkleTree.build({}).root_hash == MerkleTree.build({}).root_hash

    def test_bucket_count_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            MerkleTree.build({}, bucket_count=12)

    def test_diff_across_bucket_counts_rejected(self):
        left = MerkleTree.build({}, bucket_count=16)
        right = MerkleTree.build({}, bucket_count=32)
        with pytest.raises(ConfigurationError):
            left.differing_buckets(right)

    def test_levels_halve_up_to_root(self):
        tree = MerkleTree.build(self._contents(10), bucket_count=8)
        sizes = [len(level) for level in tree.levels]
        assert sizes == [8, 4, 2, 1]
