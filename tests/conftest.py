"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def workers(request) -> int:
    """Worker-process count for tests exercising the sharded sweep engine.

    Defaults to 2 (enough to prove the process-pool path without slowing
    tier-1); override with ``pytest --engine-workers N``.  Seed-mode engine
    results are worker-count invariant, so tests using this fixture must pass
    for any value.
    """
    return request.config.getoption("--engine-workers")


@pytest.fixture
def partial_config() -> ReplicaConfig:
    """The Cassandra-default partial quorum: N=3, R=W=1."""
    return ReplicaConfig(n=3, r=1, w=1)


@pytest.fixture
def strict_config() -> ReplicaConfig:
    """A strict quorum: N=3, R=W=2."""
    return ReplicaConfig(n=3, r=2, w=2)


@pytest.fixture
def exponential_wars() -> WARSDistributions:
    """Exponential WARS distributions with a slow write path (mean 10 ms vs 2 ms)."""
    return WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(10.0),
        other=ExponentialLatency.from_mean(2.0),
        name="exp-test",
    )


@pytest.fixture
def fast_symmetric_wars() -> WARSDistributions:
    """Symmetric exponential WARS distributions with 1 ms means."""
    return WARSDistributions.symmetric(ExponentialLatency.from_mean(1.0), name="exp-fast")
