"""Shared fixtures for the Monte Carlo engine test suite."""

from __future__ import annotations

import pytest

from repro.kernels import registered_backends
from repro.kernels.numba_backend import numba_available


@pytest.fixture(
    params=[
        pytest.param(
            name,
            marks=pytest.mark.skipif(
                name == "numba" and not numba_available(),
                reason="numba is not installed; the backend falls back to numpy",
            ),
        )
        for name in registered_backends()
    ]
)
def kernel_backend(request) -> str:
    """Every registered sampling-reduction backend, numba guarded.

    Tests taking this fixture run once per backend, so the engine and its
    front-ends are exercised under each reduction implementation; the numba
    case skips (rather than silently falling back) on machines without the
    JIT runtime — CI's numba leg runs it for real.
    """
    return request.param
