"""Equivalence properties of the shared-sample sweep engine.

The engine's correctness contract against the single-configuration kernel
(:meth:`repro.core.wars.WARSModel.sample`) has three layers:

1. *Exact*: a single-chunk engine run fed a generator in the same state as
   the kernel reproduces the kernel's per-trial arrays bit-for-bit, for every
   configuration evaluated against the shared batch.
2. *Chunk-invariant*: with an integer seed, the accumulated consistency
   counts do not depend on the chosen chunk size.
3. *Statistical*: seeded engine summaries agree with independent kernel runs
   within Wilson-interval tolerance (consistency) and 2% (latency
   percentiles).

Plus the early-stopping contract: a sweep that stops before its trial budget
never reports an estimate whose Wilson half-width exceeds the requested
tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quorum import ReplicaConfig, iter_configs
from repro.core.wars import WARSModel, sample_wars_batch
from repro.exceptions import AnalysisError, ConfigurationError
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions, lnkd_ssd, ymmr
from repro.montecarlo.convergence import wilson_interval
from repro.montecarlo.engine import (
    SAMPLE_BLOCK,
    StreamingHistogram,
    SweepEngine,
)

_CONFIGS = tuple(iter_configs(3))
_TIMES = (0.0, 0.5, 2.0, 10.0, 50.0)


def _assert_trial_results_equal(actual, expected) -> None:
    assert actual.config == expected.config
    assert np.array_equal(actual.commit_latencies_ms, expected.commit_latencies_ms)
    assert np.array_equal(actual.read_latencies_ms, expected.read_latencies_ms)
    assert np.array_equal(
        actual.staleness_thresholds_ms, expected.staleness_thresholds_ms
    )
    assert np.array_equal(actual.write_arrivals_ms, expected.write_arrivals_ms)


class TestExactEquivalence:
    """Single-chunk engine runs reproduce the kernel bit-for-bit."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        trials=st.integers(min_value=1, max_value=3_000),
        config=st.sampled_from(_CONFIGS),
    )
    def test_single_chunk_same_generator_matches_kernel(self, seed, trials, config):
        distributions = ymmr()
        engine = SweepEngine(
            distributions,
            (config,),
            times_ms=_TIMES,
            chunk_size=max(trials, 1),
            keep_samples=True,
        )
        sweep = engine.run(trials, np.random.default_rng(seed))
        kernel = WARSModel(distributions, config).sample(
            trials, np.random.default_rng(seed)
        )
        _assert_trial_results_equal(sweep.results[0].as_trial_result(), kernel)
        # The streaming counts agree with the kernel's exact curve.
        for t_ms, probability in sweep.results[0].consistency_curve(_TIMES):
            assert probability == kernel.consistency_probability(t_ms)
        # With samples kept, derived statistics are the kernel's exactly.
        assert sweep.results[0].t_visibility(0.999) == kernel.t_visibility(0.999)
        assert sweep.results[0].read_latency_percentile(99.0) == kernel.read_latency_percentile(99.0)
        assert sweep.results[0].write_latency_percentile(99.0) == kernel.write_latency_percentile(99.0)

    def test_every_config_matches_shared_batch_reduction(self):
        """A multi-config sweep equals reducing one explicitly drawn batch."""
        distributions = ymmr()
        trials = 4_096
        engine = SweepEngine(
            distributions,
            _CONFIGS,
            times_ms=_TIMES,
            chunk_size=trials,
            keep_samples=True,
        )
        sweep = engine.run(trials, np.random.default_rng(11))
        batch = sample_wars_batch(distributions, trials, 3, np.random.default_rng(11))
        for summary in sweep:
            _assert_trial_results_equal(
                summary.as_trial_result(), batch.reduce(summary.config)
            )

    def test_strict_quorums_report_zero_window_and_full_consistency(self):
        sweep = SweepEngine(ymmr(), _CONFIGS, times_ms=_TIMES).run(20_000, 3)
        for summary in sweep:
            if summary.config.is_strict:
                assert summary.t_visibility(0.999) == 0.0
                assert summary.probability_never_stale() == 1.0

    def test_shared_samples_preserve_per_trial_coupling(self):
        """Monotonicity in R holds trial-for-trial, not just in expectation."""
        engine = SweepEngine(
            lnkd_ssd(),
            (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 1), ReplicaConfig(3, 3, 1)),
            keep_samples=True,
        )
        sweep = engine.run(8_192, 5)
        thresholds = [s.as_trial_result().staleness_thresholds_ms for s in sweep]
        assert np.all(thresholds[1] <= thresholds[0])
        assert np.all(thresholds[2] <= thresholds[1])


class TestChunkInvariance:
    """Seeded runs accumulate identical counts regardless of chunk size."""

    @pytest.mark.parametrize("chunk_size", [1, SAMPLE_BLOCK, 2 * SAMPLE_BLOCK])
    def test_chunked_matches_unchunked_counts_exactly(self, chunk_size):
        distributions = ymmr()
        trials = 2 * SAMPLE_BLOCK + 1_234  # deliberately not a block multiple
        unchunked = SweepEngine(
            distributions, _CONFIGS, times_ms=_TIMES, chunk_size=10 * SAMPLE_BLOCK
        ).run(trials, 42)
        chunked = SweepEngine(
            distributions, _CONFIGS, times_ms=_TIMES, chunk_size=chunk_size
        ).run(trials, 42)
        for one, other in zip(unchunked, chunked):
            assert one.config == other.config
            assert one.trials == other.trials == trials
            assert one.consistent_counts == other.consistent_counts
            assert one.nonpositive_thresholds == other.nonpositive_thresholds

    def test_seeded_experiment_results_are_chunk_size_invariant(self):
        """The shipped experiment paths forward integer seeds to the engine,
        so published numbers must not depend on --chunk-size."""
        from repro.experiments.registry import run_experiment

        small = run_experiment("table4", trials=20_000, rng=0, chunk_size=SAMPLE_BLOCK)
        large = run_experiment("table4", trials=20_000, rng=0, chunk_size=50 * SAMPLE_BLOCK)
        assert small.rows == large.rows

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        trials=st.integers(min_value=1, max_value=3 * SAMPLE_BLOCK),
    )
    def test_counts_are_a_pure_function_of_seed_and_trials(self, seed, trials):
        distributions = lnkd_ssd()
        configs = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2))
        first = SweepEngine(
            distributions, configs, times_ms=_TIMES, chunk_size=SAMPLE_BLOCK
        ).run(trials, seed)
        second = SweepEngine(
            distributions, configs, times_ms=_TIMES, chunk_size=3 * SAMPLE_BLOCK
        ).run(trials, seed)
        assert [s.consistent_counts for s in first] == [
            s.consistent_counts for s in second
        ]


class TestWorkerChunkDeterminismMatrix:
    """workers x chunk_size matrix: one seed, one answer.

    Seed-mode sampling blocks are keyed by block index, chunk boundaries are
    block-aligned, and worker partials merge exactly — so every cell of the
    {workers} x {chunk_size} matrix must produce identical ``SweepResult``
    counts and quantiles.  The reference cell is the plain serial run.
    """

    _TRIALS = 5 * SAMPLE_BLOCK + 321
    _SEED = 2024
    _MATRIX_CONFIGS = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2))

    @classmethod
    def _run(cls, workers: int, chunk_size: int):
        return SweepEngine(
            lnkd_ssd(),
            cls._MATRIX_CONFIGS,
            times_ms=_TIMES,
            chunk_size=chunk_size,
            workers=workers,
        ).run(cls._TRIALS, cls._SEED)

    @classmethod
    def _reference(cls):
        if not hasattr(cls, "_cached_reference"):
            cls._cached_reference = cls._run(workers=1, chunk_size=SAMPLE_BLOCK)
        return cls._cached_reference

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize(
        "chunk_size",
        [SAMPLE_BLOCK, 3 * SAMPLE_BLOCK],
        ids=["small-chunk", "large-chunk"],
    )
    def test_counts_and_quantiles_identical_across_matrix(self, workers, chunk_size):
        reference = self._reference()
        candidate = self._run(workers=workers, chunk_size=chunk_size)
        assert candidate.trials_run == reference.trials_run == self._TRIALS
        for ours, theirs in zip(candidate, reference):
            assert ours.config == theirs.config
            assert ours.trials == theirs.trials
            assert ours.consistent_counts == theirs.consistent_counts
            assert ours.nonpositive_thresholds == theirs.nonpositive_thresholds
            for q in (0.5, 0.99, 0.999):
                assert ours.t_visibility(q) == theirs.t_visibility(q)
                assert ours.read_latency_percentile(q * 100.0) == theirs.read_latency_percentile(q * 100.0)
                assert ours.write_latency_percentile(q * 100.0) == theirs.write_latency_percentile(q * 100.0)


class TestStatisticalEquivalence:
    """Engine summaries match independent kernel runs within tolerance."""

    def test_consistency_curves_within_wilson_tolerance(self):
        distributions = ymmr()
        trials = 60_000
        sweep = SweepEngine(distributions, _CONFIGS, times_ms=_TIMES).run(trials, 101)
        for summary in sweep:
            independent = WARSModel(distributions, summary.config).sample(trials, 202)
            for t_ms in _TIMES:
                engine_estimate = summary.estimate_at(t_ms, confidence=0.999)
                kernel_p = independent.consistency_probability(t_ms)
                kernel_margin = wilson_interval(
                    int(round(kernel_p * trials)), trials, 0.999
                ).margin
                assert abs(engine_estimate.probability - kernel_p) <= (
                    engine_estimate.margin + kernel_margin
                )

    def test_latency_percentiles_within_two_percent(self):
        # Light-tailed exponential legs keep the seed-to-seed Monte Carlo
        # noise of the reference percentiles well inside the 2% budget, so
        # the comparison isolates the engine's own error.
        distributions = WARSDistributions.write_specialised(
            write=ExponentialLatency.from_mean(10.0),
            other=ExponentialLatency.from_mean(2.0),
            name="exp-equivalence",
        )
        trials = 60_000
        sweep = SweepEngine(distributions, _CONFIGS).run(trials, 7)
        for summary in sweep:
            independent = WARSModel(distributions, summary.config).sample(trials, 8)
            for percentile in (50.0, 95.0, 99.0):
                assert summary.read_latency_percentile(percentile) == pytest.approx(
                    independent.read_latency_percentile(percentile), rel=0.02
                )
                assert summary.write_latency_percentile(percentile) == pytest.approx(
                    independent.write_latency_percentile(percentile), rel=0.02
                )

    def test_sketch_tracks_exact_percentiles_on_heavy_tails(self):
        """On YMMR's heavy tails the streaming sketch stays within 2% of the
        exact per-trial percentiles, p50 through p99.9.

        Two seeded runs see identical trials (seed mode is chunk- and
        flag-invariant), so comparing the no-keep run's sketches against the
        keep-samples run's exact arrays isolates the sketch error.
        """
        sketched = SweepEngine(ymmr(), _CONFIGS).run(100_000, 1)
        exact = SweepEngine(ymmr(), _CONFIGS, keep_samples=True).run(100_000, 1)
        for sketch_summary, exact_summary in zip(sketched, exact):
            for percentile in (50.0, 99.0, 99.9):
                assert sketch_summary.read_latency_percentile(percentile) == pytest.approx(
                    exact_summary.read_latency_percentile(percentile), rel=0.02
                )
                assert sketch_summary.write_latency_percentile(percentile) == pytest.approx(
                    exact_summary.write_latency_percentile(percentile), rel=0.02
                )

    def test_t_visibility_matches_kernel_within_two_percent(self):
        distributions = ymmr()
        trials = 60_000
        config = ReplicaConfig(3, 1, 1)
        summary = SweepEngine(distributions, (config,)).run(trials, 31).results[0]
        independent = WARSModel(distributions, config).sample(trials, 32)
        assert summary.t_visibility(0.99) == pytest.approx(
            independent.t_visibility(0.99), rel=0.05
        )


class TestEarlyStopping:
    """Early stopping honours the requested Wilson half-width tolerance."""

    def test_stopping_never_violates_tolerance(self):
        tolerance = 0.02
        sweep = SweepEngine(
            ymmr(),
            _CONFIGS,
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            tolerance=tolerance,
        ).run(1_000_000, 13)
        assert sweep.stopped_early
        assert sweep.converged
        assert sweep.trials_run < sweep.trials_requested
        for summary in sweep:
            assert summary.max_margin() <= tolerance

    def test_budget_exhaustion_reports_unconverged(self):
        sweep = SweepEngine(
            ymmr(),
            (ReplicaConfig(3, 1, 1),),
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            tolerance=1e-6,
        ).run(2 * SAMPLE_BLOCK, 13)
        assert not sweep.stopped_early
        assert not sweep.converged
        assert sweep.trials_run == sweep.trials_requested

    def test_min_trials_floor_delays_early_stopping(self):
        """Call sites reporting tail quantiles set a floor so a loose
        tolerance cannot starve the tail of samples."""
        from repro.montecarlo.engine import min_trials_for_quantile

        floored = SweepEngine(
            ymmr(),
            (ReplicaConfig(3, 1, 1),),
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            tolerance=0.05,
            min_trials=3 * SAMPLE_BLOCK,
        ).run(1_000_000, 13)
        assert floored.stopped_early
        assert floored.trials_run >= 3 * SAMPLE_BLOCK
        # The standard ~100-tail-samples rule.
        assert min_trials_for_quantile(0.999) == 100_000
        assert min_trials_for_quantile(0.5) == 200
        with pytest.raises(ConfigurationError):
            min_trials_for_quantile(0.0)

    def test_tighter_tolerance_needs_more_trials(self):
        loose = SweepEngine(
            ymmr(), _CONFIGS, times_ms=_TIMES, chunk_size=SAMPLE_BLOCK, tolerance=0.02
        ).run(10_000_000, 1)
        tight = SweepEngine(
            ymmr(), _CONFIGS, times_ms=_TIMES, chunk_size=SAMPLE_BLOCK, tolerance=0.005
        ).run(10_000_000, 1)
        assert loose.stopped_early and tight.stopped_early
        assert loose.trials_run < tight.trials_run


class TestEngineValidationAndSketch:
    def test_rejects_bad_parameters(self):
        distributions = lnkd_ssd()
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, ())
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (ReplicaConfig(3, 1, 1),), chunk_size=0)
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (ReplicaConfig(3, 1, 1),), tolerance=1.5)
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (ReplicaConfig(3, 1, 1),), times_ms=(-1.0,))
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (ReplicaConfig(3, 1, 1),)).run(0)

    def test_probability_beyond_probe_grid_raises(self):
        """A streaming summary has no data past its probe grid; silently
        clamping would understate the curve, so it must raise instead."""
        summary = (
            SweepEngine(lnkd_ssd(), (ReplicaConfig(3, 1, 1),), times_ms=(0.0, 5.0))
            .run(2_000, 0)
            .results[0]
        )
        assert 0.0 <= summary.consistency_probability(2.5) <= 1.0  # interpolated
        with pytest.raises(ConfigurationError):
            summary.consistency_probability(50.0)
        with pytest.raises(ConfigurationError):
            summary.consistency_probability(-1.0)

    def test_samples_not_kept_by_default(self):
        sweep = SweepEngine(lnkd_ssd(), (ReplicaConfig(3, 1, 1),)).run(1_000, 0)
        with pytest.raises(AnalysisError):
            sweep.results[0].as_trial_result()

    def test_for_config_lookup(self):
        configs = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2))
        sweep = SweepEngine(lnkd_ssd(), configs).run(1_000, 0)
        assert sweep.for_config(configs[1]).config == configs[1]
        with pytest.raises(ConfigurationError):
            sweep.for_config(ReplicaConfig(5, 1, 1))

    def test_mixed_replication_factors_share_nothing_across_n(self):
        """Mixed-N sweeps evaluate each group against its own N-column draw."""
        configs = (ReplicaConfig(2, 1, 1), ReplicaConfig(3, 1, 1), ReplicaConfig(5, 1, 1))
        sweep = SweepEngine(lnkd_ssd(), configs, keep_samples=True).run(4_096, 0)
        for summary, config in zip(sweep, configs):
            assert summary.config == config
            assert summary.as_trial_result().write_arrivals_ms.shape == (4_096, config.n)
        # Figure 7's shape: consistency at commit decreases as N grows.
        at_commit = [s.probability_never_stale() for s in sweep]
        assert at_commit[0] > at_commit[-1]

    def test_configs_sharing_n_share_one_arrivals_matrix(self):
        """The (trials x N) propagation matrix is materialised once per
        replication factor, not once per configuration."""
        configs = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 1), ReplicaConfig(3, 2, 2))
        sweep = SweepEngine(lnkd_ssd(), configs, keep_samples=True).run(4_096, 0)
        arrivals = [s.as_trial_result().write_arrivals_ms for s in sweep]
        assert arrivals[0] is arrivals[1] is arrivals[2]

    def test_seeded_streams_are_keyed_by_replication_factor(self):
        """A config's seeded samples are identical whether swept alone or
        alongside other replication factors (streams keyed by N)."""
        config = ReplicaConfig(3, 2, 1)
        alone = SweepEngine(lnkd_ssd(), (config,), keep_samples=True).run(4_096, 9)
        mixed = SweepEngine(
            lnkd_ssd(),
            (ReplicaConfig(2, 1, 1), config, ReplicaConfig(5, 1, 1)),
            keep_samples=True,
        ).run(4_096, 9)
        _assert_trial_results_equal(
            alone.results[0].as_trial_result(),
            mixed.for_config(config).as_trial_result(),
        )

    def test_constant_latencies_reproduce_degenerate_percentiles_exactly(self):
        distributions = WARSDistributions.symmetric(ConstantLatency(1.0))
        summary = SweepEngine(distributions, (ReplicaConfig(3, 2, 2),)).run(2_000, 0).results[0]
        assert summary.read_latency_percentile(50.0) == pytest.approx(2.0)
        assert summary.write_latency_percentile(99.9) == pytest.approx(2.0)
        assert summary.t_visibility(0.999) == 0.0

    def test_streaming_histogram_tracks_extremes_and_quantiles(self):
        histogram = StreamingHistogram(bins=64)
        rng = np.random.default_rng(0)
        first = rng.normal(10.0, 2.0, 10_000)
        later = rng.normal(10.0, 6.0, 10_000)  # spills past the frozen edges
        histogram.update(first)
        histogram.update(later)
        merged = np.concatenate([first, later])
        assert histogram.count == merged.size
        assert histogram.min == merged.min()
        assert histogram.max == merged.max()
        assert histogram.quantile(0.0) == merged.min()
        assert histogram.quantile(1.0) == merged.max()
        assert histogram.quantile(0.5) == pytest.approx(np.quantile(merged, 0.5), rel=0.02)

    def test_streaming_histogram_validation(self):
        histogram = StreamingHistogram()
        with pytest.raises(AnalysisError):
            histogram.quantile(0.5)
        histogram.update(np.asarray([1.0, 2.0]))
        with pytest.raises(AnalysisError):
            histogram.quantile(1.5)
        with pytest.raises(AnalysisError):
            StreamingHistogram(bins=0)

    def test_exponential_reference_distribution_quantiles(self):
        """Sketch percentiles track an analytic quantile function closely."""
        distributions = WARSDistributions.symmetric(ExponentialLatency.from_mean(5.0))
        config = ReplicaConfig(3, 3, 3)
        summary = SweepEngine(distributions, (config,)).run(60_000, 17).results[0]
        independent = WARSModel(distributions, config).sample(60_000, 18)
        assert summary.read_latency_percentile(99.0) == pytest.approx(
            independent.read_latency_percentile(99.0), rel=0.02
        )


class TestKernelBackendInvariance:
    """Engine invariants hold under every registered reduction backend.

    The ``kernel_backend`` fixture (tests/montecarlo/conftest.py) runs these
    once per registered backend — numba cases skip on machines without the
    JIT runtime and run for real on CI's numba leg.  Statistical equivalence
    between backends lives in test_kernels.py; these check that the *engine
    contracts* (chunk-size invariance, worker invariance) are preserved by
    whichever backend does the reduction.
    """

    _BACKEND_CONFIGS = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2))

    def test_counts_chunk_size_invariant_per_backend(self, kernel_backend):
        distributions = lnkd_ssd()
        trials = 2 * SAMPLE_BLOCK + 777
        small = SweepEngine(
            distributions,
            self._BACKEND_CONFIGS,
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            kernel_backend=kernel_backend,
        ).run(trials, 42)
        large = SweepEngine(
            distributions,
            self._BACKEND_CONFIGS,
            times_ms=_TIMES,
            chunk_size=10 * SAMPLE_BLOCK,
            kernel_backend=kernel_backend,
        ).run(trials, 42)
        assert small.kernel_backend == large.kernel_backend == kernel_backend
        for one, other in zip(small, large):
            assert one.consistent_counts == other.consistent_counts
            assert one.nonpositive_thresholds == other.nonpositive_thresholds

    def test_counts_worker_invariant_per_backend(self, kernel_backend, workers):
        distributions = lnkd_ssd()
        trials = 3 * SAMPLE_BLOCK + 5
        serial = SweepEngine(
            distributions,
            self._BACKEND_CONFIGS,
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            kernel_backend=kernel_backend,
        ).run(trials, 7)
        sharded = SweepEngine(
            distributions,
            self._BACKEND_CONFIGS,
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            workers=workers,
            kernel_backend=kernel_backend,
        ).run(trials, 7)
        for ours, theirs in zip(sharded, serial):
            assert ours.consistent_counts == theirs.consistent_counts
            for q in (0.5, 0.99, 0.999):
                assert ours.t_visibility(q) == theirs.t_visibility(q)
