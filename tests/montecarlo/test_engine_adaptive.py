"""Adaptive probe-grid refinement: equivalence, determinism, and the stop gate.

The adaptive contract (see the "Adaptive probe-grid refinement" section of
``repro/montecarlo/engine.py``) has four testable layers:

1. *Sampling is untouched*: enabling refinement changes which probes are
   counted, never which trials are drawn — base-grid counts are bit-for-bit
   identical to a non-adaptive run with the same seed and chunk size.
2. *Refined probes estimate the same curve*: a refined probe's count covers
   only the trials after its activation, so against a fixed-grid engine
   probing the same times over all trials it agrees statistically, and the
   interpolated t-visibility agrees with exact order statistics to within
   the probe resolution (plus Monte Carlo noise).
3. *Coordinator-side determinism*: for a fixed (seed, chunk size), adaptive
   results — refined probe schedule included — are identical for any worker
   count, early stopping included.
4. *The adaptive stop gate*: a converged adaptive sweep has bracketed every
   (configuration, target) crossing to the requested resolution with
   tolerance-tight endpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.production import lnkd_disk, lnkd_ssd
from repro.montecarlo.engine import (
    SAMPLE_BLOCK,
    SweepEngine,
    SweepResult,
)

_CONFIG = ReplicaConfig(3, 1, 1)
_BASE_TIMES = (0.0, 1000.0)
_TARGET = 0.999
_RESOLUTION = 2.0


def _adaptive_engine(workers: int = 1, chunk_size: int = SAMPLE_BLOCK, **kwargs) -> SweepEngine:
    kwargs.setdefault("times_ms", _BASE_TIMES)
    kwargs.setdefault("target_probability", _TARGET)
    kwargs.setdefault("probe_resolution_ms", _RESOLUTION)
    return SweepEngine(
        lnkd_disk(), (_CONFIG,), chunk_size=chunk_size, workers=workers, **kwargs
    )


def _assert_adaptive_sweeps_identical(one: SweepResult, other: SweepResult) -> None:
    """Bit-for-bit equality including the grid-versioned refined probes."""
    assert one.trials_run == other.trials_run
    assert one.stopped_early == other.stopped_early
    assert one.converged == other.converged
    for a, b in zip(one, other):
        assert a.config == b.config
        assert a.trials == b.trials
        assert a.times_ms == b.times_ms
        assert a.consistent_counts == b.consistent_counts
        assert a.refined_times_ms == b.refined_times_ms
        assert a.refined_counts == b.refined_counts
        assert a.refined_trials == b.refined_trials
        assert a.t_visibility(_TARGET) == b.t_visibility(_TARGET)


class TestAdaptiveEquivalence:
    """Refinement changes the probe grid, never the sampled trials."""

    def test_base_counts_match_non_adaptive_run_exactly(self):
        trials = 6 * SAMPLE_BLOCK
        adaptive = _adaptive_engine().run(trials, 7).results[0]
        fixed = SweepEngine(
            lnkd_disk(), (_CONFIG,), times_ms=_BASE_TIMES, chunk_size=SAMPLE_BLOCK
        ).run(trials, 7).results[0]
        assert adaptive.times_ms == fixed.times_ms
        assert adaptive.consistent_counts == fixed.consistent_counts
        assert adaptive.nonpositive_thresholds == fixed.nonpositive_thresholds
        assert adaptive.refined_times_ms and not fixed.refined_times_ms

    def test_refined_probes_track_fixed_grid_estimates(self):
        """A refined probe's windowed estimate agrees with a fixed-grid
        engine probing the same time over all trials (same seed, so the
        trials are shared and only the observation window differs)."""
        trials = 12 * SAMPLE_BLOCK
        adaptive = _adaptive_engine().run(trials, 3).results[0]
        assert adaptive.refined_times_ms
        fixed = SweepEngine(
            lnkd_disk(),
            (_CONFIG,),
            times_ms=_BASE_TIMES + adaptive.refined_times_ms,
            chunk_size=SAMPLE_BLOCK,
        ).run(trials, 3).results[0]
        for time, count, observed in zip(
            adaptive.refined_times_ms, adaptive.refined_counts, adaptive.refined_trials
        ):
            windowed = count / observed
            assert 0 < observed <= trials
            assert windowed == pytest.approx(
                fixed.consistency_probability(time), abs=0.02
            )

    def test_adaptive_t_visibility_matches_exact_within_resolution(self):
        trials = 12 * SAMPLE_BLOCK
        adaptive = _adaptive_engine().run(trials, 5).results[0]
        exact = SweepEngine(lnkd_disk(), (_CONFIG,), keep_samples=True).run(
            trials, 5
        ).results[0]
        # Same seed, same trials: the only differences are the bracketing
        # interpolation (bounded by the achieved bracket width) and the
        # windowed refined estimates.  The achieved bracket after ~4 rounds
        # from a 1000 ms span is well under 16 ms.
        assert adaptive.t_visibility(_TARGET) == pytest.approx(
            exact.t_visibility(_TARGET), abs=16.0
        )

    def test_refined_grid_concentrates_around_the_crossing(self):
        trials = 12 * SAMPLE_BLOCK
        summary = _adaptive_engine().run(trials, 11).results[0]
        crossing = summary.t_visibility(_TARGET)
        assert summary.refined_times_ms
        # Bisection discards half-spans away from the crossing, so the
        # nearest refined probe must sit within one subdivision span.
        nearest = min(abs(t - crossing) for t in summary.refined_times_ms)
        span = _BASE_TIMES[-1] - _BASE_TIMES[0]
        assert nearest < span / 4

    def test_union_grid_interpolation_uses_refined_probes(self):
        trials = 12 * SAMPLE_BLOCK
        summary = _adaptive_engine().run(trials, 7).results[0]
        grid = summary.probe_grid()
        times = [t for t, _ in grid]
        assert times == sorted(times)
        assert set(summary.refined_times_ms) <= set(times)
        # Queries at refined probes return the windowed estimates exactly.
        for time, count, observed in zip(
            summary.refined_times_ms, summary.refined_counts, summary.refined_trials
        ):
            assert summary.consistency_probability(time) == count / observed
            estimate = summary.estimate_at(time)
            assert estimate.trials == observed

    def test_base_grid_meeting_resolution_still_inverts_exact_counts(self):
        """When the base grid already brackets the crossing within the
        resolution, no refined probes are grown — but the adaptive sweep must
        still invert the exact probe counts, not the histogram sketch, so
        t_visibility stays inside the reported bracket."""
        summary = SweepEngine(
            lnkd_disk(),
            (_CONFIG,),
            chunk_size=SAMPLE_BLOCK,
            target_probability=_TARGET,
            probe_resolution_ms=500.0,  # the default base grid is finer
        ).run(6 * SAMPLE_BLOCK, 0).results[0]
        assert not summary.refined_times_ms
        assert summary.probe_resolution_ms == 500.0
        low, high = summary.t_visibility_bracket(_TARGET)
        assert low <= summary.t_visibility(_TARGET) <= high

    def test_generator_mode_supports_refinement_serially(self):
        trials = 8 * SAMPLE_BLOCK
        summary = _adaptive_engine().run(
            trials, np.random.default_rng(9)
        ).results[0]
        assert summary.refined_times_ms
        assert summary.trials == trials


class TestAdaptiveWorkerChunkDeterminism:
    """workers x chunk_size: refinement decisions ride on merged partials."""

    _TRIALS = 9 * SAMPLE_BLOCK + 123

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize(
        "chunk_size", [SAMPLE_BLOCK, 2 * SAMPLE_BLOCK], ids=["small-chunk", "large-chunk"]
    )
    def test_sharded_adaptive_run_is_bitwise_identical_to_serial(self, workers, chunk_size):
        serial = _adaptive_engine(chunk_size=chunk_size).run(self._TRIALS, 42)
        sharded = _adaptive_engine(workers=workers, chunk_size=chunk_size).run(
            self._TRIALS, 42
        )
        _assert_adaptive_sweeps_identical(serial, sharded)

    def test_base_counts_stay_chunk_size_invariant(self):
        """The refined schedule legitimately depends on the chunk size (it is
        decided at chunk boundaries); the sampled trials — and therefore the
        base-grid counts — must not."""
        small = _adaptive_engine(chunk_size=SAMPLE_BLOCK).run(self._TRIALS, 4).results[0]
        large = _adaptive_engine(chunk_size=3 * SAMPLE_BLOCK).run(self._TRIALS, 4).results[0]
        assert small.consistent_counts == large.consistent_counts
        assert small.nonpositive_thresholds == large.nonpositive_thresholds

    @pytest.mark.parametrize("workers", [2, 4])
    def test_early_stopping_identical_across_workers(self, workers):
        kwargs = dict(tolerance=0.01, min_trials=2 * SAMPLE_BLOCK)
        serial = _adaptive_engine(**kwargs).run(2_000_000, 13)
        sharded = _adaptive_engine(workers=workers, **kwargs).run(2_000_000, 13)
        assert serial.stopped_early
        _assert_adaptive_sweeps_identical(serial, sharded)

    def test_multi_config_adaptive_sharding_is_deterministic(self):
        configs = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 1))
        def run(workers):
            return SweepEngine(
                lnkd_disk(),
                configs,
                times_ms=_BASE_TIMES,
                chunk_size=SAMPLE_BLOCK,
                workers=workers,
                target_probability=(0.99, 0.999),
                probe_resolution_ms=_RESOLUTION,
            ).run(8 * SAMPLE_BLOCK, 21)
        _assert_adaptive_sweeps_identical(run(1), run(3))


class TestAdaptiveEarlyStopGate:
    """Converged adaptive sweeps deliver the advertised resolution."""

    def test_stop_implies_bracket_at_resolution_with_tight_endpoints(self):
        tolerance = 0.01
        sweep = _adaptive_engine(tolerance=tolerance, min_trials=SAMPLE_BLOCK).run(
            2_000_000, 13
        )
        assert sweep.stopped_early and sweep.converged
        summary = sweep.results[0]
        # Locate the bracket on the union grid.
        grid = summary.probe_grid()
        above = [i for i, (_, p) in enumerate(grid) if p >= _TARGET]
        assert above and above[0] > 0
        t_low, p_low = grid[above[0] - 1]
        t_high, p_high = grid[above[0]]
        assert p_low < _TARGET <= p_high
        assert t_high - t_low <= _RESOLUTION
        assert summary.t_visibility_bracket(_TARGET) == (t_low, t_high)
        # Endpoint intervals meet the tolerance with their own trial counts.
        assert summary.estimate_at(t_low).margin <= tolerance
        assert summary.estimate_at(t_high).margin <= tolerance
        # And the reported crossing sits inside the bracket.
        assert t_low <= summary.t_visibility(_TARGET) <= t_high

    def test_incomplete_refinement_blocks_early_stopping(self):
        """A tolerance loose enough to converge the two-probe base grid in
        one chunk must not stop the sweep before the bracket reaches the
        probe resolution."""
        sweep = _adaptive_engine(tolerance=0.05, min_trials=1).run(2_000_000, 17)
        assert sweep.stopped_early
        non_adaptive = SweepEngine(
            lnkd_disk(),
            (_CONFIG,),
            times_ms=_BASE_TIMES,
            chunk_size=SAMPLE_BLOCK,
            tolerance=0.05,
            min_trials=1,
        ).run(2_000_000, 17)
        assert non_adaptive.stopped_early
        # Refinement needs several rounds of probes; the fixed grid stops at
        # the first boundary.
        assert sweep.trials_run > non_adaptive.trials_run
        assert sweep.results[0].refined_times_ms

    def test_t_visibility_bracket_reports_achieved_resolution_honestly(self):
        """A fixed trial budget can end the run before refinement reaches the
        requested resolution; the bracket method exposes what was achieved."""
        # Two chunks: refinement decides at boundary 0 but its probes would
        # only activate at chunk 1 + lag, past the end of the run.
        capped = _adaptive_engine().run(2 * SAMPLE_BLOCK, 5).results[0]
        bracket = capped.t_visibility_bracket(_TARGET)
        assert bracket is not None
        assert bracket[1] - bracket[0] > _RESOLUTION  # budget-capped: not met
        assert bracket[0] <= capped.t_visibility(_TARGET) <= bracket[1]
        # A longer run narrows it.
        longer = _adaptive_engine().run(12 * SAMPLE_BLOCK, 5).results[0]
        longer_bracket = longer.t_visibility_bracket(_TARGET)
        assert longer_bracket[1] - longer_bracket[0] < bracket[1] - bracket[0]
        # Strict quorums cross exactly at commit.
        strict = SweepEngine(
            lnkd_ssd(), (ReplicaConfig(3, 2, 2),), times_ms=_BASE_TIMES
        ).run(2_000, 0).results[0]
        assert strict.t_visibility_bracket(_TARGET) == (0.0, 0.0)
        # A crossing beyond the grid span is never bracketed.
        beyond = SweepEngine(
            lnkd_disk(), (_CONFIG,), times_ms=(0.0, 5.0), chunk_size=SAMPLE_BLOCK
        ).run(2 * SAMPLE_BLOCK, 0).results[0]
        assert beyond.t_visibility_bracket(_TARGET) is None
        with pytest.raises(ConfigurationError):
            capped.t_visibility_bracket(1.5)

    def test_default_consistency_curve_covers_refined_probes(self):
        summary = _adaptive_engine().run(8 * SAMPLE_BLOCK, 7).results[0]
        assert summary.refined_times_ms
        assert summary.consistency_curve() == summary.probe_grid()
        # Explicit times still sample anywhere on the union grid.
        explicit = summary.consistency_curve((0.0, summary.refined_times_ms[0]))
        assert explicit[1][1] == summary.consistency_probability(summary.refined_times_ms[0])

    def test_crossing_beyond_grid_leaves_refinement_complete(self):
        """When the curve never reaches the target inside the base span there
        is no bracket to refine: the sweep behaves like a fixed-grid run and
        t-visibility falls back to the histogram sketch."""
        sweep = SweepEngine(
            lnkd_disk(),
            (_CONFIG,),
            times_ms=(0.0, 5.0),  # crossing (~50 ms) is far beyond this span
            chunk_size=SAMPLE_BLOCK,
            target_probability=_TARGET,
            probe_resolution_ms=_RESOLUTION,
            tolerance=0.01,
            min_trials=SAMPLE_BLOCK,
        ).run(2_000_000, 19)
        assert sweep.stopped_early
        summary = sweep.results[0]
        assert not summary.refined_times_ms
        assert summary.t_visibility(_TARGET) > 5.0


class TestAdaptiveValidationAndErrors:
    def test_rejects_bad_adaptive_parameters(self):
        distributions = lnkd_ssd()
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (_CONFIG,), probe_resolution_ms=0.0,
                        target_probability=0.999)
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (_CONFIG,), probe_resolution_ms=-1.0,
                        target_probability=0.999)
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (_CONFIG,), probe_resolution_ms=1.0)
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (_CONFIG,), probe_resolution_ms=1.0,
                        target_probability=1.5)
        with pytest.raises(ConfigurationError):
            SweepEngine(distributions, (_CONFIG,), probe_resolution_ms=1.0,
                        target_probability=(0.9, 0.0))

    def test_targets_without_resolution_do_not_refine(self):
        summary = SweepEngine(
            lnkd_ssd(), (_CONFIG,), times_ms=(0.0, 10.0),
            chunk_size=SAMPLE_BLOCK, target_probability=0.999,
        ).run(2 * SAMPLE_BLOCK, 0).results[0]
        assert not summary.refined_times_ms

    def test_beyond_grid_error_names_config_and_suggests_remedies(self):
        summary = (
            SweepEngine(lnkd_ssd(), (_CONFIG,), times_ms=(0.0, 5.0))
            .run(2_000, 0)
            .results[0]
        )
        with pytest.raises(ConfigurationError) as excinfo:
            summary.consistency_probability(50.0)
        message = str(excinfo.value)
        assert _CONFIG.label() in message
        assert "probe_resolution_ms" in message
        assert "times_ms" in message

    def test_converged_accounts_for_loose_bracket_endpoints(self):
        """A budget-exhausted adaptive sweep whose bracket endpoint is still
        statistically loose must not claim convergence, even though every
        base probe meets the tolerance."""
        from repro.montecarlo.engine import ConfigSweepResult, StreamingHistogram

        histogram = StreamingHistogram(bins=8)
        histogram.update(np.asarray([0.0, 1.0]))

        def sweep_with_endpoint_support(refined_trials: int) -> SweepResult:
            count = int(0.9985 * refined_trials)
            summary = ConfigSweepResult(
                config=_CONFIG,
                trials=1_000_000,
                times_ms=(0.0, 100.0),
                consistent_counts=(200_000, 999_990),
                nonpositive_thresholds=200_000,
                confidence=0.95,
                _threshold_histogram=histogram,
                _read_histogram=histogram,
                _write_histogram=histogram,
                refined_times_ms=(50.0,),
                refined_counts=(count,),
                refined_trials=(refined_trials,),
            )
            return SweepResult(
                results=(summary,),
                trials_requested=1_000_000,
                trials_run=1_000_000,
                chunk_size=SAMPLE_BLOCK,
                tolerance=0.002,
                confidence=0.95,
                probe_resolution_ms=100.0,
                target_probabilities=(_TARGET,),
            )

        # The bracket is (50.0, 100.0): with only 200 observations the lower
        # endpoint's Wilson half-width (~0.005) exceeds the 0.002 tolerance.
        loose = sweep_with_endpoint_support(200)
        assert loose.max_margin() <= 0.002  # base probes alone would pass
        assert not loose.converged
        # With ample endpoint support the same sweep converges.
        assert sweep_with_endpoint_support(1_000_000).converged

    def test_sweep_result_records_adaptive_knobs(self):
        sweep = _adaptive_engine().run(2 * SAMPLE_BLOCK, 0)
        assert sweep.probe_resolution_ms == _RESOLUTION
        assert sweep.target_probabilities == (_TARGET,)
        plain = SweepEngine(lnkd_ssd(), (_CONFIG,)).run(1_000, 0)
        assert plain.probe_resolution_ms is None
        assert plain.target_probabilities == ()


class TestAdaptiveFrontEnds:
    """The knob threads through every visibility front-end."""

    def test_visibility_curve_returns_union_grid(self, kernel_backend):
        from repro.montecarlo.tvisibility import visibility_curve

        curve = visibility_curve(
            lnkd_disk(),
            _CONFIG,
            times_ms=_BASE_TIMES,
            trials=8 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            target_probability=_TARGET,
            probe_resolution_ms=_RESOLUTION,
            kernel_backend=kernel_backend,
        )
        assert len(curve.times_ms) > len(_BASE_TIMES)
        assert list(curve.times_ms) == sorted(curve.times_ms)
        # The refined grid lets the curve invert the target far more finely
        # than the two base probes could.
        t_at_target = curve.t_for_probability(_TARGET)
        assert 0.0 < t_at_target < _BASE_TIMES[-1]

    def test_visibility_curves_refine_every_config(self, kernel_backend):
        from repro.montecarlo.tvisibility import visibility_curves

        curves = visibility_curves(
            lnkd_disk(),
            (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 1, 2)),
            times_ms=_BASE_TIMES,
            trials=8 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            target_probability=_TARGET,
            probe_resolution_ms=_RESOLUTION,
            kernel_backend=kernel_backend,
        )
        assert all(len(curve.times_ms) > len(_BASE_TIMES) for curve in curves)

    def test_t_visibility_table_with_resolution(self, kernel_backend):
        from repro.montecarlo.tvisibility import t_visibility_table

        rows = t_visibility_table(
            {"LNKD-DISK": lnkd_disk()},
            (ReplicaConfig(3, 1, 1),),
            trials=8 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            probe_resolution_ms=1.0,
            kernel_backend=kernel_backend,
        )
        assert rows[0]["t_visibility_ms"] > 0.0

    def test_predictor_report_with_resolution(self, kernel_backend):
        from repro.core.predictor import PBSPredictor

        predictor = PBSPredictor(lnkd_disk(), _CONFIG)
        report = predictor.report(
            trials=8 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            probe_resolution_ms=1.0,
            kernel_backend=kernel_backend,
        )
        assert 0.0 < report.t_visibility_99 <= report.t_visibility_999
        # Refinement actually engaged: the same budget without the knob
        # inverts the histogram sketch and lands on different figures.
        sketch = predictor.report(trials=8 * SAMPLE_BLOCK, rng=0, chunk_size=SAMPLE_BLOCK)
        assert (report.t_visibility_99, report.t_visibility_999) != (
            sketch.t_visibility_99,
            sketch.t_visibility_999,
        )
        # Adaptive reports carry the achieved brackets; sketch reports don't.
        assert sketch.t_visibility_brackets is None
        assert set(report.t_visibility_brackets) == {0.99, 0.999}
        for target, bracket in report.t_visibility_brackets.items():
            assert bracket is not None
            t_visibility = (
                report.t_visibility_99 if target == 0.99 else report.t_visibility_999
            )
            assert bracket[0] <= t_visibility <= bracket[1]

    def test_adaptive_without_base_grid_falls_back_to_default_grid(self):
        from repro.montecarlo.engine import DEFAULT_ADAPTIVE_GRID_MS

        summary = SweepEngine(
            lnkd_disk(),
            (_CONFIG,),
            chunk_size=SAMPLE_BLOCK,
            target_probability=_TARGET,
            probe_resolution_ms=1.0,
        ).run(8 * SAMPLE_BLOCK, 0).results[0]
        assert summary.times_ms == tuple(sorted(set(DEFAULT_ADAPTIVE_GRID_MS)))
        assert summary.refined_times_ms

    def test_ablation_reference_with_resolution_refines(self):
        """The ablations' adaptive reference path raises its own trial floor
        so refinement actually engages, and the streamed estimate tracks the
        exact keep-samples reference."""
        from repro.experiments.ablations import (
            _slow_write_distributions,
            _wars_predicted_t_visibility,
        )

        distributions = _slow_write_distributions()
        exact = _wars_predicted_t_visibility(_CONFIG, distributions)
        adaptive = _wars_predicted_t_visibility(
            _CONFIG, distributions, probe_resolution_ms=1.0
        )
        assert adaptive == pytest.approx(exact, rel=0.1)

    def test_adaptive_curve_confidence_uses_probe_support(self):
        from repro.montecarlo.tvisibility import visibility_curve

        curve = visibility_curve(
            lnkd_disk(),
            _CONFIG,
            times_ms=_BASE_TIMES,
            trials=12 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            target_probability=_TARGET,
            probe_resolution_ms=_RESOLUTION,
        )
        assert curve.probe_trials is not None
        assert len(curve.probe_trials) == len(curve.times_ms)
        refined = [
            (t, n) for t, n in zip(curve.times_ms, curve.probe_trials)
            if n < curve.trials
        ]
        assert refined, "adaptive curve must carry windowed probes"
        time, support = refined[0]
        estimate = curve.confidence_at(time)
        assert estimate.trials == support < curve.trials
        # A refined probe's interval is wider than pretending it saw the
        # full budget — the overconfidence per-probe support prevents.
        from repro.montecarlo.convergence import wilson_interval

        probability = curve.probability_at(time)
        overconfident = wilson_interval(
            int(round(probability * curve.trials)), curve.trials
        )
        assert estimate.margin > overconfident.margin

    def test_sla_optimizer_with_resolution(self, kernel_backend):
        from repro.core.sla import SLAOptimizer, SLATarget

        optimizer = SLAOptimizer(
            lnkd_disk(),
            replication_factors=(3,),
            trials=2 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            probe_resolution_ms=1.0,
            kernel_backend=kernel_backend,
        )
        evaluation = optimizer.evaluate(_CONFIG, SLATarget(t_visibility_ms=1_000.0))
        assert evaluation.t_visibility_ms > 0.0
