"""The pluggable sampling-reduction kernel backends (:mod:`repro.kernels`).

Contract layers, mirroring ``test_engine_equivalence.py``:

1. *Registry*: both builtin backends are always registered; resolution
   validates names, auto-detects, and falls back gracefully when the numba
   runtime is missing.
2. *Exact*: the ``numpy`` backend — the default everywhere — is the
   reference reduction verbatim, so results through every entry point are
   bit-for-bit identical to passing no backend at all.
3. *Statistical*: every available backend consumes identical sampled delay
   matrices and must agree with the reference within Wilson-interval
   tolerance on consistency estimates and within a few percent on latency
   quantiles (the ROADMAP's stated contract for non-seeded backends).  For
   the JIT backend the agreement is in fact exact up to sort tie-breaking,
   which is measure-zero under continuous latency distributions — the
   statistical gate is what the repository *promises*, the bitwise checks
   below are what the current implementation happens to deliver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig, iter_configs
from repro.core.wars import WARSModel, sample_wars_batch
from repro.exceptions import KernelError
from repro.kernels import (
    available_backends,
    pin_worker_threads,
    registered_backends,
    resolve_backend,
)
from repro.kernels.numba_backend import numba_available
from repro.kernels.numpy_backend import NumpyKernelBackend
from repro.latency.production import lnkd_ssd, wan, ymmr
from repro.montecarlo.convergence import wilson_interval
from repro.montecarlo.engine import SweepEngine

_CONFIGS = tuple(iter_configs(3))
_TIMES = (0.0, 0.5, 2.0, 10.0, 50.0)


class TestRegistry:
    def test_builtin_backends_always_registered(self):
        assert registered_backends() == ("numpy", "numba")

    def test_numpy_backend_always_available(self):
        assert "numpy" in available_backends()

    def test_unknown_backend_name_raises_with_known_names(self):
        with pytest.raises(KernelError, match="unknown kernel backend 'gpu'"):
            resolve_backend("gpu")
        with pytest.raises(KernelError, match="numpy"):
            resolve_backend("")

    def test_unknown_backend_raises_through_the_engine(self):
        with pytest.raises(KernelError):
            SweepEngine(lnkd_ssd(), (_CONFIGS[0],), kernel_backend="bogus")

    def test_none_resolves_to_the_reference(self):
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("numpy").name == "numpy"

    def test_instances_are_process_singletons(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_backend_instances_pass_through(self):
        backend = NumpyKernelBackend()
        assert resolve_backend(backend) is backend

    def test_auto_selects_an_available_backend(self):
        backend = resolve_backend("auto")
        assert backend.name in available_backends()
        if numba_available():
            assert backend.name == "numba"
        else:
            assert backend.name == "numpy"

    @pytest.mark.skipif(numba_available(), reason="fallback only fires without numba")
    def test_missing_numba_falls_back_to_numpy_with_warning(self):
        with pytest.warns(RuntimeWarning, match="falling back to the 'numpy'"):
            backend = resolve_backend("numba")
        assert backend.name == "numpy"
        # The whole stack stays usable under the fallback.
        with pytest.warns(RuntimeWarning):
            sweep = SweepEngine(
                lnkd_ssd(), (_CONFIGS[0],), kernel_backend="numba"
            ).run(1_000, 0)
        assert sweep.kernel_backend == "numpy"


class TestThreadPinning:
    @pytest.fixture(autouse=True)
    def pinning_sandbox(self, monkeypatch):
        """Contain pin_worker_threads' process-global side effects.

        The function mutates env vars and caps live BLAS/numba thread pools;
        without containment the rest of the suite (and CI's numba leg) would
        run permanently pinned to 1-2 threads.  Writes go to a throwaway
        environ copy, and stub ``threadpoolctl``/``numba`` modules shadow
        any real ones for the function's internal imports, recording the
        caps instead of applying them.
        """
        import os
        import sys
        import types

        monkeypatch.setattr(os, "environ", dict(os.environ))
        self.limits_applied: list[object] = []
        threadpoolctl_stub = types.ModuleType("threadpoolctl")
        threadpoolctl_stub.threadpool_limits = (
            lambda limits: self.limits_applied.append(limits)
        )
        monkeypatch.setitem(sys.modules, "threadpoolctl", threadpoolctl_stub)
        numba_stub = types.ModuleType("numba")
        numba_stub.get_num_threads = lambda: 8
        numba_stub.set_num_threads = lambda n: self.limits_applied.append(("numba", n))
        monkeypatch.setitem(sys.modules, "numba", numba_stub)

    def test_fair_share_and_floor(self):
        assert pin_worker_threads(4, cpu_count=8) == 2
        assert pin_worker_threads(8, cpu_count=4) == 1  # floor at one thread
        assert pin_worker_threads(1, cpu_count=6) == 6

    def test_environment_variables_are_set(self):
        import os

        threads = pin_worker_threads(2, cpu_count=4)
        assert os.environ["OMP_NUM_THREADS"] == str(threads) == "2"
        assert os.environ["OPENBLAS_NUM_THREADS"] == "2"

    def test_runtime_pools_are_capped_through_their_apis(self):
        pin_worker_threads(2, cpu_count=4)
        assert 2 in self.limits_applied  # threadpoolctl cap
        assert ("numba", 2) in self.limits_applied  # numba cap

    def test_rejects_bad_worker_count(self):
        with pytest.raises(KernelError):
            pin_worker_threads(0)


class TestNumpyBackendIsTheReference:
    """The default path is the reference reduction, bit for bit."""

    def test_explicit_numpy_equals_default_everywhere(self):
        distributions = ymmr()
        default = WARSModel(distributions, _CONFIGS[0]).sample(4_096, 7)
        explicit = WARSModel(distributions, _CONFIGS[0]).sample(
            4_096, 7, kernel_backend="numpy"
        )
        assert np.array_equal(
            default.staleness_thresholds_ms, explicit.staleness_thresholds_ms
        )
        assert np.array_equal(default.read_latencies_ms, explicit.read_latencies_ms)
        assert np.array_equal(default.commit_latencies_ms, explicit.commit_latencies_ms)

    def test_engine_counts_identical_with_explicit_numpy(self):
        distributions = ymmr()
        default = SweepEngine(distributions, _CONFIGS, times_ms=_TIMES).run(20_000, 3)
        explicit = SweepEngine(
            distributions, _CONFIGS, times_ms=_TIMES, kernel_backend="numpy"
        ).run(20_000, 3)
        assert default.kernel_backend == explicit.kernel_backend == "numpy"
        for ours, theirs in zip(default, explicit):
            assert ours.consistent_counts == theirs.consistent_counts
            assert ours.nonpositive_thresholds == theirs.nonpositive_thresholds
            for q in (0.5, 0.99, 0.999):
                assert ours.t_visibility(q) == theirs.t_visibility(q)

    def test_reduce_matches_inline_reference(self):
        """The backend reproduces a hand-computed reduction of known inputs."""
        rng = np.random.default_rng(0)
        trials, n = 64, 5
        w, a, r, s = (rng.exponential(2.0, size=(trials, n)) for _ in range(4))
        commit, read, margin = NumpyKernelBackend().reduce_batch(w, a, r, s)
        assert np.array_equal(commit, np.sort(w + a, axis=1))
        order = np.argsort(r + s, axis=1, kind="stable")
        rows = np.arange(trials)[:, None]
        assert np.array_equal(read, (r + s)[rows, order])
        assert np.array_equal(
            margin, np.minimum.accumulate((w - r)[rows, order], axis=1)
        )


class TestBackendStatisticalEquivalence:
    """Every available backend agrees with the reference distributionally.

    Mirrors ``test_engine_equivalence.TestStatisticalEquivalence``: same
    seeds, same probe grid, Wilson-interval agreement on consistency and
    percent-level agreement on quantiles.  The shared ``kernel_backend``
    fixture (tests/montecarlo/conftest.py) supplies every registered
    backend, so the harness runs for numpy everywhere and for numba on
    machines that have it.
    """

    def test_consistency_curves_within_wilson_tolerance(self, kernel_backend):
        distributions = ymmr()
        trials = 60_000
        sweep = SweepEngine(
            distributions, _CONFIGS, times_ms=_TIMES, kernel_backend=kernel_backend
        ).run(trials, 101)
        for summary in sweep:
            reference = WARSModel(distributions, summary.config).sample(trials, 202)
            for t_ms in _TIMES:
                estimate = summary.estimate_at(t_ms, confidence=0.999)
                reference_p = reference.consistency_probability(t_ms)
                reference_margin = wilson_interval(
                    int(round(reference_p * trials)), trials, 0.999
                ).margin
                assert abs(estimate.probability - reference_p) <= (
                    estimate.margin + reference_margin
                )

    def test_t_visibility_and_latency_quantiles_track_reference(self, kernel_backend):
        distributions = ymmr()
        trials = 60_000
        config = ReplicaConfig(3, 1, 1)
        summary = (
            SweepEngine(distributions, (config,), kernel_backend=kernel_backend)
            .run(trials, 31)
            .results[0]
        )
        reference = WARSModel(distributions, config).sample(trials, 32)
        assert summary.t_visibility(0.99) == pytest.approx(
            reference.t_visibility(0.99), rel=0.05
        )
        for percentile in (50.0, 95.0, 99.0):
            assert summary.read_latency_percentile(percentile) == pytest.approx(
                reference.read_latency_percentile(percentile), rel=0.05
            )

    def test_batch_invariants_hold_per_backend(self, kernel_backend):
        """Structural truths every correct reduction must satisfy, checked
        directly on the batch: sorted rows, monotone prefix minima, and the
        per-trial coupling between quorum sizes."""
        for distributions in (ymmr(), wan()):
            batch = sample_wars_batch(
                distributions, 2_048, 3, np.random.default_rng(5), kernel_backend=kernel_backend
            )
            commit = batch.commit_latency_by_w_ms
            read = batch.read_latency_by_r_ms
            margin = batch.freshness_margin_by_r_ms
            assert np.all(np.diff(commit, axis=1) >= 0.0)
            assert np.all(np.diff(read, axis=1) >= 0.0)
            assert np.all(np.diff(margin, axis=1) <= 0.0)  # prefix minima shrink
            thresholds = [
                batch.reduce(ReplicaConfig(3, r, 1)).staleness_thresholds_ms
                for r in (1, 2, 3)
            ]
            assert np.all(thresholds[1] <= thresholds[0])
            assert np.all(thresholds[2] <= thresholds[1])


@pytest.mark.skipif(not numba_available(), reason="numba is not installed")
class TestNumbaBackendExactProperties:
    """Checks that only run where the JIT actually compiles."""

    def test_fused_reduction_matches_reference_on_shared_draw(self):
        """On a continuous environment (no round-trip ties) the fused kernel
        and the reference reduce identical matrices to identical outputs."""
        rng = np.random.default_rng(9)
        trials, n = 1_024, 5
        w, a, r, s = (rng.exponential(3.0, size=(trials, n)) for _ in range(4))
        reference = NumpyKernelBackend().reduce_batch(w, a, r, s)
        fused = resolve_backend("numba").reduce_batch(w, a, r, s)
        for ours, theirs in zip(fused, reference):
            assert np.allclose(ours, theirs, rtol=0.0, atol=0.0)

    def test_engine_reports_the_jit_backend(self):
        sweep = SweepEngine(
            lnkd_ssd(), (_CONFIGS[0],), kernel_backend="numba"
        ).run(10_000, 0)
        assert sweep.kernel_backend == "numba"


class TestShardingBackendInteraction:
    """How kernel backends compose with the multiprocess coordinator."""

    _SHARD_CONFIGS = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2))

    def _serial_reference(self, trials: int, seed: int):
        from repro.montecarlo.engine import SAMPLE_BLOCK

        return SweepEngine(
            lnkd_ssd(),
            self._SHARD_CONFIGS,
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
        ).run(trials, seed)

    def test_ad_hoc_instance_backend_falls_back_to_serial(self, monkeypatch):
        """An ad-hoc backend instance — even one shadowing a registered name
        — cannot be re-resolved in a worker process (the registry would hand
        back the builtin), so the engine must run such sweeps serially
        rather than silently mix reductions across chunks."""
        from repro.montecarlo.engine import SAMPLE_BLOCK

        def forbid_sharding(self, *args, **kwargs):
            raise AssertionError("ad-hoc instance backends must not shard")

        monkeypatch.setattr(SweepEngine, "_run_sharded", forbid_sharding)

        class ShadowingBackend(NumpyKernelBackend):
            name = "numpy"  # registered name, but not the registry's instance

        class UnregisteredBackend(NumpyKernelBackend):
            name = "custom-not-registered"

        trials = 3 * SAMPLE_BLOCK + 5
        reference = self._serial_reference(trials, 7)
        for backend in (ShadowingBackend(), UnregisteredBackend()):
            sweep = SweepEngine(
                lnkd_ssd(),
                self._SHARD_CONFIGS,
                times_ms=_TIMES,
                chunk_size=SAMPLE_BLOCK,
                workers=2,
                kernel_backend=backend,
            ).run(trials, 7)
            for ours, theirs in zip(sweep, reference):
                assert ours.consistent_counts == theirs.consistent_counts

    def test_live_jit_layer_forces_a_spawn_pool(self, monkeypatch):
        """Once a JIT kernel has run anywhere in the process, forking is
        unsafe (numba threading layers are not fork-safe), so sharded runs
        must use a spawn pool — and still merge to the serial run's exact
        counts.  Setting the process-level flag forces that path on any
        machine."""
        import repro.kernels as kernels
        from repro.montecarlo.engine import SAMPLE_BLOCK

        monkeypatch.setattr(kernels, "_JIT_HAS_RUN", True)
        assert kernels.jit_has_run()
        trials = 3 * SAMPLE_BLOCK + 5
        sweep = SweepEngine(
            lnkd_ssd(),
            self._SHARD_CONFIGS,
            times_ms=_TIMES,
            chunk_size=SAMPLE_BLOCK,
            workers=2,
        ).run(trials, 7)
        reference = self._serial_reference(trials, 7)
        for ours, theirs in zip(sweep, reference):
            assert ours.consistent_counts == theirs.consistent_counts
            for q in (0.5, 0.99, 0.999):
                assert ours.t_visibility(q) == theirs.t_visibility(q)
