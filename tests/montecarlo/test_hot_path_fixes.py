"""Regression tests for the query-path fixes that ride with the kernel PR.

* :class:`~repro.core.wars.WARSTrialResult` and
  :class:`~repro.montecarlo.latency.OperationLatencyCDF` cache their sorted
  trial arrays lazily, so repeated curve / t-visibility / CDF queries do not
  re-sort O(trials log trials) per call.
* :meth:`TVisibilityCurve.t_for_probability` interpolates the crossing
  within the bracketing probe span instead of snapping to the first grid
  time at/above the target.
* :meth:`TVisibilityCurve.confidence_at` rests on the probes' actual
  observed counts instead of counts reconstructed by rounding interpolated
  probabilities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.latency.production import lnkd_disk, lnkd_ssd
from repro.montecarlo.engine import SAMPLE_BLOCK
from repro.montecarlo.latency import operation_latency_cdf
from repro.montecarlo.tvisibility import TVisibilityCurve, visibility_curve

_CONFIG = ReplicaConfig(3, 1, 1)


@pytest.fixture
def sort_counter(monkeypatch):
    """Count ``np.sort`` calls (the implementation's only full-sort entry)."""
    calls = {"count": 0}
    real_sort = np.sort

    def counting_sort(*args, **kwargs):
        calls["count"] += 1
        return real_sort(*args, **kwargs)

    monkeypatch.setattr(np, "sort", counting_sort)
    return calls


class TestSortedArrayCaching:
    def test_trial_result_queries_sort_once(self, sort_counter):
        result = WARSModel(lnkd_ssd(), _CONFIG).sample(5_000, 0)
        baseline = sort_counter["count"]  # sampling itself sorts the batch
        first_curve = result.consistency_curve([0.0, 1.0, 5.0])
        assert sort_counter["count"] == baseline + 1
        # Second and third queries — curve, point query, inversion — reuse
        # the cached sorted thresholds: no additional sort.
        second_curve = result.consistency_curve([0.0, 1.0, 5.0])
        result.consistency_probability(2.0)
        result.t_visibility(0.999)
        result.consistency_counts([0.0, 10.0])
        assert sort_counter["count"] == baseline + 1
        assert first_curve == second_curve

    def test_point_query_matches_unsorted_scan_semantics(self):
        result = WARSModel(lnkd_ssd(), _CONFIG).sample(5_000, 0)
        thresholds = result.staleness_thresholds_ms
        for t_ms in (0.0, 0.5, 2.0, 100.0):
            assert result.consistency_probability(t_ms) == float(
                np.mean(thresholds <= t_ms)
            )

    def test_latency_cdf_queries_sort_once_per_operation(self, sort_counter):
        cdf = operation_latency_cdf(lnkd_ssd(), _CONFIG, trials=5_000, rng=0)
        baseline = sort_counter["count"]
        first = cdf.read_cdf([1.0, 5.0, 10.0])
        cdf.write_cdf([1.0, 5.0, 10.0])
        assert sort_counter["count"] == baseline + 2  # one per operation kind
        # Repeat queries (same and different grids) trigger no further sort.
        assert cdf.read_cdf([1.0, 5.0, 10.0]) == first
        cdf.read_cdf([2.0])
        cdf.write_cdf([2.0])
        assert sort_counter["count"] == baseline + 2

    def test_cached_cdf_values_are_exact(self):
        cdf = operation_latency_cdf(lnkd_ssd(), _CONFIG, trials=5_000, rng=0)
        latencies = cdf.read_latencies_ms
        for grid_point, fraction in cdf.read_cdf([0.5, 1.5, 4.0]):
            assert fraction == float(np.mean(latencies <= grid_point))


class TestTForProbabilityInterpolation:
    def _curve(self, times, probabilities):
        return TVisibilityCurve(
            config=_CONFIG,
            label="synthetic",
            times_ms=tuple(times),
            probabilities=tuple(probabilities),
            trials=10_000,
        )

    def test_crossing_between_probes_is_interpolated(self):
        curve = self._curve((0.0, 10.0, 50.0), (0.2, 0.4, 0.9))
        t = curve.t_for_probability(0.65)
        assert t == pytest.approx(30.0)  # halfway up the (0.4, 0.9) span
        # The round trip recovers the target instead of overshooting by a
        # whole probe span (the old behaviour returned 50.0 -> 0.9).
        assert curve.probability_at(t) == pytest.approx(0.65)

    def test_exact_grid_answers_unchanged(self):
        curve = self._curve((0.0, 10.0, 50.0), (0.2, 0.4, 0.9))
        assert curve.t_for_probability(0.4) == 10.0  # exact probe value
        assert curve.t_for_probability(0.1) == 0.0  # met at the first probe
        assert curve.t_for_probability(0.9) == 50.0

    def test_unreachable_target_still_returns_infinity(self):
        curve = self._curve((0.0, 10.0), (0.2, 0.4))
        assert curve.t_for_probability(0.999) == float("inf")

    def test_flat_span_returns_upper_probe(self):
        curve = self._curve((0.0, 10.0, 20.0), (0.2, 0.5, 0.5))
        assert curve.t_for_probability(0.5) == 10.0

    def test_round_trip_on_sampled_coarse_grid(self):
        curve = visibility_curve(
            lnkd_disk(), _CONFIG, times_ms=(0.0, 50.0, 500.0), trials=20_000, rng=0
        )
        target = 0.5 * (curve.probabilities[1] + curve.probabilities[2])
        t = curve.t_for_probability(target)
        assert curve.times_ms[1] < t < curve.times_ms[2]
        assert curve.probability_at(t) == pytest.approx(target)

    def test_round_trip_on_adaptive_curve(self):
        curve = visibility_curve(
            lnkd_disk(),
            _CONFIG,
            times_ms=(0.0, 256.0),
            trials=8 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            target_probability=0.99,
            probe_resolution_ms=2.0,
        )
        t = curve.t_for_probability(0.99)
        assert np.isfinite(t)
        assert curve.probability_at(t) == pytest.approx(0.99, abs=1e-9)

    def test_invalid_target_rejected(self):
        from repro.exceptions import ConfigurationError

        curve = self._curve((0.0, 10.0), (0.2, 0.4))
        with pytest.raises(ConfigurationError):
            curve.t_for_probability(0.0)
        with pytest.raises(ConfigurationError):
            curve.t_for_probability(1.5)


class TestConfidenceAtObservedCounts:
    def test_probe_interval_uses_exact_successes(self):
        curve = visibility_curve(
            lnkd_ssd(), _CONFIG, times_ms=(0.0, 1.0, 5.0), trials=10_000, rng=2
        )
        assert curve.probe_successes is not None
        from repro.montecarlo.convergence import wilson_interval

        for index, t_ms in enumerate(curve.times_ms):
            estimate = curve.confidence_at(t_ms)
            expected = wilson_interval(
                curve.probe_successes[index], curve.trials, 0.95
            )
            assert estimate.probability == expected.probability
            assert estimate.lower == expected.lower
            assert estimate.upper == expected.upper

    def test_adaptive_probe_counts_are_carried_not_rounded(self):
        curve = visibility_curve(
            lnkd_disk(),
            _CONFIG,
            times_ms=(0.0, 256.0),
            trials=12 * SAMPLE_BLOCK,
            rng=0,
            chunk_size=SAMPLE_BLOCK,
            target_probability=0.99,
            probe_resolution_ms=2.0,
        )
        assert curve.probe_trials is not None and curve.probe_successes is not None
        refined = [
            (t, successes, support)
            for t, successes, support in zip(
                curve.times_ms, curve.probe_successes, curve.probe_trials
            )
            if support < curve.trials
        ]
        assert refined, "adaptive curve must carry windowed probes"
        from repro.montecarlo.convergence import wilson_interval

        for t_ms, successes, support in refined:
            estimate = curve.confidence_at(t_ms)
            expected = wilson_interval(successes, support, 0.95)
            assert estimate.trials == support
            # The interval rests on the probe's carried integer count, not a
            # count reconstructed from the (full-budget) trial total.
            assert estimate.probability == expected.probability
            assert estimate.lower == expected.lower
            assert successes <= support

    def test_between_probe_queries_still_answer_conservatively(self):
        curve = visibility_curve(
            lnkd_ssd(), _CONFIG, times_ms=(0.0, 1.0, 5.0), trials=10_000, rng=2
        )
        estimate = curve.confidence_at(2.5)
        assert estimate.trials == curve.trials
        assert estimate.lower <= curve.probability_at(2.5) <= estimate.upper
