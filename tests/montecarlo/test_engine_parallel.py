"""The parallel/serial equivalence harness for the sharded sweep engine.

The engine's sharding contract (see ``repro/montecarlo/engine.py``, section
"Multiprocess sharding and the merge contract"): for any ``workers`` count, a
seed-mode ``SweepEngine.run`` is **bit-for-bit identical** to the serial run —
every consistency count, every histogram bin (hence every quantile), every
extreme, ``trials_run``, and the ``stopped_early``/``converged`` flags.  These
tests pin that contract, the early-stopping interaction, and the documented
serial fallbacks (sequential generators, ``keep_samples``).

The streaming single-configuration paths (``visibility_curve`` /
``operation_latency_cdf`` with ``streaming=True``) ride on the same engine and
are covered at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.production import lnkd_ssd, ymmr
from repro.montecarlo.engine import (
    SAMPLE_BLOCK,
    SweepEngine,
    SweepResult,
    min_trials_for_quantile,
)
from repro.montecarlo.latency import StreamingOperationLatency, operation_latency_cdf
from repro.montecarlo.tvisibility import visibility_curve

#: Mixed replication factors: sharding must respect the per-N seed streams.
_CONFIGS = (
    ReplicaConfig(3, 1, 1),
    ReplicaConfig(3, 2, 1),
    ReplicaConfig(3, 2, 2),
    ReplicaConfig(2, 1, 1),
)
_TIMES = (0.0, 0.5, 2.0, 10.0, 50.0)
_QUANTILE_PROBES = (0.0, 0.5, 0.9, 0.99, 1.0)


def _engine(workers: int = 1, **kwargs) -> SweepEngine:
    kwargs.setdefault("times_ms", _TIMES)
    kwargs.setdefault("chunk_size", SAMPLE_BLOCK)
    return SweepEngine(ymmr(), _CONFIGS, workers=workers, **kwargs)


def assert_sweeps_identical(one: SweepResult, other: SweepResult) -> None:
    """Assert two sweeps are bit-for-bit identical (ignoring the workers knob)."""
    assert one.trials_run == other.trials_run
    assert one.trials_requested == other.trials_requested
    assert one.stopped_early == other.stopped_early
    assert one.converged == other.converged
    assert len(one) == len(other)
    for a, b in zip(one, other):
        assert a.config == b.config
        assert a.trials == b.trials
        assert a.times_ms == b.times_ms
        assert a.consistent_counts == b.consistent_counts
        assert a.nonpositive_thresholds == b.nonpositive_thresholds
        for q in _QUANTILE_PROBES:
            assert a.t_visibility(max(q, 1e-6)) == b.t_visibility(max(q, 1e-6))
            assert a.read_latency_percentile(q * 100.0) == b.read_latency_percentile(q * 100.0)
            assert a.write_latency_percentile(q * 100.0) == b.write_latency_percentile(q * 100.0)


class TestParallelSerialEquivalence:
    """workers > 1 reproduces the serial seed-mode run bit-for-bit."""

    def test_sharded_run_is_bitwise_identical_to_serial(self, workers):
        trials = 5 * SAMPLE_BLOCK + 777  # multiple chunks, ragged final block
        serial = _engine().run(trials, 42)
        sharded = _engine(workers=workers).run(trials, 42)
        assert_sweeps_identical(serial, sharded)
        assert sharded.workers == workers

    def test_histogram_state_matches_bin_for_bin(self, workers):
        """Beyond quantile queries: the merged sketch state itself is equal."""
        trials = 3 * SAMPLE_BLOCK
        serial = _engine().run(trials, 9).results[0]
        sharded = _engine(workers=workers).run(trials, 9).results[0]
        for attribute in ("_threshold_histogram", "_read_histogram", "_write_histogram"):
            ours, theirs = getattr(serial, attribute), getattr(sharded, attribute)
            assert ours.count == theirs.count
            assert ours.min == theirs.min
            assert ours.max == theirs.max
            assert np.array_equal(ours._edges, theirs._edges)
            assert np.array_equal(ours._counts, theirs._counts)
            assert ours._underflow == theirs._underflow
            assert ours._overflow == theirs._overflow

    def test_single_chunk_sweep_skips_the_pool(self, workers):
        """Sweeps no larger than one chunk run inline and stay identical."""
        serial = _engine(chunk_size=4 * SAMPLE_BLOCK).run(2 * SAMPLE_BLOCK, 3)
        sharded = _engine(workers=workers, chunk_size=4 * SAMPLE_BLOCK).run(2 * SAMPLE_BLOCK, 3)
        assert_sweeps_identical(serial, sharded)

    def test_sequential_generator_falls_back_to_serial(self, workers):
        """Generator mode cannot shard; results must match the serial stream."""
        trials = 2 * SAMPLE_BLOCK
        serial = _engine().run(trials, np.random.default_rng(5))
        sharded = _engine(workers=workers).run(trials, np.random.default_rng(5))
        assert_sweeps_identical(serial, sharded)

    def test_keep_samples_falls_back_to_serial(self, workers):
        """Sample retention forces serial execution but keeps full fidelity."""
        trials = 2 * SAMPLE_BLOCK + 100
        serial = _engine(keep_samples=True).run(trials, 8)
        sharded = _engine(workers=workers, keep_samples=True).run(trials, 8)
        assert_sweeps_identical(serial, sharded)
        for a, b in zip(serial, sharded):
            assert np.array_equal(
                a.as_trial_result().staleness_thresholds_ms,
                b.as_trial_result().staleness_thresholds_ms,
            )

    def test_worker_count_validation(self):
        with pytest.raises(ConfigurationError):
            _engine(workers=0)
        with pytest.raises(ConfigurationError):
            _engine(workers=-2)


class TestEarlyStoppingWithWorkers:
    """Coordinator-side stopping on merged partials matches serial exactly."""

    def test_flags_and_trials_match_serial_run(self, workers):
        kwargs = dict(tolerance=0.02, min_trials=2 * SAMPLE_BLOCK)
        serial = _engine(**kwargs).run(1_000_000, 13)
        sharded = _engine(workers=workers, **kwargs).run(1_000_000, 13)
        assert serial.stopped_early and serial.converged
        assert_sweeps_identical(serial, sharded)

    def test_never_stops_below_min_trials_floor(self, workers):
        """A loose tolerance converges immediately, yet the tail-support floor
        (min_trials_for_quantile-style) holds for every worker count."""
        floor = 4 * SAMPLE_BLOCK
        sharded = _engine(workers=workers, tolerance=0.05, min_trials=floor).run(
            1_000_000, 13
        )
        assert sharded.stopped_early
        assert sharded.trials_run >= floor
        # The floor callers actually use: ~100 samples above the quantile.
        assert floor >= min_trials_for_quantile(0.995)

    def test_unconverged_budget_exhaustion_matches_serial(self, workers):
        kwargs = dict(tolerance=1e-6)
        serial = _engine(**kwargs).run(3 * SAMPLE_BLOCK, 21)
        sharded = _engine(workers=workers, **kwargs).run(3 * SAMPLE_BLOCK, 21)
        assert not sharded.stopped_early and not sharded.converged
        assert_sweeps_identical(serial, sharded)


class TestStreamingSingleConfigPaths:
    """visibility_curve / operation_latency_cdf streaming through the engine."""

    def test_streaming_visibility_curve_matches_exact_probabilities(self, workers):
        distributions = ymmr()
        config = ReplicaConfig(3, 1, 1)
        times = (0.0, 1.0, 10.0, 100.0)
        trials = 2 * SAMPLE_BLOCK
        streamed = visibility_curve(
            distributions,
            config,
            times,
            trials=trials,
            rng=0,
            streaming=True,
            chunk_size=SAMPLE_BLOCK,
            workers=workers,
        )
        serial = visibility_curve(
            distributions, config, times, trials=trials, rng=0, streaming=True,
            chunk_size=SAMPLE_BLOCK,
        )
        # Probe-time probabilities are exact counts: identical across modes.
        assert streamed.probabilities == serial.probabilities
        assert streamed.times_ms == times
        assert streamed.trials == trials
        # And statistically consistent with the materialised path.
        exact = visibility_curve(distributions, config, times, trials=trials, rng=0)
        for p_streamed, p_exact in zip(streamed.probabilities, exact.probabilities):
            assert p_streamed == pytest.approx(p_exact, abs=0.02)

    def test_streaming_latency_cdf_tracks_exact_arrays(self, workers):
        distributions = lnkd_ssd()
        config = ReplicaConfig(3, 2, 2)
        trials = 4 * SAMPLE_BLOCK
        streamed = operation_latency_cdf(
            distributions,
            config,
            trials=trials,
            rng=0,
            streaming=True,
            chunk_size=SAMPLE_BLOCK,
            workers=workers,
        )
        assert isinstance(streamed, StreamingOperationLatency)
        assert streamed.trials == trials
        exact = operation_latency_cdf(distributions, config, trials=trials, rng=1)
        for percentile in (50.0, 95.0, 99.0):
            assert streamed.read_percentile(percentile) == pytest.approx(
                exact.read_percentile(percentile), rel=0.05
            )
            assert streamed.write_percentile(percentile) == pytest.approx(
                exact.write_percentile(percentile), rel=0.05
            )
        grid = [exact.read_percentile(p) for p in (25.0, 50.0, 90.0, 99.0)]
        for (x_s, f_s), (x_e, f_e) in zip(streamed.read_cdf(grid), exact.read_cdf(grid)):
            assert x_s == x_e
            assert f_s == pytest.approx(f_e, abs=0.02)
        # CDF is monotone and bounded.
        fractions = [f for _, f in streamed.write_cdf(sorted(grid))]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert fractions == sorted(fractions)

    def test_workers_alone_selects_streaming_path(self):
        result = operation_latency_cdf(
            lnkd_ssd(), ReplicaConfig(3, 1, 1), trials=1_000, rng=0, workers=2
        )
        assert isinstance(result, StreamingOperationLatency)
