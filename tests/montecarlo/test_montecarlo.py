"""Unit tests for the Monte Carlo harness: curves, latency CDFs, convergence."""

from __future__ import annotations

import math

import pytest

from repro.core.quorum import ReplicaConfig
from repro.exceptions import AnalysisError, ConfigurationError
from repro.latency.distributions import ConstantLatency
from repro.latency.production import WARSDistributions, lnkd_ssd
from repro.montecarlo.convergence import trials_for_margin, wilson_interval
from repro.montecarlo.latency import latency_percentile_table, operation_latency_cdf
from repro.montecarlo.tvisibility import t_visibility_table, visibility_curve, visibility_curves


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        estimate = wilson_interval(990, 1_000)
        assert estimate.lower <= estimate.probability <= estimate.upper
        assert estimate.probability == pytest.approx(0.99)
        assert estimate.contains(0.99)

    def test_narrows_with_more_trials(self):
        small = wilson_interval(90, 100)
        large = wilson_interval(9_000, 10_000)
        assert large.margin < small.margin

    def test_extreme_counts_stay_in_unit_interval(self):
        zero = wilson_interval(0, 50)
        full = wilson_interval(50, 50)
        assert zero.lower == pytest.approx(0.0, abs=1e-12)
        assert full.upper == pytest.approx(1.0, abs=1e-12)
        assert 0.0 <= zero.lower <= zero.upper <= 1.0
        assert 0.0 <= full.lower <= full.upper <= 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(5, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(11, 10)
        with pytest.raises(AnalysisError):
            wilson_interval(1, 10, confidence=1.5)


class TestTrialsForMargin:
    def test_tighter_margin_needs_more_trials(self):
        assert trials_for_margin(0.999, 0.0001) > trials_for_margin(0.999, 0.001)

    def test_known_value(self):
        # p=0.5, margin 0.01, z=1.96 -> ~9604 trials.
        assert trials_for_margin(0.5, 0.01) == pytest.approx(9_604, rel=0.01)

    def test_degenerate_probability(self):
        assert trials_for_margin(0.0, 0.01) == 1

    def test_validation(self):
        with pytest.raises(AnalysisError):
            trials_for_margin(1.5, 0.01)
        with pytest.raises(AnalysisError):
            trials_for_margin(0.5, 0.0)


class TestVisibilityCurves:
    def test_curve_is_monotone_and_bounded(self, exponential_wars, partial_config):
        curve = visibility_curve(
            exponential_wars, partial_config, times_ms=[0.0, 5.0, 20.0, 100.0], trials=20_000, rng=0
        )
        assert list(curve.times_ms) == [0.0, 5.0, 20.0, 100.0]
        probabilities = list(curve.probabilities)
        assert probabilities == sorted(probabilities)
        assert all(0.0 <= p <= 1.0 for p in probabilities)
        assert curve.trials == 20_000

    def test_interpolation_and_inverse_search(self, exponential_wars, partial_config):
        curve = visibility_curve(
            exponential_wars, partial_config, times_ms=[0.0, 10.0, 50.0, 200.0], trials=30_000, rng=1
        )
        target = curve.probabilities[2]
        assert curve.t_for_probability(target) <= 50.0
        assert curve.probability_at(10.0) == pytest.approx(curve.probabilities[1])
        with pytest.raises(ConfigurationError):
            curve.t_for_probability(0.0)

    def test_unreachable_target_returns_infinity(self):
        # A very slow, highly variable write path with near-instant reads keeps
        # the probability of consistency well below the target over a grid that
        # only extends to 1 ms, so the inverse search reports infinity.
        from repro.latency.distributions import ExponentialLatency

        distributions = WARSDistributions(
            w=ExponentialLatency.from_mean(1_000.0),
            a=ConstantLatency(0.001),
            r=ConstantLatency(0.001),
            s=ConstantLatency(0.001),
        )
        curve = visibility_curve(
            distributions, ReplicaConfig(3, 1, 1), times_ms=[0.0, 1.0], trials=2_000, rng=0
        )
        assert math.isinf(curve.t_for_probability(0.9999))

    def test_confidence_interval_at_grid_point(self, exponential_wars, partial_config):
        curve = visibility_curve(
            exponential_wars, partial_config, times_ms=[0.0, 20.0], trials=10_000, rng=2
        )
        estimate = curve.confidence_at(20.0)
        assert estimate.lower <= curve.probability_at(20.0) <= estimate.upper

    def test_rows_rendering(self, exponential_wars, partial_config):
        curve = visibility_curve(
            exponential_wars, partial_config, times_ms=[0.0, 5.0], trials=5_000, rng=0
        )
        rows = curve.as_rows()
        assert rows[0].keys() == {"t_ms", "p_consistent"}

    def test_multi_config_batch(self, exponential_wars):
        configs = [ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 1)]
        curves = visibility_curves(
            exponential_wars, configs, times_ms=[0.0, 10.0], trials=10_000, rng=3
        )
        assert len(curves) == 2
        # Larger read quorum should not be less consistent at commit time.
        assert curves[1].probabilities[0] >= curves[0].probabilities[0]


class TestLatencyCDFs:
    def test_cdf_monotone_and_percentiles_ordered(self, exponential_wars, partial_config):
        cdf = operation_latency_cdf(exponential_wars, partial_config, trials=20_000, rng=0)
        read_curve = cdf.read_cdf([0.5, 1.0, 5.0, 50.0])
        fractions = [f for _, f in read_curve]
        assert fractions == sorted(fractions)
        assert cdf.read_percentile(50.0) <= cdf.read_percentile(99.9)
        assert cdf.write_percentile(50.0) <= cdf.write_percentile(99.9)

    def test_write_cdf_reflects_slow_writes(self, exponential_wars, partial_config):
        cdf = operation_latency_cdf(exponential_wars, partial_config, trials=20_000, rng=0)
        # Write path mean is 10 ms vs 2 ms for the other legs.
        assert cdf.write_percentile(50.0) > cdf.read_percentile(50.0)

    def test_invalid_trials(self, exponential_wars, partial_config):
        with pytest.raises(ConfigurationError):
            operation_latency_cdf(exponential_wars, partial_config, trials=0)

    def test_latency_percentile_table_rows(self, exponential_wars):
        rows = latency_percentile_table(
            {"EXP": exponential_wars},
            configs=[ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2)],
            percentiles=(50.0, 99.0),
            trials=5_000,
            rng=0,
        )
        assert len(rows) == 2
        assert {"environment", "config", "read_p50_ms", "write_p99_ms"} <= rows[0].keys()


class TestTVisibilityTable:
    def test_table_rows_cover_grid(self):
        rows = t_visibility_table(
            {"LNKD-SSD": lnkd_ssd()},
            configs=[ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2)],
            trials=10_000,
            rng=0,
        )
        assert len(rows) == 2
        strict_row = next(row for row in rows if row["config"] == ReplicaConfig(3, 2, 2))
        assert strict_row["t_visibility_ms"] == 0.0
        partial_row = next(row for row in rows if row["config"] == ReplicaConfig(3, 1, 1))
        assert partial_row["consistency_at_commit"] < 1.0
