"""Hygiene tests for the public API surface.

A downstream user should be able to rely on ``repro``'s documented exports:
every name in ``__all__`` must resolve, every subpackage must re-export what
its ``__all__`` promises, and the version string must match the packaging
metadata convention.
"""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.core",
    "repro.latency",
    "repro.cluster",
    "repro.workloads",
    "repro.montecarlo",
    "repro.analysis",
    "repro.analytic",
    "repro.experiments",
    "repro.serving",
    "repro.scenarios",
    "repro.faults",
)


class TestTopLevelExports:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_headline_classes_importable_from_top_level(self):
        assert repro.PBSPredictor is not None
        assert repro.ReplicaConfig(3, 1, 1).is_partial
        assert callable(repro.production_fit)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackageExports:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_docstring_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()


class TestDocstringCoverage:
    """Every public module in the package carries a module docstring."""

    def test_every_module_has_a_docstring(self):
        import pkgutil

        package_path = repro.__path__
        missing: list[str] = []
        for module_info in pkgutil.walk_packages(package_path, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ and module.__doc__.strip()):
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    #: Modules whose documented (``__all__``) surface must be fully docstringed:
    #: the Monte Carlo sweep machinery and the two operator-facing front-ends.
    _DOCUMENTED_SURFACES = (
        "repro.montecarlo",
        "repro.core.predictor",
        "repro.core.sla",
        "repro.serving.service",
        "repro.serving.reservoir",
        "repro.serving.cache",
    )

    @pytest.mark.parametrize("module_name", _DOCUMENTED_SURFACES)
    def test_all_members_have_docstrings(self, module_name):
        """Every ``__all__`` member — and every public method it exposes —
        carries a non-empty docstring."""
        import inspect

        module = importlib.import_module(module_name)
        missing: list[str] = []
        for name in module.__all__:
            member = getattr(module, name)
            if not inspect.isclass(member) and not callable(member):
                continue  # constants document themselves at the module level
            if not (getattr(member, "__doc__", None) or "").strip():
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(member):
                for attribute, value in vars(member).items():
                    if attribute.startswith("_"):
                        continue
                    unwrapped = value
                    if isinstance(value, (staticmethod, classmethod)):
                        unwrapped = value.__func__
                    if not (inspect.isfunction(unwrapped) or isinstance(value, property)):
                        continue
                    if not (getattr(unwrapped, "__doc__", None) or "").strip():
                        missing.append(f"{module_name}.{name}.{attribute}")
        assert not missing, f"public API members without docstrings: {missing}"
