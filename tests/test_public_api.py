"""Hygiene tests for the public API surface.

A downstream user should be able to rely on ``repro``'s documented exports:
every name in ``__all__`` must resolve, every subpackage must re-export what
its ``__all__`` promises, and the version string must match the packaging
metadata convention.
"""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.core",
    "repro.latency",
    "repro.cluster",
    "repro.workloads",
    "repro.montecarlo",
    "repro.analysis",
    "repro.experiments",
)


class TestTopLevelExports:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_headline_classes_importable_from_top_level(self):
        assert repro.PBSPredictor is not None
        assert repro.ReplicaConfig(3, 1, 1).is_partial
        assert callable(repro.production_fit)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackageExports:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_docstring_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()


class TestDocstringCoverage:
    """Every public module in the package carries a module docstring."""

    def test_every_module_has_a_docstring(self):
        import pkgutil

        package_path = repro.__path__
        missing: list[str] = []
        for module_info in pkgutil.walk_packages(package_path, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ and module.__doc__.strip()):
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"
