"""Unit tests for the PBSPredictor facade and the §6 SLA optimizer."""

from __future__ import annotations

import pytest

from repro.core.predictor import PBSPredictor
from repro.core.quorum import ReplicaConfig
from repro.core.sla import SLAOptimizer, SLATarget
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions, lnkd_ssd


class TestPBSPredictor:
    def test_report_fields_are_sane(self, exponential_wars, partial_config):
        predictor = PBSPredictor(exponential_wars, partial_config)
        report = predictor.report(trials=20_000, rng=0)
        assert 0.0 <= report.consistency_at_commit <= 1.0
        assert report.t_visibility_99 <= report.t_visibility_999
        assert report.k_staleness[1] < report.k_staleness[2] < report.k_staleness[3]
        assert report.read_latency_ms[50.0] <= report.read_latency_ms[99.9]
        assert report.write_latency_ms[50.0] <= report.write_latency_ms[99.9]
        assert report.trials == 20_000

    def test_summary_lines_mention_configuration(self, exponential_wars, partial_config):
        report = PBSPredictor(exponential_wars, partial_config).report(trials=5_000, rng=0)
        text = "\n".join(report.summary_lines())
        assert "N=3 R=1 W=1" in text
        assert "partial" in text

    def test_report_requires_enough_trials(self, exponential_wars, partial_config):
        with pytest.raises(ConfigurationError):
            PBSPredictor(exponential_wars, partial_config).report(trials=10)

    def test_k_staleness_model_exposed(self, exponential_wars, partial_config):
        predictor = PBSPredictor(exponential_wars, partial_config)
        assert predictor.k_staleness().consistency(1) == pytest.approx(1 / 3)

    def test_monotonic_reads_helper(self, exponential_wars, partial_config):
        model = PBSPredictor(exponential_wars, partial_config).monotonic_reads(2.0, 1.0)
        assert model.effective_k == pytest.approx(3.0)

    def test_t_visibility_helper_consistent_with_curve(self, exponential_wars, partial_config):
        predictor = PBSPredictor(exponential_wars, partial_config)
        t = predictor.t_visibility(target_probability=0.95, trials=30_000, rng=1)
        curve = predictor.consistency_curve([t], trials=30_000, rng=1)
        assert curve[0][1] >= 0.95

    def test_kt_staleness_bridges_to_empirical_propagation(
        self, exponential_wars, partial_config
    ):
        predictor = PBSPredictor(exponential_wars, partial_config)
        p_k1 = predictor.kt_staleness(k=1, t_ms=0.0, trials=20_000, rng=0)
        p_k3 = predictor.kt_staleness(k=3, t_ms=0.0, trials=20_000, rng=0)
        assert 0.0 <= p_k1 <= p_k3 <= 1.0

    def test_strict_quorum_report_is_perfectly_consistent(self, exponential_wars):
        predictor = PBSPredictor(exponential_wars, ReplicaConfig(3, 2, 2))
        report = predictor.report(trials=10_000, rng=0)
        assert report.consistency_at_commit == pytest.approx(1.0)
        assert report.t_visibility_999 == 0.0


class TestSLATarget:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLATarget(latency_percentile=0.0)
        with pytest.raises(ConfigurationError):
            SLATarget(consistency_probability=0.0)
        with pytest.raises(ConfigurationError):
            SLATarget(min_write_quorum=0)
        with pytest.raises(ConfigurationError):
            SLATarget(min_replication=0)

    def test_defaults_are_permissive(self):
        target = SLATarget()
        assert target.read_latency_ms is None
        assert target.t_visibility_ms is None


class TestSLAOptimizer:
    def test_requires_candidates_and_trials(self, exponential_wars):
        with pytest.raises(ConfigurationError):
            SLAOptimizer(exponential_wars, replication_factors=(), trials=1_000)
        with pytest.raises(ConfigurationError):
            SLAOptimizer(exponential_wars, trials=10)

    def test_evaluate_single_config(self, exponential_wars):
        optimizer = SLAOptimizer(exponential_wars, replication_factors=(3,), trials=5_000, rng=0)
        evaluation = optimizer.evaluate(ReplicaConfig(3, 1, 1), SLATarget())
        assert evaluation.meets_target
        assert evaluation.combined_latency_ms == pytest.approx(
            evaluation.read_latency_ms + evaluation.write_latency_ms
        )

    def test_durability_floor_filters_configs(self, exponential_wars):
        optimizer = SLAOptimizer(exponential_wars, replication_factors=(3,), trials=2_000, rng=0)
        target = SLATarget(min_write_quorum=2)
        evaluations = optimizer.evaluate_all(target)
        assert all(evaluation.config.w >= 2 for evaluation in evaluations)

    def test_best_breaks_latency_ties_toward_durability(self):
        # Deterministic latencies make every configuration equally fast and
        # instantly consistent, so the documented tie-break (higher W wins
        # among equal combined latencies) decides the outcome.
        distributions = WARSDistributions(
            w=ConstantLatency(1.0),
            a=ConstantLatency(1.0),
            r=ConstantLatency(1.0),
            s=ConstantLatency(1.0),
        )
        optimizer = SLAOptimizer(distributions, replication_factors=(3,), trials=1_000, rng=0)
        best = optimizer.best(SLATarget(t_visibility_ms=0.0))
        assert best is not None
        assert best.combined_latency_ms == pytest.approx(4.0)
        assert best.config.w == 3

    def test_best_returns_none_when_infeasible(self):
        distributions = WARSDistributions.symmetric(ExponentialLatency.from_mean(10.0))
        optimizer = SLAOptimizer(distributions, replication_factors=(3,), trials=2_000, rng=0)
        impossible = SLATarget(read_latency_ms=0.0001, write_latency_ms=0.0001)
        assert optimizer.best(impossible) is None

    def test_staleness_constraint_excludes_weak_configs(self, exponential_wars):
        optimizer = SLAOptimizer(exponential_wars, replication_factors=(3,), trials=20_000, rng=0)
        # Demand effectively-immediate consistency: R=W=1 under a slow write
        # path cannot deliver it, strict quorums can.
        target = SLATarget(t_visibility_ms=0.0, consistency_probability=0.999)
        best = optimizer.best(target)
        assert best is not None
        assert best.config.is_strict

    def test_violations_are_reported(self, exponential_wars):
        optimizer = SLAOptimizer(exponential_wars, replication_factors=(3,), trials=5_000, rng=0)
        evaluation = optimizer.evaluate(
            ReplicaConfig(3, 1, 1), SLATarget(t_visibility_ms=0.0, consistency_probability=0.999)
        )
        assert not evaluation.meets_target
        assert any("t-visibility" in violation for violation in evaluation.violations)

    def test_evaluate_agrees_exactly_with_evaluate_all_for_seeded_runs(self, exponential_wars):
        # Seeded sample streams are keyed by replication factor, so a
        # single-config evaluate() sees the same trials as the corresponding
        # evaluate_all() row and must report identical numbers.
        optimizer = SLAOptimizer(exponential_wars, replication_factors=(3,), trials=5_000, rng=0)
        target = SLATarget(t_visibility_ms=10.0)
        batched = {e.config: e for e in optimizer.evaluate_all(target)}
        for config in (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 2)):
            single = optimizer.evaluate(config, target)
            assert single == batched[config]

    def test_callable_distributions_receive_n(self):
        captured: list[int] = []

        def factory(n: int):
            captured.append(n)
            return lnkd_ssd()

        optimizer = SLAOptimizer(factory, replication_factors=(2, 3), trials=1_000, rng=0)
        optimizer.evaluate_all(SLATarget())
        assert set(captured) == {2, 3}
