"""Mode wiring tests: analytic and hybrid reports, SLA search, CLI flag."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.predictor import PBSPredictor
from repro.core.quorum import ReplicaConfig
from repro.core.sla import SLAOptimizer, SLATarget
from repro.exceptions import ConfigurationError
from repro.latency.production import lnkd_ssd, wan


@pytest.fixture(scope="module")
def predictor() -> PBSPredictor:
    return PBSPredictor(lnkd_ssd(), ReplicaConfig(n=3, r=1, w=1))


class TestReportModes:
    def test_analytic_report_runs_no_trials(self, predictor):
        report = predictor.report(mode="analytic")
        assert report.mode == "analytic"
        assert report.trials == 0
        assert report.montecarlo_check is None
        assert 0.9 < report.consistency_at_commit < 1.0
        assert report.t_visibility_99 <= report.t_visibility_999

    def test_analytic_agrees_with_montecarlo_report(self, predictor):
        analytic = predictor.report(mode="analytic")
        sampled = predictor.report(trials=50_000, rng=0)
        assert analytic.consistency_at_commit == pytest.approx(
            sampled.consistency_at_commit, abs=0.01
        )
        assert analytic.read_latency_ms[50.0] == pytest.approx(
            sampled.read_latency_ms[50.0], rel=0.05
        )

    def test_hybrid_report_spot_checks(self, predictor):
        report = predictor.report(trials=10_000, rng=0, mode="hybrid")
        assert report.mode == "hybrid"
        assert report.trials == 10_000
        assert report.montecarlo_check is not None
        assert report.montecarlo_check["max_absolute_error"] <= 0.02
        assert any("spot-check" in line for line in report.summary_lines())

    def test_k_staleness_is_mode_independent(self, predictor):
        analytic = predictor.report(mode="analytic")
        sampled = predictor.report(trials=1_000, rng=0)
        assert analytic.k_staleness == sampled.k_staleness

    def test_rejects_unknown_mode(self, predictor):
        with pytest.raises(ConfigurationError, match="mode"):
            predictor.report(mode="telepathy")

    def test_analytic_rejects_wan(self):
        wan_predictor = PBSPredictor(wan(), ReplicaConfig(n=3, r=1, w=1))
        with pytest.raises(ConfigurationError, match="i.i.d."):
            wan_predictor.report(mode="analytic")


class TestSLAOptimizerModes:
    def test_analytic_search_matches_montecarlo_winner(self):
        target = SLATarget(t_visibility_ms=10.0, read_latency_ms=10.0)
        analytic = SLAOptimizer(
            lnkd_ssd(), replication_factors=(2, 3), mode="analytic"
        ).best(target)
        sampled = SLAOptimizer(
            lnkd_ssd(), replication_factors=(2, 3), trials=20_000, rng=0
        ).best(target)
        assert analytic is not None and sampled is not None
        assert analytic.config == sampled.config

    def test_analytic_evaluate_reports_violations(self):
        optimizer = SLAOptimizer(lnkd_ssd(), mode="analytic")
        impossible = SLATarget(read_latency_ms=1e-6)
        evaluation = optimizer.evaluate(ReplicaConfig(3, 1, 1), impossible)
        assert not evaluation.meets_target
        assert any("read latency" in v for v in evaluation.violations)

    def test_hybrid_best_returns_montecarlo_verdict(self):
        target = SLATarget(t_visibility_ms=100.0)
        optimizer = SLAOptimizer(
            lnkd_ssd(), replication_factors=(3,), trials=5_000, rng=0, mode="hybrid"
        )
        best = optimizer.best(target)
        assert best is not None
        assert best.meets_target

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            SLAOptimizer(lnkd_ssd(), mode="psychic")


class TestCliMode:
    def test_predict_analytic_mode(self, capsys):
        assert main(["predict", "--fit", "LNKD-SSD", "--mode", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "prediction mode: analytic" in out

    def test_predict_wan_analytic_fails_cleanly(self, capsys):
        assert main(["predict", "--fit", "WAN", "--mode", "analytic"]) == 1
        assert "i.i.d." in capsys.readouterr().err
