"""Unit tests for replica configuration value objects."""

from __future__ import annotations

import pytest

from repro.core.quorum import CASSANDRA_DEFAULT, RIAK_DEFAULT, ReplicaConfig, iter_configs
from repro.exceptions import ConfigurationError


class TestReplicaConfigValidation:
    def test_valid_configuration(self):
        config = ReplicaConfig(n=3, r=2, w=1)
        assert (config.n, config.r, config.w) == (3, 2, 1)

    @pytest.mark.parametrize("n,r,w", [(0, 1, 1), (3, 0, 1), (3, 1, 0), (3, 4, 1), (3, 1, 4)])
    def test_invalid_configurations_rejected(self, n, r, w):
        with pytest.raises(ConfigurationError):
            ReplicaConfig(n=n, r=r, w=w)

    def test_is_hashable_and_comparable(self):
        assert ReplicaConfig(3, 1, 1) == ReplicaConfig(3, 1, 1)
        assert len({ReplicaConfig(3, 1, 1), ReplicaConfig(3, 1, 1)}) == 1
        assert ReplicaConfig(3, 1, 1) < ReplicaConfig(3, 1, 2)


class TestClassification:
    def test_strict_when_quorums_overlap(self):
        assert ReplicaConfig(3, 2, 2).is_strict
        assert not ReplicaConfig(3, 2, 2).is_partial

    def test_partial_when_no_overlap_guarantee(self):
        assert ReplicaConfig(3, 1, 1).is_partial
        assert ReplicaConfig(3, 1, 2).is_partial  # R + W = N is still partial

    def test_boundary_r_plus_w_equals_n_is_partial(self):
        assert ReplicaConfig(4, 2, 2).is_partial
        assert ReplicaConfig(4, 2, 3).is_strict

    def test_concurrent_write_tolerance(self):
        assert ReplicaConfig(3, 1, 2).tolerates_concurrent_writes
        assert not ReplicaConfig(3, 2, 1).tolerates_concurrent_writes

    def test_fault_tolerance_counts(self):
        config = ReplicaConfig(5, 2, 3)
        assert config.read_fault_tolerance == 3
        assert config.write_fault_tolerance == 2


class TestConstructors:
    def test_majority_quorum_is_strict(self):
        for n in range(1, 10):
            config = ReplicaConfig.majority(n)
            assert config.is_strict
            assert config.r == config.w == n // 2 + 1

    def test_one_one_default(self):
        config = ReplicaConfig.one_one()
        assert (config.n, config.r, config.w) == (3, 1, 1)

    def test_with_modifiers(self):
        config = ReplicaConfig(3, 1, 1)
        assert config.with_r(2).r == 2
        assert config.with_w(3).w == 3
        assert config.with_n(5).n == 5
        # Originals are unchanged (immutability).
        assert config.r == 1 and config.w == 1 and config.n == 3

    def test_label_and_str(self):
        assert ReplicaConfig(3, 2, 1).label() == "N=3 R=2 W=1"
        assert str(ReplicaConfig(3, 2, 1)) == "N=3 R=2 W=1"

    def test_paper_defaults(self):
        assert CASSANDRA_DEFAULT == ReplicaConfig(3, 1, 1)
        assert RIAK_DEFAULT == ReplicaConfig(3, 2, 2)


class TestIterConfigs:
    def test_counts_all_pairs(self):
        assert len(list(iter_configs(3))) == 9
        assert len(list(iter_configs(5))) == 25

    def test_partial_only_filter(self):
        partial = list(iter_configs(3, include_strict=False))
        assert all(config.is_partial for config in partial)
        # For N=3: (1,1), (1,2), (2,1) are the only partial pairs.
        assert len(partial) == 3

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            list(iter_configs(0))
