"""Unit tests for the WARS Monte Carlo model (§4, §5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions, wan


class TestDeterministicScenarios:
    """With constant latencies the outcome of every trial is known exactly."""

    def test_commit_and_read_latency_with_constant_delays(self):
        distributions = WARSDistributions(
            w=ConstantLatency(4.0),
            a=ConstantLatency(1.0),
            r=ConstantLatency(2.0),
            s=ConstantLatency(3.0),
        )
        model = WARSModel(distributions, ReplicaConfig(3, 2, 2))
        result = model.sample(500, rng=0)
        assert np.allclose(result.commit_latencies_ms, 5.0)
        assert np.allclose(result.read_latencies_ms, 5.0)

    def test_constant_delays_are_always_consistent(self):
        # Write arrives at every replica at t=4 and commit happens at t=5, so
        # any read issued after commit observes the write.
        distributions = WARSDistributions(
            w=ConstantLatency(4.0),
            a=ConstantLatency(1.0),
            r=ConstantLatency(2.0),
            s=ConstantLatency(3.0),
        )
        result = WARSModel(distributions, ReplicaConfig(3, 1, 1)).sample(500, rng=0)
        assert result.consistency_probability(0.0) == 1.0

    def test_slow_write_fast_read_is_always_stale_at_t0(self):
        # Write messages take 100 ms to reach replicas but the ack of the
        # coordinator-local... no: with W=1 the commit happens after the first
        # (w + a) = 101 ms, at which point only that one replica has the write.
        # A read with R=1 may hit any replica; make reads so fast they always
        # arrive 1 ms after commit, i.e. 102 ms, after only 1 of 3 replicas has
        # the version.  The first responder is uniformly random, so consistency
        # at t=0 should be about 1/3... but with constant read delays all
        # replicas respond simultaneously and ties are broken by stable sort,
        # making the outcome deterministic per trial.  Instead check the t
        # threshold structure: consistency must reach 1.0 once t exceeds the
        # write delay spread.
        distributions = WARSDistributions(
            w=ExponentialLatency.from_mean(100.0),
            a=ConstantLatency(1.0),
            r=ConstantLatency(1.0),
            s=ConstantLatency(1.0),
        )
        result = WARSModel(distributions, ReplicaConfig(3, 1, 1)).sample(4_000, rng=1)
        assert result.consistency_probability(0.0) < 0.9
        assert result.consistency_probability(5_000.0) > 0.999


class TestStatisticalBehaviour:
    def test_strict_quorums_are_never_stale(self, exponential_wars, rng):
        for r, w in ((2, 2), (3, 1), (1, 3)):
            config = ReplicaConfig(3, r, w)
            result = WARSModel(exponential_wars, config).sample(20_000, rng)
            assert result.consistency_probability(0.0) == pytest.approx(1.0)
            assert result.t_visibility(0.999) == 0.0

    def test_consistency_increases_with_t(self, exponential_wars, rng):
        result = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(50_000, rng)
        curve = result.consistency_curve([0.0, 5.0, 20.0, 100.0])
        probabilities = [p for _, p in curve]
        assert probabilities == sorted(probabilities)

    def test_larger_write_quorum_improves_consistency(self, exponential_wars, rng):
        base = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(50_000, rng)
        stronger = WARSModel(exponential_wars, ReplicaConfig(3, 1, 2)).sample(50_000, rng)
        assert stronger.consistency_probability(0.0) > base.consistency_probability(0.0)

    def test_larger_read_quorum_improves_consistency(self, exponential_wars, rng):
        base = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(50_000, rng)
        stronger = WARSModel(exponential_wars, ReplicaConfig(3, 2, 1)).sample(50_000, rng)
        assert stronger.consistency_probability(0.0) > base.consistency_probability(0.0)

    def test_write_latency_grows_with_w(self, exponential_wars, rng):
        w1 = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(30_000, rng)
        w3 = WARSModel(exponential_wars, ReplicaConfig(3, 1, 3)).sample(30_000, rng)
        assert w3.write_latency_percentile(50.0) > w1.write_latency_percentile(50.0)

    def test_read_latency_grows_with_r(self, exponential_wars, rng):
        r1 = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(30_000, rng)
        r3 = WARSModel(exponential_wars, ReplicaConfig(3, 3, 1)).sample(30_000, rng)
        assert r3.read_latency_percentile(50.0) > r1.read_latency_percentile(50.0)

    def test_t_visibility_quantile_is_consistent_with_curve(self, exponential_wars, rng):
        result = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(50_000, rng)
        t_99 = result.t_visibility(0.99)
        assert result.consistency_probability(t_99) >= 0.99
        if t_99 > 0.5:
            assert result.consistency_probability(t_99 * 0.5) < 0.995

    def test_seed_reproducibility(self, exponential_wars):
        model = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1))
        first = model.sample(10_000, rng=42)
        second = model.sample(10_000, rng=42)
        assert np.array_equal(first.staleness_thresholds_ms, second.staleness_thresholds_ms)

    def test_reported_trials(self, exponential_wars):
        result = WARSModel(exponential_wars, ReplicaConfig(3, 1, 1)).sample(1_234, rng=0)
        assert result.trials == 1_234


class TestValidationAndErrors:
    def test_invalid_trials_rejected(self, exponential_wars, partial_config):
        with pytest.raises(ConfigurationError):
            WARSModel(exponential_wars, partial_config).sample(0)

    def test_negative_time_rejected(self, exponential_wars, partial_config):
        result = WARSModel(exponential_wars, partial_config).sample(1_000, rng=0)
        with pytest.raises(ConfigurationError):
            result.consistency_probability(-1.0)
        with pytest.raises(ConfigurationError):
            result.consistency_curve([-1.0])

    def test_invalid_target_probability(self, exponential_wars, partial_config):
        result = WARSModel(exponential_wars, partial_config).sample(1_000, rng=0)
        with pytest.raises(ConfigurationError):
            result.t_visibility(0.0)
        with pytest.raises(ConfigurationError):
            result.t_visibility(1.5)

    def test_per_replica_distribution_requires_matching_n(self):
        distributions = wan(replica_count=3)
        with pytest.raises(Exception):
            WARSModel(distributions, ReplicaConfig(5, 1, 1)).sample(100, rng=0)

    def test_with_config_shares_distributions(self, exponential_wars, partial_config):
        model = WARSModel(exponential_wars, partial_config)
        other = model.with_config(ReplicaConfig(3, 2, 2))
        assert other.distributions is model.distributions
        assert other.config == ReplicaConfig(3, 2, 2)


class TestWanScenario:
    def test_wan_consistency_jumps_after_wan_delay(self, rng):
        result = WARSModel(wan(replica_count=3), ReplicaConfig(3, 1, 1)).sample(30_000, rng)
        early = result.consistency_probability(1.0)
        late = result.consistency_probability(200.0)
        assert early < 0.6
        assert late > 0.95

    def test_wan_write_latency_much_higher_for_w2(self, rng):
        distributions = wan(replica_count=3)
        w1 = WARSModel(distributions, ReplicaConfig(3, 1, 1)).sample(20_000, rng)
        w2 = WARSModel(distributions, ReplicaConfig(3, 1, 2)).sample(20_000, rng)
        # W=2 requires at least one remote (75 ms one-way) acknowledgement.
        assert w2.write_latency_percentile(50.0) > 100.0
        assert w1.write_latency_percentile(50.0) < 100.0
