"""Unit tests for closed-form k-staleness (§3.1) and monotonic reads (§3.2)."""

from __future__ import annotations

from math import comb

import pytest

from repro.core.kstaleness import (
    KStalenessModel,
    consistency_probability,
    k_for_target_probability,
    probability_nonintersection,
    staleness_probability,
)
from repro.core.monotonic import (
    MonotonicReadsModel,
    monotonic_reads_probability,
    strict_monotonic_reads_probability,
)
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError


class TestEquationOne:
    def test_cassandra_default(self):
        # N=3, R=W=1: p_s = C(2,1)/C(3,1) = 2/3.
        assert probability_nonintersection(ReplicaConfig(3, 1, 1)) == pytest.approx(2 / 3)

    def test_r1_w2(self):
        # N=3, R=1, W=2: p_s = C(1,1)/C(3,1) = 1/3.
        assert probability_nonintersection(ReplicaConfig(3, 1, 2)) == pytest.approx(1 / 3)

    def test_symmetry_in_r_and_w(self):
        assert probability_nonintersection(ReplicaConfig(3, 1, 2)) == pytest.approx(
            probability_nonintersection(ReplicaConfig(3, 2, 1))
        )

    def test_strict_quorum_never_misses(self):
        assert probability_nonintersection(ReplicaConfig(3, 2, 2)) == 0.0
        assert probability_nonintersection(ReplicaConfig(5, 3, 3)) == 0.0

    def test_paper_large_n_example(self):
        # Paper §2.1: N=100, R=W=30 gives p_s = 1.88e-6.
        value = probability_nonintersection(ReplicaConfig(100, 30, 30))
        assert value == pytest.approx(1.88e-6, rel=0.05)

    def test_matches_direct_combinatorics(self):
        config = ReplicaConfig(7, 3, 2)
        expected = comb(7 - 2, 3) / comb(7, 3)
        assert probability_nonintersection(config) == pytest.approx(expected)


class TestEquationTwo:
    def test_exponentiation_in_k(self):
        config = ReplicaConfig(3, 1, 1)
        p1 = staleness_probability(config, 1)
        assert staleness_probability(config, 3) == pytest.approx(p1**3)

    def test_paper_in_text_values(self):
        # Paper §3.1: N=3, R=W=1 -> within 3 versions 0.703..., 5 versions > 0.868,
        # 10 versions > 0.98.
        model = KStalenessModel(ReplicaConfig(3, 1, 1))
        assert model.consistency(3) == pytest.approx(0.7037, abs=1e-3)
        assert model.consistency(5) > 0.868
        assert model.consistency(10) > 0.98

    def test_consistency_is_complement(self):
        config = ReplicaConfig(3, 2, 1)
        assert consistency_probability(config, 4) == pytest.approx(
            1.0 - staleness_probability(config, 4)
        )

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            staleness_probability(ReplicaConfig(3, 1, 1), 0)

    def test_monotone_increasing_in_k(self):
        model = KStalenessModel(ReplicaConfig(3, 1, 1))
        values = [model.consistency(k) for k in range(1, 20)]
        assert values == sorted(values)

    def test_expected_staleness_geometric_sum(self):
        model = KStalenessModel(ReplicaConfig(3, 1, 1))
        # p_s = 2/3 -> expected lag = (2/3)/(1/3) = 2.
        assert model.expected_staleness_versions() == pytest.approx(2.0)

    def test_table_rows(self):
        rows = KStalenessModel(ReplicaConfig(3, 1, 2)).table(ks=(1, 2))
        assert rows[0]["k"] == 1.0
        assert rows[0]["p_consistent"] == pytest.approx(2 / 3)
        assert rows[1]["p_stale"] == pytest.approx((1 / 3) ** 2)


class TestKForTarget:
    def test_strict_quorum_needs_k_of_one(self):
        assert k_for_target_probability(ReplicaConfig(3, 2, 2), 0.999999) == 1

    def test_partial_quorum_requires_larger_k(self):
        config = ReplicaConfig(3, 1, 1)
        k = k_for_target_probability(config, 0.99)
        assert consistency_probability(config, k) >= 0.99
        assert consistency_probability(config, k - 1) < 0.99

    def test_exact_one_unreachable(self):
        with pytest.raises(ConfigurationError):
            k_for_target_probability(ReplicaConfig(3, 1, 1), 1.0)


class TestMonotonicReads:
    def test_reduces_to_k_staleness_exponent(self):
        config = ReplicaConfig(3, 1, 1)
        # writes/reads ratio 2 -> exponent 3.
        expected = 1.0 - probability_nonintersection(config) ** 3
        assert monotonic_reads_probability(config, 2.0, 1.0) == pytest.approx(expected)

    def test_strict_variant_drops_one_from_exponent(self):
        config = ReplicaConfig(3, 1, 1)
        expected = 1.0 - probability_nonintersection(config) ** 2
        assert strict_monotonic_reads_probability(config, 2.0, 1.0) == pytest.approx(expected)

    def test_no_writes_between_reads(self):
        config = ReplicaConfig(3, 1, 1)
        # Non-strict: exponent 1; strict: nothing newer to read -> probability 0.
        assert monotonic_reads_probability(config, 0.0, 1.0) == pytest.approx(1 / 3)
        assert strict_monotonic_reads_probability(config, 0.0, 1.0) == 0.0

    def test_faster_client_reads_improve_monotonicity(self):
        config = ReplicaConfig(3, 1, 1)
        slow = monotonic_reads_probability(config, 10.0, 1.0)
        fast = monotonic_reads_probability(config, 10.0, 100.0)
        assert fast < slow  # fewer versions pass between reads -> smaller exponent
        # Sanity: with a tiny exponent the probability approaches 1 - p_s.
        assert fast == pytest.approx(1 - (2 / 3) ** 1.1, abs=1e-6)

    def test_invalid_rates_rejected(self):
        config = ReplicaConfig(3, 1, 1)
        with pytest.raises(ConfigurationError):
            monotonic_reads_probability(config, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            monotonic_reads_probability(config, 1.0, 0.0)

    def test_model_properties(self):
        model = MonotonicReadsModel(
            config=ReplicaConfig(3, 1, 1), global_write_rate=4.0, client_read_rate=2.0
        )
        assert model.versions_between_reads == pytest.approx(2.0)
        assert model.effective_k == pytest.approx(3.0)
        assert model.probability() == pytest.approx(1 - (2 / 3) ** 3)
        assert model.strict_probability() == pytest.approx(1 - (2 / 3) ** 2)

    def test_required_read_rate_achieves_target(self):
        model = MonotonicReadsModel(
            config=ReplicaConfig(3, 1, 1), global_write_rate=10.0, client_read_rate=1.0
        )
        target = 0.99
        required = model.required_read_rate_for(target)
        achieved = MonotonicReadsModel(
            config=model.config,
            global_write_rate=model.global_write_rate,
            client_read_rate=max(required, 1e-9),
        ).probability()
        assert achieved >= target - 1e-9

    def test_required_read_rate_zero_when_trivially_met(self):
        model = MonotonicReadsModel(
            config=ReplicaConfig(3, 2, 2), global_write_rate=10.0, client_read_rate=1.0
        )
        assert model.required_read_rate_for(0.999) == 0.0
