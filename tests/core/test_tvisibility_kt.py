"""Unit tests for the Equation 4 t-visibility bound and Equation 5 ⟨k,t⟩-staleness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kstaleness import probability_nonintersection
from repro.core.ktstaleness import (
    KTStalenessModel,
    kt_consistency_probability,
    kt_staleness_probability,
)
from repro.core.quorum import ReplicaConfig
from repro.core.tvisibility import (
    EmpiricalPropagation,
    ExponentialPropagation,
    InstantaneousPropagation,
    staleness_upper_bound,
    visibility_curve,
    visibility_lower_bound,
)
from repro.exceptions import ConfigurationError


class TestPropagationModels:
    def test_instantaneous_pmf_concentrated_at_w(self, partial_config):
        pmf = InstantaneousPropagation().replica_count_pmf(partial_config, 5.0)
        assert pmf[partial_config.w] == 1.0
        assert np.sum(pmf) == pytest.approx(1.0)

    def test_exponential_pmf_is_binomial_over_extra_replicas(self):
        config = ReplicaConfig(3, 1, 1)
        model = ExponentialPropagation(rate_per_ms=0.1)
        pmf = model.replica_count_pmf(config, 10.0)
        p = 1.0 - np.exp(-1.0)
        assert pmf[1] == pytest.approx((1 - p) ** 2)
        assert pmf[2] == pytest.approx(2 * p * (1 - p))
        assert pmf[3] == pytest.approx(p**2)
        assert np.sum(pmf) == pytest.approx(1.0)

    def test_exponential_at_time_zero_matches_instantaneous(self, partial_config):
        exp_pmf = ExponentialPropagation(rate_per_ms=1.0).replica_count_pmf(partial_config, 0.0)
        inst_pmf = InstantaneousPropagation().replica_count_pmf(partial_config, 0.0)
        assert np.allclose(exp_pmf, inst_pmf)

    def test_exponential_rejects_bad_inputs(self, partial_config):
        with pytest.raises(ConfigurationError):
            ExponentialPropagation(rate_per_ms=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialPropagation(rate_per_ms=1.0).replica_count_pmf(partial_config, -1.0)

    def test_cumulative_is_reverse_cumsum(self, partial_config):
        model = ExponentialPropagation(rate_per_ms=0.5)
        pmf = model.replica_count_pmf(partial_config, 2.0)
        cumulative = model.cumulative(partial_config, 2.0)
        assert cumulative[0] == pytest.approx(1.0)
        assert cumulative[-1] == pytest.approx(pmf[-1])

    def test_empirical_propagation_counts_arrivals(self):
        config = ReplicaConfig(3, 1, 1)
        # Two writes: in the first, replicas get the write at -1, 5, 20 ms
        # relative to commit; in the second at -2, 1, 2 ms.
        delays = np.array([[-1.0, 5.0, 20.0], [-2.0, 1.0, 2.0]])
        model = EmpiricalPropagation(arrival_delays_ms=delays)
        pmf_at_3 = model.replica_count_pmf(config, 3.0)
        # At t=3: first write has 1 replica, second write has 3 replicas.
        assert pmf_at_3[1] == pytest.approx(0.5)
        assert pmf_at_3[3] == pytest.approx(0.5)

    def test_empirical_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            EmpiricalPropagation(arrival_delays_ms=np.array([1.0, 2.0]))
        model = EmpiricalPropagation(arrival_delays_ms=np.zeros((5, 4)))
        with pytest.raises(ConfigurationError):
            model.replica_count_pmf(ReplicaConfig(3, 1, 1), 0.0)


class TestEquationFour:
    def test_no_propagation_reduces_to_equation_one(self, partial_config):
        bound = staleness_upper_bound(partial_config, InstantaneousPropagation(), 100.0)
        assert bound == pytest.approx(probability_nonintersection(partial_config))

    def test_strict_quorum_never_stale(self, strict_config):
        bound = staleness_upper_bound(strict_config, InstantaneousPropagation(), 0.0)
        assert bound == 0.0

    def test_staleness_decreases_with_time(self, partial_config):
        model = ExponentialPropagation(rate_per_ms=0.05)
        bounds = [
            staleness_upper_bound(partial_config, model, t) for t in (0.0, 5.0, 20.0, 100.0)
        ]
        assert bounds == sorted(bounds, reverse=True)

    def test_full_propagation_eliminates_staleness(self, partial_config):
        model = ExponentialPropagation(rate_per_ms=10.0)
        assert staleness_upper_bound(partial_config, model, 1_000.0) < 1e-6

    def test_visibility_is_complement(self, partial_config):
        model = ExponentialPropagation(rate_per_ms=0.1)
        assert visibility_lower_bound(partial_config, model, 7.0) == pytest.approx(
            1.0 - staleness_upper_bound(partial_config, model, 7.0)
        )

    def test_visibility_curve_grid(self, partial_config):
        curve = visibility_curve(partial_config, ExponentialPropagation(0.1), [0.0, 10.0])
        assert [t for t, _ in curve] == [0.0, 10.0]
        assert curve[1][1] >= curve[0][1]

    def test_negative_time_rejected(self, partial_config):
        with pytest.raises(ConfigurationError):
            staleness_upper_bound(partial_config, InstantaneousPropagation(), -1.0)

    def test_larger_read_quorum_lowers_staleness(self):
        model = ExponentialPropagation(rate_per_ms=0.05)
        r1 = staleness_upper_bound(ReplicaConfig(3, 1, 1), model, 5.0)
        r2 = staleness_upper_bound(ReplicaConfig(3, 2, 1), model, 5.0)
        assert r2 < r1


class TestEquationFive:
    def test_exponentiation_in_k(self, partial_config):
        model = ExponentialPropagation(rate_per_ms=0.05)
        single = kt_staleness_probability(partial_config, model, 1, 5.0)
        assert kt_staleness_probability(partial_config, model, 3, 5.0) == pytest.approx(
            single**3
        )

    def test_k1_t0_matches_equation_one(self, partial_config):
        value = kt_staleness_probability(partial_config, InstantaneousPropagation(), 1, 0.0)
        assert value == pytest.approx(probability_nonintersection(partial_config))

    def test_consistency_complement(self, partial_config):
        model = ExponentialPropagation(rate_per_ms=0.1)
        assert kt_consistency_probability(partial_config, model, 2, 3.0) == pytest.approx(
            1.0 - kt_staleness_probability(partial_config, model, 2, 3.0)
        )

    def test_invalid_k_rejected(self, partial_config):
        with pytest.raises(ConfigurationError):
            kt_staleness_probability(partial_config, InstantaneousPropagation(), 0, 1.0)

    def test_model_surface_and_individual_times(self, partial_config):
        model = KTStalenessModel(partial_config, ExponentialPropagation(rate_per_ms=0.1))
        surface = model.surface(ks=(1, 2), times_ms=(0.0, 10.0))
        assert len(surface) == 4
        assert all(0.0 <= row["p_consistent"] <= 1.0 for row in surface)
        # Individual commit ages: staler (older) writes contribute smaller factors.
        joint = model.staleness_with_individual_times([0.0, 50.0, 200.0])
        worst_case = model.staleness(3, 0.0)
        assert joint <= worst_case + 1e-12

    def test_individual_times_requires_ages(self, partial_config):
        model = KTStalenessModel(partial_config, InstantaneousPropagation())
        with pytest.raises(ConfigurationError):
            model.staleness_with_individual_times([])
