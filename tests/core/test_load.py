"""Unit tests for the §3.3 load and capacity bounds."""

from __future__ import annotations

from math import sqrt

import pytest

from repro.core.load import (
    LoadModel,
    capacity_from_load,
    epsilon_intersecting_load,
    k_staleness_load,
    monotonic_reads_load,
)
from repro.exceptions import ConfigurationError


class TestEpsilonIntersectingLoad:
    def test_formula(self):
        assert epsilon_intersecting_load(9, 0.25) == pytest.approx((1 - 0.5) / 3.0)

    def test_zero_epsilon_gives_strict_bound(self):
        assert epsilon_intersecting_load(4, 0.0) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            epsilon_intersecting_load(0, 0.5)
        with pytest.raises(ConfigurationError):
            epsilon_intersecting_load(3, 1.5)


class TestKStalenessLoad:
    def test_matches_paper_formula(self):
        # load >= (1 - p)^(1/(2k)) / sqrt(N)
        assert k_staleness_load(n=3, p=0.1, k=2) == pytest.approx((0.9) ** 0.25 / sqrt(3))

    def test_k_of_one_case(self):
        assert k_staleness_load(n=4, p=0.04, k=1) == pytest.approx((0.96) ** 0.5 / 2.0)

    def test_bound_increases_with_k(self):
        # As printed in the paper, the k-tolerant bound approaches 1/sqrt(N)
        # from below as k grows.
        values = [k_staleness_load(n=3, p=0.5, k=k) for k in (1, 2, 5, 10, 100)]
        assert values == sorted(values)
        assert values[-1] < 1.0 / sqrt(3) + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            k_staleness_load(n=3, p=0.1, k=0)
        with pytest.raises(ConfigurationError):
            k_staleness_load(n=3, p=-0.1, k=1)


class TestMonotonicReadsLoad:
    def test_matches_exponent_c(self):
        # C = 1 + 4/2 = 3.
        expected = (1 - 0.2) ** (1.0 / 6.0) / sqrt(5)
        assert monotonic_reads_load(5, 0.2, 4.0, 2.0) == pytest.approx(expected)

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            monotonic_reads_load(3, 0.1, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            monotonic_reads_load(3, 0.1, 1.0, 0.0)


class TestCapacityAndModel:
    def test_capacity_is_reciprocal(self):
        assert capacity_from_load(0.25) == pytest.approx(4.0)
        with pytest.raises(ConfigurationError):
            capacity_from_load(0.0)

    def test_load_model_consistency(self):
        model = LoadModel(n=3, p=0.01)
        assert model.strict_load() == pytest.approx(epsilon_intersecting_load(3, 0.01))
        assert model.staleness_tolerant_load(4) == pytest.approx(k_staleness_load(3, 0.01, 4))

    def test_load_curve_shape(self):
        model = LoadModel(n=3, p=0.3)
        curve = model.load_curve(ks=(1, 2, 4))
        assert [k for k, _ in curve] == [1, 2, 4]
        loads = [load for _, load in curve]
        assert loads == sorted(loads)

    def test_capacity_improvement_at_least_checks_ratio(self):
        model = LoadModel(n=3, p=0.5)
        assert model.capacity_improvement(1) == pytest.approx(1.0)
        assert model.capacity_improvement(10) == pytest.approx(
            model.staleness_tolerant_load(1) / model.staleness_tolerant_load(10)
        )

    def test_invalid_model(self):
        with pytest.raises(ConfigurationError):
            LoadModel(n=0, p=0.1)
        with pytest.raises(ConfigurationError):
            LoadModel(n=3, p=2.0)
