"""Property-based tests for YCSB key generators and the skewed workload.

The scenario matrix leans on :class:`ZipfianKeys` (the ``zipfian-skew``
scenario's chooser) and :func:`skewed_validation_workload`, so their
contracts — exact Zipf frequency-rank slope, bounded support, and seed
determinism — are pinned here with hypothesis.
"""

from __future__ import annotations

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.workloads.keys import ZipfianKeys, key_name
from repro.workloads.operations import OperationKind
from repro.workloads.ycsb import skewed_validation_workload

_keyspaces = st.integers(min_value=1, max_value=64)
_thetas = st.floats(min_value=0.1, max_value=2.0, allow_nan=False, allow_infinity=False)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)
_offsets = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=5,
)


class TestZipfianFrequencyRankSlope:
    @given(keys=_keyspaces, theta=_thetas)
    def test_probabilities_sum_to_one_and_decrease_with_rank(self, keys, theta):
        chooser = ZipfianKeys(keys, theta=theta)
        probabilities = [chooser.probability_of_rank(rank) for rank in range(keys)]
        assert abs(sum(probabilities) - 1.0) < 1e-9
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    @given(keys=st.integers(min_value=2, max_value=64), theta=_thetas)
    def test_rank_probability_ratio_follows_power_law(self, keys, theta):
        chooser = ZipfianKeys(keys, theta=theta)
        # P(rank i) / P(rank j) == ((j + 1) / (i + 1)) ** theta exactly —
        # the normaliser cancels, leaving the pure Zipf slope.
        rng = np.random.default_rng(0)
        for _ in range(5):
            i, j = rng.integers(0, keys, size=2)
            expected = ((j + 1) / (i + 1)) ** theta
            ratio = chooser.probability_of_rank(int(i)) / chooser.probability_of_rank(int(j))
            assert ratio == pytest.approx(expected, rel=1e-9)

    @given(keys=st.integers(min_value=4, max_value=64), theta=_thetas)
    def test_log_log_slope_recovers_theta(self, keys, theta):
        chooser = ZipfianKeys(keys, theta=theta)
        ranks = np.arange(1, keys + 1, dtype=float)
        probabilities = np.array(
            [chooser.probability_of_rank(rank) for rank in range(keys)]
        )
        slope = np.polyfit(np.log(ranks), np.log(probabilities), 1)[0]
        assert slope == pytest.approx(-theta, rel=1e-6, abs=1e-6)

    def test_empirical_frequencies_match_exact_probabilities(self):
        chooser = ZipfianKeys(16, theta=0.99)
        samples = chooser.sample(20_000, rng=7)
        counts = collections.Counter(samples)
        for rank in range(4):
            empirical = counts[key_name(rank)] / len(samples)
            assert empirical == pytest.approx(
                chooser.probability_of_rank(rank), abs=0.02
            )


class TestZipfianSupportAndDeterminism:
    @given(keys=_keyspaces, theta=_thetas, seed=_seeds)
    @settings(max_examples=25, deadline=None)
    def test_samples_stay_inside_the_keyspace(self, keys, theta, seed):
        chooser = ZipfianKeys(keys, theta=theta)
        support = {key_name(index) for index in range(keys)}
        assert set(chooser.sample(50, rng=seed)) <= support

    @given(keys=_keyspaces, theta=_thetas, seed=_seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_sequence(self, keys, theta, seed):
        chooser = ZipfianKeys(keys, theta=theta)
        assert chooser.sample(50, rng=seed) == chooser.sample(50, rng=seed)

    @given(keys=_keyspaces, theta=_thetas)
    def test_invalid_rank_rejected(self, keys, theta):
        chooser = ZipfianKeys(keys, theta=theta)
        with pytest.raises(WorkloadError):
            chooser.probability_of_rank(-1)
        with pytest.raises(WorkloadError):
            chooser.probability_of_rank(keys)


class TestSkewedValidationWorkload:
    @given(
        keys=st.integers(min_value=1, max_value=16),
        writes=st.integers(min_value=1, max_value=20),
        interval=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
        offsets=_offsets,
        seed=_seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_shape_and_read_write_pairing(self, keys, writes, interval, offsets, seed):
        chooser = ZipfianKeys(keys, theta=0.99)
        operations = skewed_validation_workload(
            chooser, writes, interval, tuple(offsets), rng=seed
        )
        assert len(operations) == writes * (1 + len(offsets))
        starts = [operation.start_ms for operation in operations]
        assert starts == sorted(starts)

        write_ops = sorted(
            (op for op in operations if op.kind is OperationKind.WRITE),
            key=lambda op: op.start_ms,
        )
        assert len(write_ops) == writes
        assert [op.start_ms for op in write_ops] == [
            index * interval for index in range(writes)
        ]
        assert [op.value for op in write_ops] == [
            f"version-{index}" for index in range(writes)
        ]

        # One read per offset racing *its own* write's key.
        expected_reads = collections.Counter(
            (write.start_ms + float(offset), write.key)
            for write in write_ops
            for offset in offsets
        )
        actual_reads = collections.Counter(
            (op.start_ms, op.key)
            for op in operations
            if op.kind is OperationKind.READ
        )
        assert actual_reads == expected_reads

    @given(
        keys=st.integers(min_value=1, max_value=16),
        writes=st.integers(min_value=1, max_value=20),
        seed=_seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_deterministic_for_a_fixed_seed(self, keys, writes, seed):
        chooser = ZipfianKeys(keys, theta=0.99)
        first = skewed_validation_workload(chooser, writes, 10.0, (1.0, 5.0), rng=seed)
        second = skewed_validation_workload(chooser, writes, 10.0, (1.0, 5.0), rng=seed)
        assert first == second

    def test_key_choice_consumes_exactly_one_draw_per_write(self):
        chooser = ZipfianKeys(8, theta=0.99)
        rng = np.random.default_rng(11)
        expected_keys = [chooser.choose(rng) for _ in range(12)]
        operations = skewed_validation_workload(
            chooser, 12, 10.0, (1.0,), rng=np.random.default_rng(11)
        )
        write_keys = [
            op.key
            for op in sorted(operations, key=lambda op: (op.start_ms, op.kind.value))
            if op.kind is OperationKind.WRITE
        ]
        assert write_keys == expected_keys

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"writes": 0},
            {"write_interval_ms": 0.0},
            {"read_offsets_ms": ()},
            {"read_offsets_ms": (-1.0,)},
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        arguments = dict(
            keys=ZipfianKeys(4, theta=0.99),
            writes=5,
            write_interval_ms=10.0,
            read_offsets_ms=(1.0,),
        )
        arguments.update(kwargs)
        with pytest.raises(WorkloadError):
            skewed_validation_workload(**arguments)
