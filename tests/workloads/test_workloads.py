"""Unit tests for key choosers, arrival processes, operation mixes, and YCSB workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads.arrivals import BurstyArrivals, FixedIntervalArrivals, PoissonArrivals
from repro.workloads.keys import HotspotKeys, SingleKey, UniformKeys, ZipfianKeys, key_name
from repro.workloads.operations import (
    MixedWorkload,
    Operation,
    OperationKind,
    validation_workload,
)
from repro.workloads.ycsb import YCSB_MIXES, YCSBWorkload, ycsb_workload


class TestKeyChoosers:
    def test_key_name_format(self):
        assert key_name(7) == "key-00000007"
        with pytest.raises(WorkloadError):
            key_name(-1)

    def test_single_key_always_same(self, rng):
        chooser = SingleKey("hot-key")
        assert set(chooser.sample(100, rng)) == {"hot-key"}
        assert chooser.keyspace_size() == 1

    def test_uniform_covers_keyspace(self, rng):
        chooser = UniformKeys(keys=10)
        samples = chooser.sample(5_000, rng)
        assert len(set(samples)) == 10
        assert chooser.keyspace_size() == 10

    def test_uniform_rejects_empty_keyspace(self):
        with pytest.raises(WorkloadError):
            UniformKeys(keys=0)

    def test_zipfian_prefers_low_ranks(self, rng):
        chooser = ZipfianKeys(keys=100, theta=0.99)
        samples = chooser.sample(20_000, rng)
        hottest = samples.count(key_name(0))
        coldest = samples.count(key_name(99))
        assert hottest > coldest
        assert chooser.probability_of_rank(0) > chooser.probability_of_rank(99)

    def test_zipfian_probabilities_sum_to_one(self):
        chooser = ZipfianKeys(keys=50, theta=1.2)
        total = sum(chooser.probability_of_rank(rank) for rank in range(50))
        assert total == pytest.approx(1.0)

    def test_zipfian_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianKeys(keys=0)
        with pytest.raises(WorkloadError):
            ZipfianKeys(keys=10, theta=0.0)
        with pytest.raises(WorkloadError):
            ZipfianKeys(keys=10).probability_of_rank(10)

    def test_hotspot_concentrates_traffic(self, rng):
        chooser = HotspotKeys(keys=100, hot_fraction=0.1, hot_probability=0.9)
        samples = chooser.sample(20_000, rng)
        hot_keys = {key_name(i) for i in range(chooser.hot_keys)}
        hot_share = sum(1 for key in samples if key in hot_keys) / len(samples)
        assert hot_share > 0.85

    def test_hotspot_validation(self):
        with pytest.raises(WorkloadError):
            HotspotKeys(keys=10, hot_fraction=0.0)
        with pytest.raises(WorkloadError):
            HotspotKeys(keys=10, hot_probability=1.5)


class TestArrivalProcesses:
    def test_poisson_rate_and_horizon(self, rng):
        arrivals = PoissonArrivals.per_second(1_000.0)  # 1 op per ms
        times = arrivals.times(5_000.0, rng)
        assert len(times) == pytest.approx(5_000, rel=0.1)
        assert np.all(times < 5_000.0)
        assert np.all(np.diff(times) > 0)
        assert arrivals.mean_rate_per_ms() == pytest.approx(1.0)

    def test_poisson_validation(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(rate_per_ms=0.0)
        with pytest.raises(WorkloadError):
            PoissonArrivals(rate_per_ms=1.0).times(-1.0, np.random.default_rng(0))

    def test_fixed_interval_deterministic(self, rng):
        arrivals = FixedIntervalArrivals(interval_ms=25.0)
        times = arrivals.times(100.0, rng)
        assert list(times) == [0.0, 25.0, 50.0, 75.0]
        assert arrivals.mean_rate_per_ms() == pytest.approx(0.04)

    def test_fixed_interval_start_offset(self, rng):
        times = FixedIntervalArrivals(interval_ms=10.0).times(30.0, rng, start_ms=5.0)
        assert list(times) == [5.0, 15.0, 25.0]

    def test_bursty_rate_is_duty_cycled(self, rng):
        arrivals = BurstyArrivals(burst_rate_per_ms=1.0, burst_ms=100.0, idle_ms=100.0)
        times = arrivals.times(20_000.0, rng)
        assert arrivals.mean_rate_per_ms() == pytest.approx(0.5)
        # Long-run count should be near rate * horizon (loose bound; bursts are random).
        assert len(times) == pytest.approx(10_000, rel=0.25)

    def test_bursty_validation(self):
        with pytest.raises(WorkloadError):
            BurstyArrivals(burst_rate_per_ms=0.0, burst_ms=1.0, idle_ms=1.0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(burst_rate_per_ms=1.0, burst_ms=0.0, idle_ms=1.0)


class TestMixedWorkload:
    def test_read_fraction_respected(self, rng):
        workload = MixedWorkload(
            keys=UniformKeys(10),
            arrivals=FixedIntervalArrivals(interval_ms=1.0),
            read_fraction=0.7,
        )
        operations = workload.generate(horizon_ms=20_000.0, rng=rng)
        reads = sum(1 for op in operations if op.kind is OperationKind.READ)
        assert reads / len(operations) == pytest.approx(0.7, abs=0.03)

    def test_operations_sorted_by_time(self, rng):
        workload = MixedWorkload(
            keys=UniformKeys(5), arrivals=PoissonArrivals(rate_per_ms=0.5)
        )
        operations = workload.generate(horizon_ms=1_000.0, rng=rng)
        times = [op.start_ms for op in operations]
        assert times == sorted(times)

    def test_writes_have_values(self, rng):
        workload = MixedWorkload(
            keys=SingleKey(), arrivals=FixedIntervalArrivals(interval_ms=1.0), read_fraction=0.0
        )
        operations = workload.generate(horizon_ms=10.0, rng=rng)
        assert all(op.value is not None for op in operations)

    def test_invalid_read_fraction(self):
        with pytest.raises(WorkloadError):
            MixedWorkload(
                keys=SingleKey(),
                arrivals=FixedIntervalArrivals(interval_ms=1.0),
                read_fraction=1.5,
            )

    def test_operation_validation(self):
        with pytest.raises(WorkloadError):
            Operation(start_ms=-1.0, kind=OperationKind.READ, key="k")


class TestValidationWorkload:
    def test_structure_matches_parameters(self):
        operations = validation_workload(
            key="k", writes=3, write_interval_ms=100.0, read_offsets_ms=(1.0, 10.0)
        )
        writes = [op for op in operations if op.kind is OperationKind.WRITE]
        reads = [op for op in operations if op.kind is OperationKind.READ]
        assert len(writes) == 3 and len(reads) == 6
        assert [op.start_ms for op in writes] == [0.0, 100.0, 200.0]
        assert all(op.key == "k" for op in operations)

    def test_values_are_increasing_versions(self):
        operations = validation_workload(
            key="k", writes=2, write_interval_ms=50.0, read_offsets_ms=(5.0,)
        )
        writes = [op for op in operations if op.kind is OperationKind.WRITE]
        assert [op.value for op in writes] == ["version-0", "version-1"]

    def test_offsets_must_fit_within_interval(self):
        with pytest.raises(WorkloadError):
            validation_workload(
                key="k", writes=2, write_interval_ms=10.0, read_offsets_ms=(20.0,)
            )
        with pytest.raises(WorkloadError):
            validation_workload(key="k", writes=0, write_interval_ms=10.0, read_offsets_ms=(1.0,))
        with pytest.raises(WorkloadError):
            validation_workload(key="k", writes=2, write_interval_ms=10.0, read_offsets_ms=())


class TestYCSB:
    def test_known_mixes_sum_to_one(self):
        for name, (read, update, rmw) in YCSB_MIXES.items():
            assert read + update + rmw == pytest.approx(1.0), name

    def test_workload_a_mix(self, rng):
        workload = ycsb_workload("A", keyspace=100, rate_per_second=2_000.0)
        operations = workload.generate(horizon_ms=30_000.0, rng=rng)
        reads = sum(1 for op in operations if op.kind is OperationKind.READ)
        writes = sum(1 for op in operations if op.kind is OperationKind.WRITE)
        assert reads / (reads + writes) == pytest.approx(0.5, abs=0.05)

    def test_workload_c_is_read_only(self, rng):
        workload = ycsb_workload("C", keyspace=10, rate_per_second=1_000.0)
        operations = workload.generate(horizon_ms=5_000.0, rng=rng)
        assert all(op.kind is OperationKind.READ for op in operations)

    def test_workload_f_pairs_reads_with_writes(self, rng):
        workload = ycsb_workload("F", keyspace=10, rate_per_second=1_000.0)
        operations = workload.generate(horizon_ms=5_000.0, rng=rng)
        reads = sum(1 for op in operations if op.kind is OperationKind.READ)
        writes = sum(1 for op in operations if op.kind is OperationKind.WRITE)
        # Every RMW contributes one read and one write; plain reads add more reads.
        assert writes > 0
        assert reads >= writes

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            ycsb_workload("Z")

    def test_invalid_mix_rejected(self):
        with pytest.raises(WorkloadError):
            YCSBWorkload(
                name="bad",
                keys=UniformKeys(10),
                rate_per_second=100.0,
                read_fraction=0.5,
                update_fraction=0.1,
                rmw_fraction=0.1,
            )
        with pytest.raises(WorkloadError):
            YCSBWorkload(
                name="bad",
                keys=UniformKeys(10),
                rate_per_second=0.0,
                read_fraction=1.0,
                update_fraction=0.0,
                rmw_fraction=0.0,
            )
