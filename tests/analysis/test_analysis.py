"""Unit tests for the analysis package: statistics, staleness measurement, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.staleness import (
    StalenessObservation,
    consistency_by_time,
    k_staleness_fraction,
    measured_t_visibility,
    observe_staleness,
    operation_latencies,
    version_lags,
)
from repro.analysis.statistics import (
    binned_fraction,
    bootstrap_mean_interval,
    empirical_cdf,
)
from repro.analysis.tables import format_curve, format_kv, format_table
from repro.cluster.tracing import ReadTrace, TraceLog, WriteTrace
from repro.cluster.versioning import Version
from repro.exceptions import AnalysisError


def _write(op_id: int, timestamp: int, started: float, committed: float) -> WriteTrace:
    return WriteTrace(
        operation_id=op_id,
        key="k",
        version=Version(timestamp, "c"),
        coordinator="c",
        started_ms=started,
        committed_ms=committed,
    )


def _read(op_id: int, started: float, returned: Version | None, completed: float) -> ReadTrace:
    trace = ReadTrace(operation_id=op_id, key="k", coordinator="c", started_ms=started)
    trace.returned_version = returned
    trace.completed_ms = completed
    return trace


class TestStatisticsHelpers:
    def test_empirical_cdf(self):
        curve = empirical_cdf([1.0, 2.0, 3.0, 4.0], [0.5, 2.0, 10.0])
        assert curve == [(0.5, 0.0), (2.0, 0.5), (10.0, 1.0)]
        with pytest.raises(AnalysisError):
            empirical_cdf([], [1.0])

    def test_binned_fraction(self):
        series = binned_fraction(
            x_values=[0.5, 1.5, 1.6, 2.5],
            successes=[True, True, False, True],
            bin_edges=[0.0, 1.0, 2.0, 3.0],
        )
        assert series.fractions[0] == 1.0
        assert series.fractions[1] == pytest.approx(0.5)
        assert series.counts == (1, 2, 1)
        assert series.as_rows()[0]["bin_center"] == pytest.approx(0.5)

    def test_binned_fraction_empty_bin_is_nan(self):
        series = binned_fraction([0.5], [True], [0.0, 1.0, 2.0])
        assert np.isnan(series.fractions[1])

    def test_binned_fraction_validation(self):
        with pytest.raises(AnalysisError):
            binned_fraction([1.0], [True, False], [0.0, 1.0])
        with pytest.raises(AnalysisError):
            binned_fraction([1.0], [True], [1.0])

    def test_bootstrap_interval_contains_mean(self):
        mean, lower, upper = bootstrap_mean_interval([1.0, 2.0, 3.0, 4.0, 5.0], rng=0)
        assert lower <= mean <= upper
        with pytest.raises(AnalysisError):
            bootstrap_mean_interval([])


class TestObserveStaleness:
    def _trace_log(self) -> TraceLog:
        log = TraceLog()
        log.record_write(_write(1, 1, started=0.0, committed=5.0))
        log.record_write(_write(2, 2, started=100.0, committed=105.0))
        # Read at t=50: latest committed is v1; returns v1 -> consistent, lag 0.
        log.record_read(_read(10, 50.0, Version(1, "c"), 52.0))
        # Read at t=110: latest committed is v2; returns v1 -> stale, lag 1.
        log.record_read(_read(11, 110.0, Version(1, "c"), 112.0))
        # Read at t=120: returns v2 -> consistent.
        log.record_read(_read(12, 120.0, Version(2, "c"), 122.0))
        # Read at t=130: returns nothing -> stale by all committed versions.
        log.record_read(_read(13, 130.0, None, 132.0))
        return log

    def test_observations_and_lags(self):
        observations = observe_staleness(self._trace_log(), key="k")
        assert len(observations) == 4
        by_id = {obs.operation_id: obs for obs in observations}
        assert by_id[10].consistent and by_id[10].version_lag == 0
        assert not by_id[11].consistent and by_id[11].version_lag == 1
        assert by_id[12].consistent
        assert not by_id[13].consistent and by_id[13].version_lag == 2
        assert by_id[11].t_since_commit_ms == pytest.approx(5.0)

    def test_reads_before_any_commit_are_skipped(self):
        log = TraceLog()
        log.record_write(_write(1, 1, started=100.0, committed=105.0))
        log.record_read(_read(10, 50.0, None, 52.0))
        assert observe_staleness(log) == []

    def test_newer_than_committed_counts_as_consistent(self):
        log = TraceLog()
        log.record_write(_write(1, 1, started=0.0, committed=5.0))
        log.record_write(_write(2, 2, started=6.0, committed=50.0))
        # Read at t=10 returns the in-flight v2 (commits later at t=50).
        log.record_read(_read(10, 10.0, Version(2, "c"), 12.0))
        observations = observe_staleness(log)
        assert len(observations) == 1 and observations[0].consistent

    def test_aggregates(self):
        observations = observe_staleness(self._trace_log(), key="k")
        lags = version_lags(observations)
        assert sorted(lags.tolist()) == [0, 0, 1, 2]
        assert k_staleness_fraction(observations, 1) == pytest.approx(0.5)
        assert k_staleness_fraction(observations, 2) == pytest.approx(0.75)
        assert k_staleness_fraction(observations, 3) == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            k_staleness_fraction(observations, 0)

    def test_consistency_by_time_bins(self):
        observations = observe_staleness(self._trace_log(), key="k")
        series = consistency_by_time(observations, bin_edges=[0.0, 10.0, 30.0, 60.0])
        # Observed t values are 5 ms (read 11), 15 and 25 ms (reads 12-13), and
        # 45 ms (read 10), so the bins hold 1, 2, and 1 observations.
        assert series.counts == (1, 2, 1)
        with pytest.raises(AnalysisError):
            consistency_by_time([], bin_edges=[0.0, 1.0])

    def test_measured_t_visibility(self):
        observations = [
            StalenessObservation(1, "k", 1.0, False, 1),
            StalenessObservation(2, "k", 5.0, True, 0),
            StalenessObservation(3, "k", 10.0, True, 0),
            StalenessObservation(4, "k", 20.0, True, 0),
        ]
        assert measured_t_visibility(observations, 1.0) == pytest.approx(5.0)
        assert measured_t_visibility(observations, 0.5) == pytest.approx(1.0)
        assert measured_t_visibility(
            [StalenessObservation(1, "k", 3.0, False, 1)], 0.9
        ) == float("inf")
        with pytest.raises(AnalysisError):
            measured_t_visibility([], 0.9)
        with pytest.raises(AnalysisError):
            measured_t_visibility(observations, 1.5)

    def test_operation_latencies(self):
        log = self._trace_log()
        reads, writes = operation_latencies(log)
        assert len(reads) == 4 and len(writes) == 2
        assert np.all(reads == 2.0)
        assert np.all(writes == 5.0)
        with pytest.raises(AnalysisError):
            operation_latencies(TraceLog())


class TestTableRendering:
    def test_format_table_alignment_and_missing(self):
        text = format_table(
            [{"a": 1.23456, "b": "x"}, {"a": 2.0}], columns=["a", "b"], precision=2
        )
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "1.23" in lines[2]
        assert "-" in lines[3]  # missing value placeholder

    def test_format_table_handles_bool_nan_inf(self):
        text = format_table([{"ok": True, "x": float("nan"), "y": float("inf")}])
        assert "yes" in text and "inf" in text

    def test_format_table_empty_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([])

    def test_format_curve_and_kv(self):
        curve_text = format_curve([(0.0, 0.5), (1.0, 0.9)], title="curve")
        assert "curve" in curve_text and "t_ms" in curve_text
        kv_text = format_kv({"mean": 1.5, "label": "abc"}, title="stats")
        assert "stats" in kv_text and "mean" in kv_text
        with pytest.raises(AnalysisError):
            format_kv({})
