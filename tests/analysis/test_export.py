"""Unit tests for CSV/JSON export of experiment results."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.export import export_result, load_rows_json, rows_to_csv, rows_to_json
from repro.exceptions import AnalysisError
from repro.experiments.registry import ExperimentResult


@pytest.fixture
def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="sample",
        title="A sample",
        paper_artifact="Table X",
        rows=[
            {"config": "N=3 R=1 W=1", "p": 0.5, "strict": False},
            {"config": "N=3 R=2 W=2", "p": 1.0, "strict": True, "extra": "only-here"},
        ],
        notes=("a note",),
    )


class TestRowsToCsv:
    def test_writes_union_of_columns(self, tmp_path, sample_result):
        path = rows_to_csv(sample_result.rows, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["config"] == "N=3 R=1 W=1"
        assert rows[0]["extra"] == ""
        assert rows[1]["extra"] == "only-here"

    def test_creates_parent_directories(self, tmp_path, sample_result):
        path = rows_to_csv(sample_result.rows, tmp_path / "nested" / "dir" / "out.csv")
        assert path.exists()

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            rows_to_csv([], tmp_path / "out.csv")


class TestRowsToJson:
    def test_round_trip(self, tmp_path, sample_result):
        path = rows_to_json(sample_result.rows, tmp_path / "out.json", metadata={"k": "v"})
        payload = json.loads(path.read_text())
        assert payload["metadata"] == {"k": "v"}
        assert load_rows_json(path)[0]["config"] == "N=3 R=1 W=1"

    def test_non_primitive_values_stringified(self, tmp_path):
        path = rows_to_json([{"value": object()}], tmp_path / "out.json")
        rows = load_rows_json(path)
        assert isinstance(rows[0]["value"], str)

    def test_load_missing_or_malformed(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_rows_json(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not_rows": []}))
        with pytest.raises(AnalysisError):
            load_rows_json(bad)


class TestExportResult:
    def test_writes_both_formats(self, tmp_path, sample_result):
        written = export_result(sample_result, tmp_path)
        names = {path.name for path in written}
        assert names == {"sample.csv", "sample.json"}
        payload = json.loads((tmp_path / "sample.json").read_text())
        assert payload["metadata"]["paper_artifact"] == "Table X"
        assert payload["metadata"]["notes"] == ["a note"]

    def test_single_format(self, tmp_path, sample_result):
        written = export_result(sample_result, tmp_path, formats=("csv",))
        assert [path.suffix for path in written] == [".csv"]

    def test_unknown_format_rejected(self, tmp_path, sample_result):
        with pytest.raises(AnalysisError):
            export_result(sample_result, tmp_path, formats=("parquet",))
        with pytest.raises(AnalysisError):
            export_result(sample_result, tmp_path, formats=())


class TestCliExport:
    def test_run_with_export_writes_files(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "section3-kstaleness", "--export", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "exported:" in output
        assert (tmp_path / "section3-kstaleness.csv").exists()
        assert (tmp_path / "section3-kstaleness.json").exists()
