"""Property tests for the vectorized analysis primitives.

Two oracles, kept verbatim in this file, pin the vectorized code:

* a brute-force ``O(len(prefixes) * max(prefixes))`` scan for
  :func:`repro.analysis.windows.prefix_dominance_counts` (the dyadic merge
  tree behind the columnar version-lag computation);
* the pre-vectorization Python loop for
  :func:`repro.analysis.staleness.measured_t_visibility`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.staleness import StalenessObservation, measured_t_visibility
from repro.analysis.windows import prefix_dominance_counts
from repro.exceptions import AnalysisError


def _brute_force_dominance(values, prefixes, thresholds):
    return np.array(
        [
            int(np.sum(np.asarray(values[:prefix]) <= threshold))
            for prefix, threshold in zip(prefixes, thresholds)
        ],
        dtype=np.int64,
    )


class TestPrefixDominanceCounts:
    @given(
        values=st.lists(st.integers(-50, 50), max_size=64),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, values, data):
        queries = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, len(values)),  # prefix length
                    st.integers(-60, 60),  # threshold value
                ),
                max_size=32,
            )
        )
        prefixes = np.array([q[0] for q in queries], dtype=np.int64)
        thresholds = np.array([q[1] for q in queries], dtype=np.int64)
        got = prefix_dominance_counts(
            np.array(values, dtype=np.int64), prefixes, thresholds
        )
        expected = _brute_force_dominance(values, prefixes, thresholds)
        assert np.array_equal(got, expected)

    def test_duplicates_count_individually(self):
        values = np.array([5, 5, 5, 2], dtype=np.int64)
        got = prefix_dominance_counts(
            values,
            np.array([4, 3, 2, 0], dtype=np.int64),
            np.array([5, 4, 5, 100], dtype=np.int64),
        )
        assert got.tolist() == [4, 0, 2, 0]

    def test_threshold_below_all_values(self):
        values = np.array([3, 1, 2], dtype=np.int64)
        got = prefix_dominance_counts(
            values, np.array([3], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        assert got.tolist() == [0]

    def test_mismatched_query_shapes_rejected(self):
        with pytest.raises(AnalysisError):
            prefix_dominance_counts(
                np.array([1], dtype=np.int64),
                np.array([1, 1], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )

    def test_out_of_range_prefix_rejected(self):
        with pytest.raises(AnalysisError):
            prefix_dominance_counts(
                np.array([1], dtype=np.int64),
                np.array([2], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )

    def test_empty_queries(self):
        got = prefix_dominance_counts(
            np.array([1, 2], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        )
        assert got.shape == (0,)


def _loop_measured_t_visibility(observations, target_probability):
    """The pre-vectorization implementation, kept verbatim as the oracle."""
    ordered = sorted(observations, key=lambda obs: obs.t_since_commit_ms)
    consistent_flags = np.array([obs.consistent for obs in ordered], dtype=float)
    suffix_fraction = np.cumsum(consistent_flags[::-1])[::-1] / np.arange(
        len(ordered), 0, -1
    )
    for observation, fraction in zip(ordered, suffix_fraction):
        if fraction >= target_probability:
            return observation.t_since_commit_ms
    return float("inf")


def _observation(index: int, t_ms: float, consistent: bool) -> StalenessObservation:
    return StalenessObservation(
        operation_id=index,
        key="k",
        t_since_commit_ms=t_ms,
        consistent=consistent,
        version_lag=0 if consistent else 1,
    )


class TestMeasuredTVisibilityProperty:
    @given(
        rows=st.lists(
            st.tuples(
                st.floats(0.0, 500.0, allow_nan=False, width=32),
                st.booleans(),
            ),
            min_size=1,
            max_size=80,
        ),
        target=st.floats(0.01, 1.0, allow_nan=False),
    )
    @settings(max_examples=300, deadline=None)
    def test_vectorized_matches_loop_oracle(self, rows, target):
        observations = [
            _observation(index, float(t_ms), consistent)
            for index, (t_ms, consistent) in enumerate(rows)
        ]
        assert measured_t_visibility(observations, target) == _loop_measured_t_visibility(
            observations, target
        )

    def test_duplicate_times_resolve_like_the_stable_sort(self):
        # Equal t values with mixed consistency: the stable argsort must pick
        # the same representative observation as Python's stable sorted().
        observations = [
            _observation(0, 10.0, False),
            _observation(1, 10.0, True),
            _observation(2, 10.0, True),
        ]
        for target in (0.5, 0.6, 1.0):
            assert measured_t_visibility(observations, target) == (
                _loop_measured_t_visibility(observations, target)
            )

    def test_unreachable_target_returns_inf(self):
        observations = [_observation(0, 1.0, False)]
        assert measured_t_visibility(observations, 0.9) == float("inf")

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            measured_t_visibility([], 0.9)
        with pytest.raises(AnalysisError):
            measured_t_visibility([_observation(0, 1.0, True)], 0.0)
        with pytest.raises(AnalysisError):
            measured_t_visibility([_observation(0, 1.0, True)], 1.5)
