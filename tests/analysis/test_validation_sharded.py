"""Tests for sharded §5.2 validation runs and the fast staleness analysis.

Mirrors the PR 2/PR 4 methodology: block-sharded results must be bit-for-bit
identical for any worker count, the batched sampler must be statistically
equivalent to the legacy per-draw path, and the O((R+W) log W)
``observe_staleness`` must reproduce the naive quadratic scan exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.staleness import StalenessObservation, observe_staleness
from repro.analysis.validation import (
    VALIDATION_BLOCK_WRITES,
    _block_sizes,
    run_validation,
)
from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import AnalysisError
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload

CONFIG = ReplicaConfig(n=3, r=1, w=1)


def _distributions() -> WARSDistributions:
    return WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(10.0),
    )


def _run(writes: int = 400, **kwargs):
    return run_validation(
        distributions=_distributions(),
        config=CONFIG,
        writes=writes,
        prediction_trials=20_000,
        rng=kwargs.pop("rng", 7),
        **kwargs,
    )


class TestBlockStructure:
    def test_paper_scale_splits_into_default_blocks(self):
        assert _block_sizes(50_000, VALIDATION_BLOCK_WRITES) == [5_000] * 10

    def test_remainder_becomes_tail_block(self):
        assert _block_sizes(12_000, 5_000) == [5_000, 5_000, 2_000]

    def test_tiny_tail_merges_into_previous_block(self):
        assert _block_sizes(5_009, 5_000) == [5_009]

    def test_single_block_workloads(self):
        assert _block_sizes(400, 5_000) == [400]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(AnalysisError):
            _run(workers=0)
        with pytest.raises(AnalysisError):
            _run(block_writes=5)
        with pytest.raises(AnalysisError):
            _run(writes=5)


class TestWorkerInvariance:
    def test_results_identical_for_any_worker_count(self, workers):
        serial = _run(writes=360, workers=1, block_writes=120)
        sharded = _run(writes=360, workers=workers, block_writes=120)
        assert serial == sharded

    def test_blocked_path_is_deterministic_across_calls(self):
        assert _run(writes=240, workers=1, block_writes=80) == _run(
            writes=240, workers=1, block_writes=80
        )

    def test_generator_rng_is_deterministic_given_state(self):
        first = _run(writes=240, workers=1, block_writes=80, rng=np.random.default_rng(3))
        second = _run(writes=240, workers=1, block_writes=80, rng=np.random.default_rng(3))
        assert first == second

    def test_block_structure_changes_results_but_not_quality(self):
        # Different block sizes are different (but equally valid) experiments.
        coarse = _run(writes=240, workers=1, block_writes=240)
        fine = _run(writes=240, workers=1, block_writes=80)
        assert coarse != fine
        # Block boundaries skip a handful of before-first-commit reads, so
        # counts differ by at most a few reads per extra block.
        assert abs(coarse.observations - fine.observations) <= 8 * 3
        assert abs(coarse.consistency_rmse - fine.consistency_rmse) < 0.05


class TestStatisticalEquivalence:
    """Batched draws vs the legacy per-draw stream (PR 4 methodology)."""

    def test_batched_and_per_draw_paths_within_validation_tolerance(self):
        batched = _run(writes=500)
        per_draw = _run(writes=500, draw_batch_size=1)
        # Both must clear the long-standing integration tolerance...
        assert batched.consistency_rmse < 0.06
        assert per_draw.consistency_rmse < 0.06
        # ...and agree with each other about the measured experiment (the
        # streams differ, so a few before-first-commit reads may shift).
        assert abs(batched.observations - per_draw.observations) <= 8
        assert batched.read_latency_nrmse < 0.06
        assert per_draw.read_latency_nrmse < 0.06

    def test_sharded_path_within_validation_tolerance(self):
        sharded = _run(writes=600, workers=2, block_writes=200)
        assert sharded.consistency_rmse < 0.06
        assert sharded.read_latency_nrmse < 0.06
        assert sharded.write_latency_nrmse < 0.10
        assert sharded.observations > 4_000


def _naive_observe_staleness(trace_log, key=None) -> list[StalenessObservation]:
    """The pre-overhaul quadratic reference implementation, kept verbatim."""
    observations = []
    for read in trace_log.completed_reads(key):
        committed = [
            write
            for write in trace_log.committed_writes(read.key)
            if write.committed_ms <= read.started_ms
        ]
        if not committed:
            continue
        latest = max(committed, key=lambda write: write.version)
        t_since_commit = read.started_ms - latest.committed_ms
        returned = read.returned_version
        consistent = returned is not None and returned >= latest.version
        if consistent:
            lag = 0
        elif returned is None:
            lag = len(committed)
        else:
            lag = sum(1 for write in committed if write.version > returned)
        observations.append(
            StalenessObservation(
                operation_id=read.operation_id,
                key=read.key,
                t_since_commit_ms=float(t_since_commit),
                consistent=consistent,
                version_lag=lag,
            )
        )
    return observations


@pytest.mark.parametrize("trace_backend", ["columnar", "object"])
class TestFastStalenessAnalysis:
    def _traced_cluster(
        self, loss: float = 0.0, keys: int = 1, trace_backend: str = "columnar"
    ) -> DynamoCluster:
        cluster = DynamoCluster(
            config=CONFIG,
            distributions=_distributions(),
            rng=11,
            loss_probability=loss,
            trace_backend=trace_backend,
        )
        runner = WorkloadRunner(cluster)
        operations = []
        for index in range(keys):
            operations.extend(
                validation_workload(
                    key=f"k{index}",
                    writes=60,
                    write_interval_ms=100.0,
                    read_offsets_ms=(1.0, 5.0, 20.0, 60.0),
                )
            )
        runner.run(operations)
        return cluster

    def test_matches_naive_reference_single_key(self, trace_backend):
        log = self._traced_cluster(trace_backend=trace_backend).trace_log
        assert observe_staleness(log, key="k0") == _naive_observe_staleness(log, key="k0")

    def test_matches_naive_reference_multi_key_all_keys(self, trace_backend):
        log = self._traced_cluster(keys=3, trace_backend=trace_backend).trace_log
        assert observe_staleness(log) == _naive_observe_staleness(log)

    def test_matches_naive_reference_under_message_loss(self, trace_backend):
        # Loss produces stale reads, empty reads, and version lags > 0 —
        # exactly the branches where the Fenwick bookkeeping could diverge.
        log = self._traced_cluster(loss=0.25, trace_backend=trace_backend).trace_log
        fast = observe_staleness(log, key="k0")
        naive = _naive_observe_staleness(log, key="k0")
        assert fast == naive
        assert any(not obs.consistent for obs in fast)
        assert any(obs.version_lag > 1 for obs in fast)

    def test_empty_log_returns_empty(self, trace_backend):
        from repro.cluster.tracelog import ColumnarTraceLog
        from repro.cluster.tracing import TraceLog

        log = ColumnarTraceLog() if trace_backend == "columnar" else TraceLog()
        assert observe_staleness(log) == []


class TestStalenessMethodDispatch:
    def _log(self, trace_backend: str = "columnar", loss: float = 0.25):
        cluster = DynamoCluster(
            config=CONFIG,
            distributions=_distributions(),
            rng=11,
            loss_probability=loss,
            trace_backend=trace_backend,
        )
        WorkloadRunner(cluster).run(
            validation_workload(
                key="k0", writes=60, write_interval_ms=100.0,
                read_offsets_ms=(1.0, 5.0, 20.0, 60.0),
            )
        )
        return cluster.trace_log

    def test_columnar_and_fenwick_methods_agree_exactly(self):
        log = self._log()
        columnar = observe_staleness(log, method="columnar")
        fenwick = observe_staleness(log, method="fenwick")
        assert columnar == fenwick
        assert any(not obs.consistent for obs in columnar)

    def test_fenwick_oracle_runs_on_both_backends(self):
        columnar_log = self._log("columnar")
        object_log = self._log("object")
        columnar_obs = observe_staleness(columnar_log, method="fenwick")
        object_obs = observe_staleness(object_log, method="fenwick")
        # Operation ids are process-global; compare everything but the id.
        strip = lambda obs: [
            (o.key, o.t_since_commit_ms, o.consistent, o.version_lag) for o in obs
        ]
        assert strip(columnar_obs) == strip(object_obs)

    def test_columnar_method_rejected_on_object_backend(self):
        with pytest.raises(AnalysisError):
            observe_staleness(self._log("object"), method="columnar")

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            observe_staleness(self._log(), method="quadratic")
