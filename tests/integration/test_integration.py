"""Integration tests spanning the cluster substrate, the analytical models, and analysis.

These are the end-to-end checks that make the §5.2 validation trustworthy:
the discrete-event store, driven by generated workloads, must agree with the
closed-form and Monte Carlo predictions that consume the same latency model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.staleness import (
    k_staleness_fraction,
    measured_t_visibility,
    observe_staleness,
)
from repro.analysis.validation import run_validation
from repro.cluster.client import ClientSession, WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.kstaleness import consistency_probability
from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions, lnkd_ssd
from repro.workloads.keys import UniformKeys
from repro.workloads.operations import MixedWorkload, validation_workload
from repro.workloads.arrivals import PoissonArrivals


def exponential_wars(write_mean: float, other_mean: float) -> WARSDistributions:
    return WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(write_mean),
        other=ExponentialLatency.from_mean(other_mean),
    )


class TestClusterAgreesWithWARS:
    def test_measured_staleness_tracks_prediction(self):
        """The §5.2 validation: measured and predicted consistency curves agree."""
        result = run_validation(
            distributions=exponential_wars(10.0, 2.0),
            config=ReplicaConfig(3, 1, 1),
            writes=400,
            write_interval_ms=150.0,
            read_offsets_ms=(1.0, 5.0, 10.0, 20.0, 40.0, 80.0),
            prediction_trials=60_000,
            rng=0,
        )
        assert result.observations > 1_000
        assert result.consistency_rmse < 0.06
        assert result.read_latency_nrmse < 0.10
        assert result.write_latency_nrmse < 0.12

    def test_strict_quorum_cluster_never_returns_stale_data(self):
        cluster = DynamoCluster(ReplicaConfig(3, 2, 2), exponential_wars(20.0, 1.0), rng=3)
        operations = validation_workload(
            key="k", writes=100, write_interval_ms=100.0, read_offsets_ms=(1.0, 10.0)
        )
        WorkloadRunner(cluster).run(operations)
        observations = observe_staleness(cluster.trace_log, key="k")
        assert observations
        assert all(obs.consistent for obs in observations)

    def test_partial_quorum_k_staleness_respects_closed_form_bound(self):
        """Measured k-staleness is at least the non-expanding closed-form bound.

        The closed form assumes no write propagation, so the real (expanding)
        cluster must do at least as well for every k.
        """
        config = ReplicaConfig(3, 1, 1)
        # Very slow writes and fast reads maximise observable staleness.
        distributions = WARSDistributions(
            w=ExponentialLatency.from_mean(200.0),
            a=ConstantLatency(0.1),
            r=ConstantLatency(0.1),
            s=ConstantLatency(0.1),
        )
        cluster = DynamoCluster(config, distributions, rng=11)
        operations = validation_workload(
            key="k", writes=300, write_interval_ms=20.0, read_offsets_ms=(1.0,)
        )
        WorkloadRunner(cluster).run(operations)
        observations = observe_staleness(cluster.trace_log, key="k")
        assert len(observations) > 200
        for k in (1, 2, 3, 5):
            assert k_staleness_fraction(observations, k) >= (
                consistency_probability(config, k) - 0.08
            )

    def test_measured_t_visibility_finite_for_partial_quorums(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), exponential_wars(10.0, 1.0), rng=5)
        operations = validation_workload(
            key="k", writes=300, write_interval_ms=100.0, read_offsets_ms=(1.0, 5.0, 20.0, 60.0)
        )
        WorkloadRunner(cluster).run(operations)
        observations = observe_staleness(cluster.trace_log, key="k")
        t90 = measured_t_visibility(observations, 0.90)
        assert np.isfinite(t90)
        assert t90 < 200.0


class TestReadRepairAblation:
    def test_read_repair_reduces_staleness(self):
        """Enabling read repair (extra anti-entropy) can only help consistency."""
        config = ReplicaConfig(3, 1, 1)
        distributions = WARSDistributions(
            w=ExponentialLatency.from_mean(100.0),
            a=ConstantLatency(0.5),
            r=ConstantLatency(0.5),
            s=ConstantLatency(0.5),
        )
        operations = validation_workload(
            key="k", writes=250, write_interval_ms=50.0, read_offsets_ms=(1.0, 10.0, 25.0)
        )

        def staleness_rate(read_repair: bool) -> float:
            cluster = DynamoCluster(
                config, distributions, read_repair=read_repair, rng=21
            )
            WorkloadRunner(cluster).run(list(operations))
            observations = observe_staleness(cluster.trace_log, key="k")
            return 1.0 - float(np.mean([obs.consistent for obs in observations]))

        without_repair = staleness_rate(False)
        with_repair = staleness_rate(True)
        assert without_repair > 0.0
        assert with_repair <= without_repair + 0.02


class TestMultiKeyWorkloads:
    def test_mixed_workload_across_many_keys(self):
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 1), lnkd_ssd(), node_count=5, coordinator_count=2, rng=2
        )
        workload = MixedWorkload(
            keys=UniformKeys(50),
            arrivals=PoissonArrivals(rate_per_ms=0.2),
            read_fraction=0.6,
        )
        operations = workload.generate(horizon_ms=5_000.0, rng=9)
        WorkloadRunner(cluster).run(operations)
        completed_reads = cluster.trace_log.completed_reads()
        committed_writes = cluster.trace_log.committed_writes()
        assert len(committed_writes) > 100
        assert len(completed_reads) > 100
        # Every committed write eventually reaches all of its replicas.
        cluster.run()
        sampled = committed_writes[:: max(1, len(committed_writes) // 20)]
        for write in sampled:
            replicas = cluster.replicas_for(write.key)
            newest = max(
                (w.version for w in committed_writes if w.key == write.key),
            )
            for node in replicas:
                assert node.version_of(write.key) is not None
                assert node.version_of(write.key) >= newest

    def test_client_sessions_see_better_guarantees_with_strict_quorums(self):
        distributions = exponential_wars(20.0, 1.0)
        partial_cluster = DynamoCluster(ReplicaConfig(3, 1, 1), distributions, rng=31)
        strict_cluster = DynamoCluster(ReplicaConfig(3, 2, 2), distributions, rng=31)
        partial_session = ClientSession(partial_cluster, "user")
        strict_session = ClientSession(strict_cluster, "user")
        for index in range(50):
            partial_session.write("k", index)
            partial_session.read("k")
            strict_session.write("k", index)
            strict_session.read("k")
        assert strict_session.stats.read_your_writes_violations == 0
        assert (
            partial_session.stats.read_your_writes_violations
            >= strict_session.stats.read_your_writes_violations
        )


class TestValidationGridMatchesPerCellRuns:
    def test_grid_rows_reproduce_independent_cell_runs(self):
        """``run_validation_grid`` is exactly the per-cell ``run_validation``
        loop: one shared generator, one root-entropy draw per cell, cells
        visited in configs × W × A=R=S order.  Replaying that protocol by
        hand must reproduce every row bit-for-bit."""
        from repro.experiments.validation import (
            VALIDATION_ARS_MEANS_MS,
            VALIDATION_CONFIGS,
            VALIDATION_W_MEANS_MS,
            run_validation_grid,
        )

        trials, prediction_trials, seed = 60, 3_000, 5
        grid = run_validation_grid(
            trials=trials, rng=seed, prediction_trials=prediction_trials
        )
        assert len(grid.rows) == (
            len(VALIDATION_CONFIGS)
            * len(VALIDATION_W_MEANS_MS)
            * len(VALIDATION_ARS_MEANS_MS)
        )

        generator = np.random.default_rng(seed)
        row_iter = iter(grid.rows)
        for config in VALIDATION_CONFIGS:
            for w_mean in VALIDATION_W_MEANS_MS:
                for ars_mean in VALIDATION_ARS_MEANS_MS:
                    cell = run_validation(
                        distributions=exponential_wars(w_mean, ars_mean),
                        config=config,
                        writes=trials,
                        write_interval_ms=max(10.0 * w_mean, 100.0),
                        read_offsets_ms=(1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0),
                        prediction_trials=prediction_trials,
                        rng=generator,
                    )
                    row = next(row_iter)
                    assert (row["n"], row["r"], row["w"]) == (config.n, config.r, config.w)
                    assert (row["w_mean_ms"], row["ars_mean_ms"]) == (w_mean, ars_mean)
                    assert row["observations"] == cell.observations
                    assert row["consistency_rmse_pct"] == cell.consistency_rmse * 100.0
                    assert row["read_latency_nrmse_pct"] == cell.read_latency_nrmse * 100.0
                    assert row["write_latency_nrmse_pct"] == cell.write_latency_nrmse * 100.0


    def test_grid_rows_identical_for_both_trace_backends(self):
        """The 27-cell fast grid run on the object trace backend reproduces
        the default (columnar) grid bit-for-bit: trace storage must never
        change an experiment's numbers."""
        from repro.experiments.validation import run_validation_grid

        trials, prediction_trials, seed = 60, 3_000, 5
        columnar = run_validation_grid(
            trials=trials, rng=seed, prediction_trials=prediction_trials
        )
        objects = run_validation_grid(
            trials=trials,
            rng=seed,
            prediction_trials=prediction_trials,
            trace_backend="object",
        )
        assert len(columnar.rows) == 27
        assert objects.rows == columnar.rows

    @pytest.mark.slow
    def test_grid_matches_per_cell_runs_at_5k_writes(self):
        """The same grid-vs-cell replay at 5,000 writes per cell (sharded):
        the full §5.2 grid in one call equals 27 independent cell runs."""
        import os

        from repro.experiments.validation import (
            VALIDATION_ARS_MEANS_MS,
            VALIDATION_CONFIGS,
            VALIDATION_W_MEANS_MS,
            run_validation_grid,
        )

        trials, prediction_trials, seed = 5_000, 20_000, 0
        workers = min(4, os.cpu_count() or 1)
        grid = run_validation_grid(
            trials=trials,
            rng=seed,
            prediction_trials=prediction_trials,
            workers=workers,
        )
        generator = np.random.default_rng(seed)
        row_iter = iter(grid.rows)
        for config in VALIDATION_CONFIGS:
            for w_mean in VALIDATION_W_MEANS_MS:
                for ars_mean in VALIDATION_ARS_MEANS_MS:
                    cell = run_validation(
                        distributions=exponential_wars(w_mean, ars_mean),
                        config=config,
                        writes=trials,
                        write_interval_ms=max(10.0 * w_mean, 100.0),
                        read_offsets_ms=(1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0),
                        prediction_trials=prediction_trials,
                        rng=generator,
                        workers=workers,
                    )
                    row = next(row_iter)
                    assert row["observations"] == cell.observations
                    assert row["consistency_rmse_pct"] == cell.consistency_rmse * 100.0
                    # At 5k writes every cell should already be inside a few
                    # percent of the prediction.
                    assert row["consistency_rmse_pct"] < 4.0


class TestPredictorEndToEnd:
    def test_predictor_report_matches_direct_wars_run(self):
        # Passing generators in the same state selects the sweep engine's
        # sequential mode, which reproduces the kernel's trials exactly (an
        # integer seed would instead select the chunk-size-invariant seeded
        # mode, whose stream legitimately differs from the kernel's).
        config = ReplicaConfig(3, 2, 1)
        distributions = lnkd_ssd()
        from repro.core.predictor import PBSPredictor

        report = PBSPredictor(distributions, config).report(
            trials=30_000, rng=np.random.default_rng(7)
        )
        direct = WARSModel(distributions, config).sample(30_000, np.random.default_rng(7))
        assert report.consistency_at_commit == pytest.approx(
            direct.probability_never_stale(), abs=1e-12
        )
        assert report.t_visibility_999 == pytest.approx(direct.t_visibility(0.999), rel=0.02)
