"""Unit tests for fault plans (specs) and their per-cluster runtimes.

The load-bearing contract: modulation is pure arithmetic on already-drawn
delay values — a fault plan never consumes or reorders generator draws, so
modulated runs keep the exact draw accounting of unmodulated ones (the
property suite in tests/property/test_property_faults.py pins this across
random plans; here we pin the mechanics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.faults.plan import BurstProcess, FaultPlan, GrayFailure
from repro.faults.runtime import FaultRuntime
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload


class _Clock:
    """Stand-in for the simulator clock: tests set ``now_ms`` directly."""

    def __init__(self, now_ms: float = 0.0) -> None:
        self.now_ms = now_ms


def benign() -> WARSDistributions:
    return WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(20.0),
        other=ExponentialLatency.from_mean(10.0),
    )


class TestGrayFailureSpec:
    def test_rejects_bad_multipliers(self):
        with pytest.raises(ConfigurationError):
            GrayFailure(multiplier=0.0)
        with pytest.raises(ConfigurationError):
            GrayFailure(multiplier=float("inf"))
        with pytest.raises(ConfigurationError):
            GrayFailure(tail_threshold_ms=10.0, tail_multiplier=-1.0)

    def test_rejects_bad_schedules(self):
        with pytest.raises(ConfigurationError):
            GrayFailure(start_ms=-1.0)
        with pytest.raises(ConfigurationError):
            GrayFailure(period_ms=100.0)  # periodic needs a finite duration
        with pytest.raises(ConfigurationError):
            GrayFailure(duration_ms=200.0, period_ms=100.0)  # period < duration

    def test_open_ended_window(self):
        gray = GrayFailure(start_ms=100.0)
        assert not gray.active_at(99.9)
        assert gray.active_at(100.0)
        assert gray.active_at(1e9)

    def test_bounded_window(self):
        gray = GrayFailure(start_ms=100.0, duration_ms=50.0)
        assert gray.active_at(100.0)
        assert gray.active_at(149.9)
        assert not gray.active_at(150.0)

    def test_periodic_window_repeats(self):
        gray = GrayFailure(start_ms=100.0, duration_ms=50.0, period_ms=200.0)
        for base in (100.0, 300.0, 500.0):
            assert gray.active_at(base + 10.0)
            assert not gray.active_at(base + 60.0)


class TestBurstProcessSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BurstProcess(on_multiplier=0.0)
        with pytest.raises(ConfigurationError):
            BurstProcess(mean_on_ms=0.0)
        with pytest.raises(ConfigurationError):
            BurstProcess(mean_off_ms=-1.0)


class TestFaultPlanSpec:
    def test_rejects_empty_plan(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(name="empty")

    def test_describe_mentions_components(self):
        plan = FaultPlan(
            name="both",
            gray_failures=(GrayFailure(multiplier=2.0),),
            bursts=(BurstProcess(),),
        )
        text = plan.describe()
        assert "gray" in text and "burst" in text


class TestFaultRuntime:
    def test_gray_multiplier_applies_only_inside_window(self):
        plan = FaultPlan(
            name="g",
            gray_failures=(GrayFailure(multiplier=3.0, start_ms=100.0, duration_ms=50.0),),
        )
        clock = _Clock(0.0)
        runtime = FaultRuntime(plan, clock)
        assert runtime.modulate("W", "node-1", 10.0) == 10.0
        clock.now_ms = 120.0
        assert runtime.modulate("W", "node-1", 10.0) == 30.0
        clock.now_ms = 200.0
        assert runtime.modulate("W", "node-1", 10.0) == 10.0

    def test_gray_targets_only_listed_nodes_and_legs(self):
        plan = FaultPlan(
            name="g",
            gray_failures=(
                GrayFailure(nodes=("node-2",), legs=("W",), multiplier=4.0),
            ),
        )
        runtime = FaultRuntime(plan, _Clock(10.0))
        assert runtime.modulate("W", "node-2", 5.0) == 20.0
        assert runtime.modulate("W", "node-1", 5.0) == 5.0
        assert runtime.modulate("A", "node-2", 5.0) == 5.0

    def test_tail_inflation_uses_pre_multiplied_value(self):
        plan = FaultPlan(
            name="g",
            gray_failures=(
                GrayFailure(multiplier=2.0, tail_threshold_ms=40.0, tail_multiplier=3.0),
            ),
        )
        runtime = FaultRuntime(plan, _Clock(0.0))
        # Below the threshold: only the base multiplier.
        assert runtime.modulate("W", "n", 30.0) == 60.0
        # Above it: both multipliers compound.
        assert runtime.modulate("W", "n", 50.0) == 300.0

    def test_burst_epochs_are_seeded_and_deterministic(self):
        plan = FaultPlan(name="b", bursts=(BurstProcess(seed=7, on_multiplier=5.0),))
        probes = [float(t) for t in range(0, 60_000, 500)]
        runs = []
        for _ in range(2):
            clock = _Clock(0.0)
            runtime = FaultRuntime(plan, clock)
            values = []
            for t in probes:
                clock.now_ms = t
                values.append(runtime.modulate("W", "n", 1.0))
            runs.append(values)
        assert runs[0] == runs[1]
        assert set(runs[0]) == {1.0, 5.0}  # both epochs visited

    def test_modulated_draws_counter(self):
        plan = FaultPlan(name="g", gray_failures=(GrayFailure(multiplier=2.0),))
        runtime = FaultRuntime(plan, _Clock(0.0))
        runtime.modulate("W", "n", 1.0)
        runtime.modulate("A", "n", 1.0)
        assert runtime.modulated_draws == 2


class TestClusterIntegration:
    PLAN = FaultPlan(
        name="g", gray_failures=(GrayFailure(multiplier=4.0, start_ms=50.0),)
    )

    def _run(self, fault_plan, seed=0, writes=40):
        cluster = DynamoCluster(
            ReplicaConfig(3, 1, 1),
            benign(),
            rng=np.random.default_rng(seed),
            fault_plan=fault_plan,
        )
        operations = validation_workload(
            key="k", writes=writes, write_interval_ms=25.0, read_offsets_ms=(1.0, 5.0)
        )
        WorkloadRunner(cluster).run(operations)
        return cluster

    def test_fault_plan_changes_delays_but_not_draw_accounting(self):
        base = self._run(None)
        modulated = self._run(self.PLAN)
        assert modulated.network.draws_consumed == base.network.draws_consumed
        assert modulated.network.draw_refills == base.network.draw_refills
        assert modulated.network.fault_runtime.modulated_draws > 0
        base_commits = [w.committed_ms for w in base.trace_log.writes]
        mod_commits = [w.committed_ms for w in modulated.trace_log.writes]
        assert base_commits != mod_commits

    def test_fault_plan_runs_are_deterministic(self):
        first = self._run(self.PLAN, seed=3)
        second = self._run(self.PLAN, seed=3)
        assert [w.committed_ms for w in first.trace_log.writes] == [
            w.committed_ms for w in second.trace_log.writes
        ]

    def test_network_requires_clock_with_plan(self):
        from repro.cluster.network import Network

        with pytest.raises(ConfigurationError):
            Network(
                distributions=benign(),
                rng=np.random.default_rng(0),
                fault_plan=self.PLAN,
            )

    def test_reference_engine_rejects_fault_plans(self):
        with pytest.raises(ConfigurationError):
            DynamoCluster(
                ReplicaConfig(3, 1, 1),
                benign(),
                rng=0,
                engine="reference",
                fault_plan=self.PLAN,
            )
