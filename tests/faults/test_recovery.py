"""Tests for the adaptive-recovery closed loop (harvest → ingest → refit)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ScenarioError
from repro.faults.recovery import (
    RECOVERY_TENANT,
    LegSample,
    harvest_wars_observations,
    run_adaptive_recovery,
)
from repro.latency.distributions import ConstantLatency
from repro.latency.production import WARSDistributions
from repro.scenarios.divergence import run_scenario
from repro.serving.service import PredictorService


def constant_wars() -> WARSDistributions:
    return WARSDistributions(
        w=ConstantLatency(4.0),
        a=ConstantLatency(1.0),
        r=ConstantLatency(2.0),
        s=ConstantLatency(3.0),
    )


@pytest.fixture(scope="module")
def trajectory():
    """One shared small closed-loop run (two blocks, two windows)."""
    return run_adaptive_recovery(
        "gray-failure", writes=400, windows=2, block_writes=200, rng=0
    )


class TestHarvest:
    def _trace(self):
        cluster = DynamoCluster(ReplicaConfig(3, 1, 1), constant_wars(), rng=0)
        cluster.write("k", "v1")
        cluster.simulator.run()
        cluster.read("k")
        cluster.simulator.run()
        return cluster.trace_log

    def test_constant_legs_are_recovered_exactly(self):
        samples = harvest_wars_observations(self._trace())
        by_leg = {}
        for sample in samples:
            by_leg.setdefault(sample.leg, []).append(sample)
        assert set(by_leg) == {"W", "A", "R", "S"}
        assert all(s.value_ms == pytest.approx(4.0) for s in by_leg["W"])
        assert all(s.value_ms == pytest.approx(1.0) for s in by_leg["A"])
        # R and S are split from the round trip: pairs must preserve the sum.
        for r, s in zip(by_leg["R"], by_leg["S"]):
            assert r.value_ms + s.value_ms == pytest.approx(5.0)
            assert 0.0 <= r.value_ms <= 5.0
            assert r.at_ms == s.at_ms  # both stamped at response arrival

    def test_offset_shifts_timestamps_not_values(self):
        trace = self._trace()
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        plain = harvest_wars_observations(trace, 0.0, rng_a)
        shifted = harvest_wars_observations(trace, 1_000.0, rng_b)
        for a, b in zip(plain, shifted):
            assert b.at_ms == pytest.approx(a.at_ms + 1_000.0)
            assert b.value_ms == pytest.approx(a.value_ms)

    def test_split_stream_is_seeded(self):
        trace = self._trace()
        first = harvest_wars_observations(trace, 0.0, np.random.default_rng(5))
        second = harvest_wars_observations(trace, 0.0, np.random.default_rng(5))
        assert first == second


class TestClosedLoop:
    def test_trajectory_shape(self, trajectory):
        assert trajectory.scenario == "gray-failure"
        assert len(trajectory.windows) == 2
        assert trajectory.observations > 0
        assert trajectory.harvested_samples > 0
        assert trajectory.static_mean_abs_delta_p > 0.0
        indices = [window.index for window in trajectory.windows]
        assert indices == [1, 2]

    def test_every_window_refits_and_ingests(self, trajectory):
        fingerprints = {window.fingerprint for window in trajectory.windows}
        assert len(fingerprints) == 2  # each refit rebinds a new environment
        for window in trajectory.windows:
            assert sum(window.samples.values()) > 0
            assert set(window.samples) <= {"W", "A", "R", "S"}

    def test_all_samples_land_in_some_window(self, trajectory):
        total = sum(sum(w.samples.values()) for w in trajectory.windows)
        assert total == trajectory.harvested_samples

    def test_adaptive_model_beats_static_eventually(self, trajectory):
        final = trajectory.windows[-1]
        assert final.mean_abs_delta_p < trajectory.static_mean_abs_delta_p
        assert trajectory.final_recovered_fraction > 0.0

    def test_to_dict_is_json_safe(self, trajectory):
        payload = json.loads(json.dumps(trajectory.to_dict()))
        assert payload["scenario"] == "gray-failure"
        assert len(payload["windows"]) == 2
        assert payload["final_recovered_fraction"] == pytest.approx(
            trajectory.final_recovered_fraction
        )
        assert any("recovered" in line for line in trajectory.summary_lines())

    def test_measured_side_matches_run_scenario(self, trajectory):
        divergence = run_scenario(
            "gray-failure",
            writes=400,
            block_writes=200,
            prediction_trials=1_000,
            rng=0,
        )
        assert divergence.observations == trajectory.observations

    def test_runs_are_reproducible(self, trajectory):
        again = run_adaptive_recovery(
            "gray-failure", writes=400, windows=2, block_writes=200, rng=0
        )
        assert again.to_dict() == trajectory.to_dict()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ScenarioError):
            run_adaptive_recovery("gray-failure", writes=5)
        with pytest.raises(ScenarioError):
            run_adaptive_recovery("gray-failure", writes=400, windows=0)
        with pytest.raises(ScenarioError):
            run_adaptive_recovery("gray-failure", writes=400, recovery_threshold=1.5)

    def test_rejects_service_with_conflicting_tenant(self):
        service = PredictorService()
        service.register_tenant(RECOVERY_TENANT, constant_wars())
        with pytest.raises(ScenarioError):
            run_adaptive_recovery(
                "gray-failure", writes=400, windows=2, service=service
            )

    def test_leg_sample_is_frozen(self):
        sample = LegSample("W", 1.0, 2.0)
        with pytest.raises(AttributeError):
            sample.leg = "A"
