"""Unit tests for the quantile-ladder tabulation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.grid import LatencyGrid, convolve_grids, quantile_ladder
from repro.exceptions import DistributionError
from repro.latency.distributions import (
    ConstantLatency,
    ExponentialLatency,
    ParetoLatency,
    UniformLatency,
)
from repro.latency.production import lnkd_disk


class TestQuantileLadder:
    def test_strictly_increasing_within_open_interval(self):
        ladder = quantile_ladder()
        assert np.all(np.diff(ladder) > 0)
        assert 0.0 < ladder[0] < ladder[-1] < 1.0

    def test_reaches_requested_tail_mass(self):
        ladder = quantile_ladder(tail=1e-7)
        assert ladder[0] == pytest.approx(1e-7)
        assert 1.0 - ladder[-1] == pytest.approx(1e-7)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(DistributionError):
            quantile_ladder(points=4)
        with pytest.raises(DistributionError):
            quantile_ladder(tail=0.5)


class TestLatencyGrid:
    def test_cdf_matches_analytic_cdf(self):
        dist = ExponentialLatency(rate=0.25)
        grid = LatencyGrid.from_distribution(dist)
        xs = np.array([0.1, 1.0, 4.0, 10.0, 40.0])
        assert np.allclose(grid.cdf(xs), [dist.cdf(x) for x in xs], atol=1e-4)

    def test_ppf_round_trips_through_cdf(self):
        grid = LatencyGrid.from_distribution(ParetoLatency(xm=1.5, alpha=3.8))
        qs = np.array([0.01, 0.5, 0.99, 0.9999])
        assert np.allclose(grid.cdf(grid.ppf(qs)), qs, atol=1e-4)

    def test_tail_nodes_reach_extreme_quantiles(self):
        dist = ParetoLatency(xm=3.0, alpha=3.35)
        grid = LatencyGrid.from_distribution(dist, tail=1e-7)
        # The heavy tail must be tabulated out to its 1 - 1e-7 quantile.
        assert grid.support[1] >= dist.ppf(1.0 - 2e-7)

    def test_cells_masses_sum_to_one(self):
        grid = LatencyGrid.from_distribution(ExponentialLatency(rate=1.0))
        for max_cells in (None, 64):
            _, masses = grid.cells(max_cells)
            assert masses.sum() == pytest.approx(1.0, abs=1e-12)

    def test_cells_reproduce_mean(self):
        dist = ExponentialLatency(rate=0.5)
        grid = LatencyGrid.from_distribution(dist)
        mids, masses = grid.cells()
        assert float(mids @ masses) == pytest.approx(dist.mean(), rel=1e-3)

    def test_mixture_uses_component_ladders(self):
        mixture = lnkd_disk().w  # Pareto body + exponential tail
        grid = LatencyGrid.from_distribution(mixture)
        xs = np.array([1.1, 2.0, 10.0, 50.0])
        assert np.allclose(grid.cdf(xs), [mixture.cdf(x) for x in xs], atol=1e-3)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(DistributionError):
            LatencyGrid(values=np.array([1.0, 2.0]), probs=np.array([0.5]))


class TestConvolveGrids:
    def test_sum_of_uniforms_is_triangular(self):
        grid = LatencyGrid.from_distribution(UniformLatency(low=0.0, high=1.0))
        total = convolve_grids(grid, grid)
        # CDF of U(0,1)+U(0,1) at 1.0 is exactly 0.5; at 0.5 it is 0.125.
        assert float(total.cdf(1.0)) == pytest.approx(0.5, abs=2e-3)
        assert float(total.cdf(0.5)) == pytest.approx(0.125, abs=2e-3)

    def test_sum_of_exponentials_is_gamma(self):
        dist = ExponentialLatency(rate=1.0)
        grid = LatencyGrid.from_distribution(dist)
        total = convolve_grids(grid, grid)
        # Erlang(2, 1): F(x) = 1 - e^-x (1 + x).
        for x in (0.5, 1.0, 2.0, 5.0):
            expected = 1.0 - np.exp(-x) * (1.0 + x)
            assert float(total.cdf(x)) == pytest.approx(expected, abs=2e-3)

    def test_constant_plus_constant_degenerates_to_step(self):
        grid = LatencyGrid.from_distribution(ConstantLatency(2.0))
        total = convolve_grids(grid, grid)
        assert float(total.cdf(3.9)) == pytest.approx(0.0, abs=1e-6)
        assert float(total.cdf(4.1)) == pytest.approx(1.0, abs=1e-6)
