"""Unit tests for the analytic WARS predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.predictor import AnalyticPredictor
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions, lnkd_ssd, wan


@pytest.fixture(scope="module")
def fig4_slow_write() -> AnalyticPredictor:
    """The figure-4 1:0.10 environment: W mean 10 ms, A=R=S mean 1 ms."""
    distributions = WARSDistributions.write_specialised(
        write=ExponentialLatency(rate=0.1),
        other=ExponentialLatency(rate=1.0),
        name="fig4-1:0.10",
    )
    return AnalyticPredictor(distributions=distributions)


class TestAnalyticPredictor:
    def test_strict_quorum_is_always_consistent(self, fig4_slow_write):
        result = fig4_slow_write.result(ReplicaConfig(n=3, r=2, w=2))
        assert result.consistency_probability(0.0) == 1.0
        assert result.t_visibility(0.999) == 0.0

    def test_consistency_increases_with_t(self, fig4_slow_write):
        result = fig4_slow_write.result(ReplicaConfig(n=3, r=1, w=1))
        curve = [p for _, p in result.consistency_curve((0.0, 1.0, 10.0, 100.0))]
        assert curve == sorted(curve)
        assert curve[-1] > 0.999

    def test_larger_quorums_are_fresher(self, fig4_slow_write):
        base = fig4_slow_write.consistency_probability(ReplicaConfig(3, 1, 1), 0.0)
        more_reads = fig4_slow_write.consistency_probability(ReplicaConfig(3, 2, 1), 0.0)
        more_writes = fig4_slow_write.consistency_probability(ReplicaConfig(3, 1, 2), 0.0)
        assert more_reads > base
        assert more_writes > base

    def test_matches_monte_carlo_at_commit(self, fig4_slow_write):
        """The figure-4 slow-write anchor: P(consistent at t=0) ~ 0.42."""
        result = fig4_slow_write.result(ReplicaConfig(n=3, r=1, w=1))
        from repro.core.wars import WARSModel

        model = WARSModel(
            distributions=fig4_slow_write.distributions, config=ReplicaConfig(3, 1, 1)
        )
        sampled = model.sample(50_000, np.random.default_rng(0))
        assert result.consistency_probability(0.0) == pytest.approx(
            sampled.consistency_probability(0.0), abs=0.01
        )

    def test_t_visibility_inverts_consistency(self, fig4_slow_write):
        result = fig4_slow_write.result(ReplicaConfig(n=3, r=1, w=1))
        for target in (0.9, 0.99, 0.999):
            t = result.t_visibility(target)
            assert result.consistency_probability(t) == pytest.approx(target, abs=1e-3)

    def test_latency_percentiles_monotone_in_quorum_size(self, fig4_slow_write):
        p99_r1 = fig4_slow_write.result(ReplicaConfig(3, 1, 1)).read_latency_percentile(99.0)
        p99_r3 = fig4_slow_write.result(ReplicaConfig(3, 3, 1)).read_latency_percentile(99.0)
        assert p99_r3 > p99_r1

    def test_sweep_matches_exact_point_queries(self, fig4_slow_write):
        configs = (ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 1))
        times = (0.0, 1.0, 10.0, 100.0)
        swept = fig4_slow_write.sweep(configs, times_ms=times)
        for config, summary in zip(configs, swept):
            exact = fig4_slow_write.result(config)
            for t, p in summary.curve:
                # The sweep's atom-compressed quadrature must stay within a
                # fraction of the 1% validation budget of the exact path.
                assert p == pytest.approx(exact.consistency_probability(t), abs=2e-3)
            for target, t_vis in summary.t_visibility_ms.items():
                assert t_vis == pytest.approx(max(exact.t_visibility(target), 1e-3), rel=0.05, abs=0.1)

    def test_sweep_populates_summaries(self, fig4_slow_write):
        (summary,) = fig4_slow_write.sweep(
            (ReplicaConfig(3, 1, 1),), times_ms=(0.0, 10.0)
        )
        assert summary.curve is not None and len(summary.curve) == 2
        assert set(summary.t_visibility_ms) == {0.99, 0.999}
        assert summary.read_latency_ms[50.0] <= summary.read_latency_ms[99.9]

    def test_environment_shared_across_queries(self, fig4_slow_write):
        assert fig4_slow_write.environment is fig4_slow_write.environment

    def test_rejects_per_replica_wan_model(self):
        with pytest.raises(ConfigurationError, match="i.i.d."):
            AnalyticPredictor(distributions=wan()).environment

    def test_rejects_negative_time(self, fig4_slow_write):
        result = fig4_slow_write.result(ReplicaConfig(3, 1, 1))
        with pytest.raises(ConfigurationError):
            result.consistency_probability(-1.0)

    def test_rejects_bad_target_probability(self, fig4_slow_write):
        result = fig4_slow_write.result(ReplicaConfig(3, 1, 1))
        with pytest.raises(ConfigurationError):
            result.t_visibility(0.0)

    def test_production_fit_commit_consistency(self):
        """LNKD-SSD at (3,1,1) is ~97-98% consistent at commit (paper §5.6)."""
        predictor = AnalyticPredictor(distributions=lnkd_ssd())
        probability = predictor.consistency_probability(ReplicaConfig(3, 1, 1), 0.0)
        assert 0.95 < probability < 0.99
