"""Acceptance test: the analytic predictor agrees with Monte Carlo to <= 1%.

This is the contract named in the package docs: across the paper's
figure-4/6/7 probe grids (minus WAN), the analytic consistency probabilities
must sit within 1% absolute of the Monte Carlo oracle — a bound dominated by
the oracle's own sampling noise at these trial counts.
"""

from __future__ import annotations

import pytest

from repro.analytic.validation import (
    default_validation_cases,
    validate_against_montecarlo,
)

_TRIALS = 50_000


@pytest.fixture(scope="module")
def report():
    return validate_against_montecarlo(trials=_TRIALS, rng=0)


class TestValidationAgainstMonteCarlo:
    def test_covers_every_figure_family(self):
        labels = [case.label for case in default_validation_cases()]
        for family in ("figure4", "figure6", "figure7"):
            assert any(label.startswith(family) for label in labels)
        assert not any("WAN" in label.upper() for label in labels)

    def test_max_absolute_error_within_one_percent(self, report):
        assert report.max_absolute_error <= 0.01, report.worst_row

    def test_mean_error_is_well_inside_the_bound(self, report):
        assert report.mean_absolute_error <= 0.002

    def test_ratio_artifact_brackets_unity(self, report):
        artifact = report.ratio_artifact()
        assert artifact["min_ratio"] <= 1.0 <= artifact["max_ratio"]
        assert 0.97 <= artifact["min_ratio"]
        assert artifact["max_ratio"] <= 1.03

    def test_sweep_fast_path_meets_the_same_bound(self):
        # Only the cheapest family: the sweep path differs from the exact
        # path by the atom quadrature alone, bounded here end to end.
        cases = default_validation_cases(figure4_rates=(0.1,), replication_factors=(3,))
        report = validate_against_montecarlo(
            cases=cases[:1], trials=_TRIALS, rng=0, sweep_mode=True
        )
        assert report.max_absolute_error <= 0.01, report.worst_row
