"""Unit tests for the order-statistics CDF transform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.orderstats import order_statistic_cdf
from repro.exceptions import ConfigurationError


class TestOrderStatisticCdf:
    def test_minimum_and_maximum_special_cases(self):
        f = np.linspace(0.0, 1.0, 11)
        # k=1 of n: 1 - (1-F)^n; k=n of n: F^n.
        assert np.allclose(order_statistic_cdf(f, 3, 1), 1.0 - (1.0 - f) ** 3)
        assert np.allclose(order_statistic_cdf(f, 3, 3), f**3)

    def test_matches_monte_carlo_order_statistics(self):
        rng = np.random.default_rng(7)
        draws = np.sort(rng.uniform(size=(200_000, 5)), axis=1)
        f = np.array([0.2, 0.5, 0.8])
        for k in (1, 3, 5):
            empirical = (draws[:, k - 1][:, None] <= f[None, :]).mean(axis=0)
            assert np.allclose(order_statistic_cdf(f, 5, k), empirical, atol=5e-3)

    def test_exact_at_endpoints(self):
        f = np.array([0.0, 1.0])
        for n in (1, 3, 10):
            for k in range(1, n + 1):
                result = order_statistic_cdf(f, n, k)
                assert result[0] == 0.0
                assert result[1] == 1.0

    def test_monotone_in_k(self):
        f = np.linspace(0.0, 1.0, 101)
        previous = order_statistic_cdf(f, 4, 1)
        for k in (2, 3, 4):
            current = order_statistic_cdf(f, 4, k)
            assert np.all(current <= previous + 1e-12)
            previous = current

    def test_rejects_invalid_k(self):
        f = np.array([0.5])
        with pytest.raises(ConfigurationError):
            order_statistic_cdf(f, 3, 0)
        with pytest.raises(ConfigurationError):
            order_statistic_cdf(f, 3, 4)
