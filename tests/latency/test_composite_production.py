"""Unit tests for per-replica composites and the production fits (Tables 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DistributionError
from repro.latency.composite import (
    PerReplicaLatency,
    ReplicaLatencyModel,
    uniform_replica_model,
    wan_replica_model,
)
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import (
    LINKEDIN_DISK_SUMMARY,
    LINKEDIN_SSD_SUMMARY,
    PRODUCTION_FIT_NAMES,
    WARSDistributions,
    YAMMER_READ_SUMMARY,
    YAMMER_WRITE_SUMMARY,
    lnkd_disk,
    lnkd_ssd,
    production_fit,
    wan,
    ymmr,
)


class TestPerReplicaLatency:
    def test_requires_at_least_one_replica(self):
        with pytest.raises(DistributionError):
            PerReplicaLatency(replicas=())

    def test_sample_matrix_shape_and_columns(self, rng):
        model = PerReplicaLatency(
            replicas=(ConstantLatency(1.0), ConstantLatency(2.0), ConstantLatency(3.0))
        )
        matrix = model.sample_matrix(100, rng)
        assert matrix.shape == (100, 3)
        assert np.all(matrix[:, 0] == 1.0)
        assert np.all(matrix[:, 2] == 3.0)

    def test_flat_sample_mixes_replicas(self, rng):
        model = PerReplicaLatency(replicas=(ConstantLatency(1.0), ConstantLatency(3.0)))
        samples = model.sample(20_000, rng)
        assert set(np.unique(samples)) == {1.0, 3.0}
        assert model.mean() == pytest.approx(2.0)

    def test_uniform_replica_model(self):
        model = uniform_replica_model(ConstantLatency(5.0), replica_count=4)
        assert model.replica_count == 4
        assert model.mean() == pytest.approx(5.0)

    def test_uniform_replica_model_rejects_bad_count(self):
        with pytest.raises(DistributionError):
            uniform_replica_model(ConstantLatency(1.0), replica_count=0)


class TestWanReplicaModel:
    def test_one_local_rest_remote(self, rng):
        model = wan_replica_model(ConstantLatency(1.0), replica_count=3, wan_delay_ms=75.0)
        matrix = model.sample_matrix(10, rng)
        assert np.all(matrix[:, 0] == 1.0)
        assert np.all(matrix[:, 1] == 76.0)
        assert np.all(matrix[:, 2] == 76.0)

    def test_local_replica_count_configurable(self, rng):
        model = wan_replica_model(
            ConstantLatency(2.0), replica_count=4, wan_delay_ms=10.0, local_replicas=2
        )
        matrix = model.sample_matrix(5, rng)
        assert np.all(matrix[:, :2] == 2.0)
        assert np.all(matrix[:, 2:] == 12.0)

    def test_invalid_configurations_rejected(self):
        with pytest.raises(DistributionError):
            wan_replica_model(ConstantLatency(1.0), replica_count=0)
        with pytest.raises(DistributionError):
            wan_replica_model(ConstantLatency(1.0), replica_count=2, local_replicas=5)


class TestReplicaLatencyModel:
    def test_implied_replica_count_none_for_iid(self):
        dist = ExponentialLatency(rate=1.0)
        model = ReplicaLatencyModel(write=dist, ack=dist, read=dist, response=dist)
        assert model.implied_replica_count() is None

    def test_implied_replica_count_from_per_replica(self):
        per = uniform_replica_model(ConstantLatency(1.0), replica_count=3)
        dist = ExponentialLatency(rate=1.0)
        model = ReplicaLatencyModel(write=per, ack=dist, read=dist, response=dist)
        assert model.implied_replica_count() == 3

    def test_inconsistent_counts_rejected(self):
        model = ReplicaLatencyModel(
            write=uniform_replica_model(ConstantLatency(1.0), replica_count=3),
            ack=uniform_replica_model(ConstantLatency(1.0), replica_count=5),
            read=ConstantLatency(1.0),
            response=ConstantLatency(1.0),
        )
        with pytest.raises(DistributionError):
            model.implied_replica_count()


class TestWARSDistributions:
    def test_symmetric_shares_one_distribution(self):
        dist = ExponentialLatency(rate=1.0)
        wars = WARSDistributions.symmetric(dist)
        assert wars.w is dist and wars.a is dist and wars.r is dist and wars.s is dist

    def test_write_specialised_separates_write_path(self):
        write = ExponentialLatency(rate=0.1)
        other = ExponentialLatency(rate=1.0)
        wars = WARSDistributions.write_specialised(write=write, other=other)
        assert wars.w is write
        assert wars.a is other and wars.r is other and wars.s is other

    def test_components_mapping(self):
        wars = WARSDistributions.symmetric(ExponentialLatency(rate=1.0))
        assert set(wars.components()) == {"W", "A", "R", "S"}


class TestProductionFits:
    def test_registry_names(self):
        assert set(PRODUCTION_FIT_NAMES) == {"LNKD-SSD", "LNKD-DISK", "YMMR", "WAN"}

    def test_lookup_is_case_insensitive(self):
        assert production_fit("lnkd-ssd").name == "LNKD-SSD"
        assert production_fit("lnkd_disk").name == "LNKD-DISK"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            production_fit("CASSANDRA-PROD")

    def test_lnkd_ssd_is_symmetric_and_fast(self):
        fit = lnkd_ssd()
        assert fit.w is fit.a is fit.r is fit.s
        # Table 3: mostly Pareto(xm=.235, alpha=10) -> sub-millisecond median.
        assert fit.w.ppf(0.5) < 1.0

    def test_lnkd_disk_write_tail_heavier_than_ssd(self):
        disk = lnkd_disk()
        ssd = lnkd_ssd()
        assert disk.w.ppf(0.999) > 5 * ssd.w.ppf(0.999)
        # Reads share the SSD fit.
        assert disk.r.ppf(0.99) == pytest.approx(ssd.r.ppf(0.99))

    def test_ymmr_write_tail_is_very_long(self):
        fit = ymmr()
        # Table 2 reports a 99.9th percentile write latency of ~436 ms; the
        # one-way fit's extreme tail should reach hundreds of milliseconds.
        assert fit.w.ppf(0.999) > 100.0
        assert fit.r.ppf(0.5) < 5.0

    def test_wan_has_per_replica_structure(self):
        fit = wan(replica_count=3)
        assert fit.w.replica_count == 3  # type: ignore[attr-defined]
        assert fit.r.replica_count == 3  # type: ignore[attr-defined]

    def test_wan_replica_count_forwarded(self):
        fit = production_fit("WAN", replica_count=5)
        assert fit.w.replica_count == 5  # type: ignore[attr-defined]

    def test_wan_rejects_bad_replica_count(self):
        with pytest.raises(ConfigurationError):
            wan(replica_count=0)

    def test_kwargs_rejected_by_parameterless_fits(self):
        # Regression: this used to crash with TypeError from the factory call
        # instead of a ConfigurationError naming the offending parameter.
        with pytest.raises(ConfigurationError, match="replica_count"):
            production_fit("YMMR", replica_count=5)
        with pytest.raises(ConfigurationError, match="no parameters"):
            production_fit("LNKD-SSD", wan_delay_ms=10.0)

    def test_unknown_kwargs_rejected_with_accepted_list(self):
        # WAN takes kwargs, but a typo'd name must still fail cleanly and
        # name what would have been accepted.
        with pytest.raises(ConfigurationError, match="wan_delay_ms"):
            production_fit("WAN", wan_delay=10.0)

    def test_published_summaries_match_paper_tables(self):
        assert LINKEDIN_DISK_SUMMARY.mean == pytest.approx(4.85)
        assert LINKEDIN_SSD_SUMMARY.percentile(99.0) == pytest.approx(2.0)
        assert YAMMER_READ_SUMMARY.percentile(99.9) == pytest.approx(32.89)
        assert YAMMER_WRITE_SUMMARY.percentile(99.9) == pytest.approx(435.83)
        assert YAMMER_WRITE_SUMMARY.mean == pytest.approx(8.62)

    def test_summary_missing_percentile_raises(self):
        from repro.exceptions import DistributionError

        with pytest.raises(DistributionError):
            LINKEDIN_DISK_SUMMARY.percentile(42.0)
