"""Unit tests for the parametric latency distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import DistributionError
from repro.latency.distributions import (
    ConstantLatency,
    ExponentialLatency,
    LogNormalLatency,
    NormalLatency,
    ParetoLatency,
    ScaledLatency,
    ShiftedLatency,
    UniformLatency,
)


class TestExponentialLatency:
    def test_mean_matches_rate(self):
        assert ExponentialLatency(rate=0.1).mean() == pytest.approx(10.0)

    def test_from_mean_round_trips(self):
        assert ExponentialLatency.from_mean(5.0).mean() == pytest.approx(5.0)

    def test_sample_mean_converges(self, rng):
        samples = ExponentialLatency(rate=0.5).sample(200_000, rng)
        assert np.mean(samples) == pytest.approx(2.0, rel=0.02)

    def test_samples_non_negative(self, rng):
        assert np.all(ExponentialLatency(rate=2.0).sample(10_000, rng) >= 0)

    def test_cdf_and_ppf_are_inverses(self):
        dist = ExponentialLatency(rate=0.2)
        for q in (0.1, 0.5, 0.9, 0.999):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_cdf_at_zero_and_negative(self):
        dist = ExponentialLatency(rate=1.0)
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(-1.0) == 0.0

    def test_variance(self):
        assert ExponentialLatency(rate=0.5).variance() == pytest.approx(4.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(DistributionError):
            ExponentialLatency(rate=0.0)
        with pytest.raises(DistributionError):
            ExponentialLatency.from_mean(-1.0)

    def test_ppf_one_is_infinite(self):
        assert math.isinf(ExponentialLatency(rate=1.0).ppf(1.0))


class TestParetoLatency:
    def test_mean_formula(self):
        dist = ParetoLatency(xm=1.0, alpha=3.0)
        assert dist.mean() == pytest.approx(1.5)

    def test_mean_infinite_for_small_alpha(self):
        assert math.isinf(ParetoLatency(xm=1.0, alpha=1.0).mean())

    def test_variance_infinite_for_alpha_below_two(self):
        assert math.isinf(ParetoLatency(xm=1.0, alpha=1.5).variance())

    def test_samples_at_least_xm(self, rng):
        samples = ParetoLatency(xm=2.0, alpha=2.5).sample(50_000, rng)
        assert np.min(samples) >= 2.0

    def test_sample_mean_converges(self, rng):
        dist = ParetoLatency(xm=1.0, alpha=4.0)
        samples = dist.sample(400_000, rng)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.02)

    def test_cdf_ppf_round_trip(self):
        dist = ParetoLatency(xm=0.235, alpha=10.0)
        for q in (0.01, 0.5, 0.99):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_cdf_below_xm_is_zero(self):
        assert ParetoLatency(xm=3.0, alpha=2.0).cdf(2.9) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DistributionError):
            ParetoLatency(xm=0.0, alpha=1.0)
        with pytest.raises(DistributionError):
            ParetoLatency(xm=1.0, alpha=-1.0)


class TestUniformLatency:
    def test_mean_and_variance(self):
        dist = UniformLatency(low=2.0, high=6.0)
        assert dist.mean() == pytest.approx(4.0)
        assert dist.variance() == pytest.approx(16.0 / 12.0)

    def test_samples_within_bounds(self, rng):
        samples = UniformLatency(low=1.0, high=3.0).sample(10_000, rng)
        assert np.min(samples) >= 1.0
        assert np.max(samples) <= 3.0

    def test_from_mean_and_halfwidth(self):
        dist = UniformLatency.from_mean_and_halfwidth(5.0, 1.5)
        assert dist.low == pytest.approx(3.5)
        assert dist.high == pytest.approx(6.5)

    def test_cdf_clamps(self):
        dist = UniformLatency(low=1.0, high=2.0)
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(5.0) == 1.0
        assert dist.cdf(1.5) == pytest.approx(0.5)

    def test_rejects_degenerate_interval(self):
        with pytest.raises(DistributionError):
            UniformLatency(low=2.0, high=2.0)
        with pytest.raises(DistributionError):
            UniformLatency(low=-1.0, high=2.0)


class TestNormalLatency:
    def test_samples_clipped_at_zero(self, rng):
        samples = NormalLatency(mu=0.5, sigma=2.0).sample(50_000, rng)
        assert np.min(samples) >= 0.0

    def test_mean_accounts_for_clipping(self, rng):
        dist = NormalLatency(mu=1.0, sigma=2.0)
        samples = dist.sample(400_000, rng)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.02)

    def test_zero_sigma_degenerates_to_constant(self, rng):
        dist = NormalLatency(mu=3.0, sigma=0.0)
        assert np.all(dist.sample(100, rng) == 3.0)
        assert dist.mean() == pytest.approx(3.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(DistributionError):
            NormalLatency(mu=1.0, sigma=-0.1)


class TestLogNormalLatency:
    def test_from_mean_and_cv(self, rng):
        dist = LogNormalLatency.from_mean_and_cv(10.0, 0.5)
        assert dist.mean() == pytest.approx(10.0, rel=1e-9)
        samples = dist.sample(400_000, rng)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.03)

    def test_variance_formula(self):
        dist = LogNormalLatency.from_mean_and_cv(4.0, 1.0)
        # CV of 1 means std == mean.
        assert math.sqrt(dist.variance()) == pytest.approx(4.0, rel=1e-9)

    def test_invalid_construction(self):
        with pytest.raises(DistributionError):
            LogNormalLatency.from_mean_and_cv(-1.0, 0.5)
        with pytest.raises(DistributionError):
            LogNormalLatency(mu=0.0, sigma=-1.0)


class TestConstantShiftedScaled:
    def test_constant_is_exact(self, rng):
        dist = ConstantLatency(value=7.5)
        assert np.all(dist.sample(100, rng) == 7.5)
        assert dist.mean() == 7.5
        assert dist.variance() == 0.0
        assert dist.ppf(0.3) == 7.5

    def test_constant_rejects_negative(self):
        with pytest.raises(DistributionError):
            ConstantLatency(value=-1.0)

    def test_shifted_moves_mean_not_variance(self):
        base = ExponentialLatency(rate=1.0)
        shifted = ShiftedLatency(base=base, offset=75.0)
        assert shifted.mean() == pytest.approx(76.0)
        assert shifted.variance() == pytest.approx(base.variance())
        assert shifted.ppf(0.5) == pytest.approx(base.ppf(0.5) + 75.0)

    def test_shifted_samples_exceed_offset(self, rng):
        shifted = ShiftedLatency(base=ExponentialLatency(rate=1.0), offset=10.0)
        assert np.min(shifted.sample(10_000, rng)) >= 10.0

    def test_scaled_scales_mean_and_variance(self):
        base = ExponentialLatency(rate=1.0)
        scaled = ScaledLatency(base=base, factor=3.0)
        assert scaled.mean() == pytest.approx(3.0)
        assert scaled.variance() == pytest.approx(9.0)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(DistributionError):
            ScaledLatency(base=ExponentialLatency(rate=1.0), factor=0.0)

    def test_shifted_rejects_negative_offset(self):
        with pytest.raises(DistributionError):
            ShiftedLatency(base=ExponentialLatency(rate=1.0), offset=-5.0)


class TestDescribe:
    def test_describe_reports_requested_percentiles(self, rng):
        summary = ExponentialLatency(rate=1.0).describe(percentiles=(50.0, 99.0), rng=rng)
        assert set(summary.percentiles) == {50.0, 99.0}
        assert summary.percentiles[99.0] > summary.percentiles[50.0]
        assert summary.mean == pytest.approx(1.0, rel=0.05)

    def test_describe_rows_include_mean(self):
        summary = ConstantLatency(value=2.0).describe(percentiles=(50.0,))
        rows = summary.as_rows()
        assert rows[0] == ("mean", 2.0)
        assert ("p50", 2.0) in rows

    def test_percentile_helper_uses_ppf(self):
        dist = ExponentialLatency(rate=1.0)
        assert dist.percentile(50.0) == pytest.approx(dist.ppf(0.5))
