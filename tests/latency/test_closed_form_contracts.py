"""Closed-form contracts every latency distribution must honour.

Three families of checks, applied uniformly to every distribution class:

* ``cdf(ppf(q)) == q`` wherever the distribution is continuous (atoms — the
  clip at zero for truncated normals, constant distributions — make the CDF
  jump, so the round trip there asserts ``cdf(ppf(q)) >= q`` instead);
* ``ppf(cdf(x)) == x`` on the interior of the support;
* analytic ``mean()``/``variance()`` agree with large-sample moments.

Plus the regression test for the base-class fallback: distributions without
closed forms must draw their 200k-sample quantile cache exactly once, no
matter how many ``variance``/``cdf``/``ppf`` queries follow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution
from repro.latency.distributions import (
    ConstantLatency,
    ExponentialLatency,
    LogNormalLatency,
    NormalLatency,
    ParetoLatency,
    ScaledLatency,
    ShiftedLatency,
    UniformLatency,
    standard_normal_ppf,
)
from repro.latency.empirical import EmpiricalDistribution, QuantileTableDistribution
from repro.latency.mixture import MixtureDistribution
from repro.latency.production import lnkd_disk

#: (distribution, lowest continuous quantile) — the floor skips atoms: the
#: truncated normal has mass at zero, so quantiles below cdf(0) all map to 0.
_CONTINUOUS_CASES: tuple[tuple[LatencyDistribution, float], ...] = (
    (ExponentialLatency(rate=0.3), 0.0),
    (ParetoLatency(xm=1.5, alpha=3.8), 0.0),
    (UniformLatency(low=1.0, high=5.0), 0.0),
    (NormalLatency(mu=4.0, sigma=1.0), NormalLatency(mu=4.0, sigma=1.0).cdf(0.0)),
    (NormalLatency(mu=1.0, sigma=2.0), NormalLatency(mu=1.0, sigma=2.0).cdf(0.0)),
    (LogNormalLatency(mu=0.5, sigma=0.8), 0.0),
    (ShiftedLatency(ExponentialLatency(rate=1.0), offset=2.0), 0.0),
    (ScaledLatency(ParetoLatency(xm=1.0, alpha=3.0), factor=2.5), 0.0),
    (lnkd_disk().w, 0.0),  # Pareto-body + exponential-tail mixture
    (
        EmpiricalDistribution(
            observations=np.random.default_rng(3).exponential(2.0, size=5_000)
        ),
        0.0,
    ),
    (
        QuantileTableDistribution.from_percentiles(
            [(50.0, 3.0), (95.0, 8.0), (99.0, 15.0)], minimum=1.0, maximum=40.0
        ),
        0.0,
    ),
)

_CASE_IDS = [type(case[0]).__name__ + f"-{i}" for i, case in enumerate(_CONTINUOUS_CASES)]


@pytest.mark.parametrize("distribution,floor", _CONTINUOUS_CASES, ids=_CASE_IDS)
class TestQuantileRoundTrips:
    @given(q=st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_cdf_of_ppf_recovers_quantile(self, distribution, floor, q):
        if q <= floor:
            # Below an atom the quantile maps onto the atom itself, where the
            # CDF jumps to at least the atom's mass.
            assert distribution.cdf(distribution.ppf(q)) >= q - 1e-6
        else:
            assert distribution.cdf(distribution.ppf(q)) == pytest.approx(q, abs=2e-3)

    @given(q=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_ppf_of_cdf_recovers_value(self, distribution, floor, q):
        if q <= floor:
            return
        x = distribution.ppf(q)
        assert distribution.ppf(distribution.cdf(x)) == pytest.approx(
            x, rel=2e-2, abs=2e-2
        )

    def test_ppf_rejects_out_of_range(self, distribution, floor):
        with pytest.raises(DistributionError):
            distribution.ppf(-0.1)
        with pytest.raises(DistributionError):
            distribution.ppf(1.1)


@pytest.mark.parametrize("distribution,floor", _CONTINUOUS_CASES, ids=_CASE_IDS)
class TestMomentsMatchSampling:
    def test_mean_matches_samples(self, distribution, floor):
        samples = distribution.sample(400_000, np.random.default_rng(11))
        tolerance = 4.0 * math.sqrt(float(np.var(samples)) / samples.size)
        assert distribution.mean() == pytest.approx(
            float(samples.mean()), abs=max(tolerance, 1e-3)
        )

    def test_variance_matches_samples(self, distribution, floor):
        variance = distribution.variance()
        if math.isinf(variance):
            # Heavy tails (Pareto alpha <= 2, as in the LNKD-DISK write
            # mixture) have no finite variance; any sampled value is
            # consistent with the analytic answer.
            return
        samples = distribution.sample(400_000, np.random.default_rng(11))
        sampled = float(np.var(samples))
        assert variance == pytest.approx(sampled, rel=0.1, abs=1e-3)


class TestConstantDistribution:
    """ConstantLatency is all atom — the round trips degenerate but must hold."""

    def test_quantiles_collapse_to_the_value(self):
        dist = ConstantLatency(3.5)
        for q in (0.0, 0.5, 1.0):
            assert dist.ppf(q) == 3.5
        assert dist.cdf(3.5) == 1.0
        assert dist.cdf(3.4999) == 0.0
        assert dist.variance() == 0.0


class TestStandardNormalPpf:
    def test_matches_erfc_inverse_to_high_precision(self):
        for q in (1e-9, 1e-4, 0.02425, 0.3, 0.5, 0.84, 0.97575, 1 - 1e-4, 1 - 1e-9):
            x = standard_normal_ppf(q)
            recovered = 0.5 * math.erfc(-x / math.sqrt(2.0))
            assert recovered == pytest.approx(q, rel=1e-9, abs=1e-12)

    def test_endpoints_are_infinite(self):
        assert standard_normal_ppf(0.0) == -math.inf
        assert standard_normal_ppf(1.0) == math.inf

    def test_rejects_out_of_range(self):
        with pytest.raises(DistributionError):
            standard_normal_ppf(-0.01)


@dataclass(frozen=True, repr=False)
class _CountingQuantileTable(QuantileTableDistribution):
    """QuantileTableDistribution that records every sample() call."""

    calls: list = field(default_factory=list, compare=False)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        self.calls.append(size)
        return super().sample(size, rng)


class TestQuantileTableClosedForms:
    """The PR-7 bugfixes: boundary/flat-segment CDF and closed-form variance."""

    def _flat_interior(self) -> QuantileTableDistribution:
        # Quantile segments: [0, .3] -> latencies 0..1, [.3, .7] -> flat at 1
        # (a 40% atom), [.7, 1] -> latencies 1..2.
        return QuantileTableDistribution(
            quantiles=np.array([0.0, 0.3, 0.7, 1.0]),
            latencies=np.array([0.0, 1.0, 1.0, 2.0]),
        )

    def test_cdf_ppf_round_trip_at_zero(self):
        dist = QuantileTableDistribution.from_percentiles(
            [(50.0, 4.0), (99.0, 25.0)], minimum=1.0, maximum=100.0
        )
        assert dist.cdf(dist.ppf(0.0)) >= 0.0
        assert dist.cdf(dist.ppf(0.0)) == pytest.approx(0.0)

    def test_boundary_atom_reports_its_full_mass(self):
        # minimum == p50 latency: the table starts with a flat segment, i.e.
        # an atom of mass 0.5 at the minimum.  cdf used to return 0.0 there.
        dist = QuantileTableDistribution.from_percentiles(
            [(50.0, 2.0), (99.0, 8.0)], minimum=2.0, maximum=20.0
        )
        assert dist.cdf(2.0) == pytest.approx(0.5)
        assert dist.cdf(dist.ppf(0.0)) == pytest.approx(0.5)
        assert dist.cdf(np.nextafter(2.0, 0.0)) == 0.0

    def test_flat_interior_segment_collapses_to_maximal_quantile(self):
        dist = self._flat_interior()
        # At the atom: the maximal quantile mapping to latency 1.
        assert dist.cdf(1.0) == pytest.approx(0.7)
        # Left of the atom the CDF follows the first segment only (u = .3 x),
        # which np.interp over duplicate knots would have smeared.
        assert dist.cdf(0.999) == pytest.approx(0.3 * 0.999)
        # Right of the atom it continues from the atom's full mass.
        assert dist.cdf(1.5) == pytest.approx(0.85)
        assert dist.cdf(np.nextafter(1.0, 2.0)) == pytest.approx(0.7)

    @given(x=st.floats(min_value=-0.5, max_value=2.5))
    @settings(max_examples=100, deadline=None)
    def test_cdf_is_monotone_and_bounded(self, x):
        dist = self._flat_interior()
        value = dist.cdf(x)
        assert 0.0 <= value <= 1.0
        assert dist.cdf(x + 0.125) >= value

    def test_cdf_matches_sampling_with_flat_segments(self):
        dist = self._flat_interior()
        samples = dist.sample(200_000, np.random.default_rng(9))
        for x in (0.25, 0.999, 1.0, 1.25, 1.75):
            empirical = float(np.mean(samples <= x))
            assert dist.cdf(x) == pytest.approx(empirical, abs=5e-3)

    def test_variance_closed_form_never_samples(self):
        dist = _CountingQuantileTable(
            quantiles=np.array([0.0, 0.5, 0.9, 1.0]),
            latencies=np.array([1.0, 3.0, 8.0, 40.0]),
        )
        dist.variance()
        dist.mean()
        dist.cdf(4.0)
        dist.ppf(0.25)
        assert dist.calls == []

    def test_variance_matches_uniform_closed_form(self):
        # Uniform on [0, 10] as a two-knot table: variance 100/12.
        dist = QuantileTableDistribution(
            quantiles=np.array([0.0, 1.0]), latencies=np.array([0.0, 10.0])
        )
        assert dist.variance() == pytest.approx(100.0 / 12.0)


@dataclass(frozen=True)
class _SampleOnly(LatencyDistribution):
    """A distribution with no closed forms: everything goes via the fallback."""

    calls: list = field(default_factory=list, compare=False)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        self.calls.append(size)
        return rng.gamma(shape=2.0, scale=1.5, size=size)

    def mean(self) -> float:
        return 3.0


class TestSamplingFallbackCache:
    def test_fallback_draws_exactly_once_across_queries(self):
        dist = _SampleOnly()
        dist.variance()
        dist.cdf(2.0)
        dist.ppf(0.9)
        dist.ppf_batch(np.linspace(0.1, 0.9, 17))
        dist.variance()
        dist.cdf(5.0)
        assert len(dist.calls) == 1
        assert dist.calls[0] == 200_000

    def test_fallback_answers_are_consistent(self):
        dist = _SampleOnly()
        # Gamma(2, 1.5): variance = 2 * 1.5^2 = 4.5.
        assert dist.variance() == pytest.approx(4.5, rel=0.05)
        assert dist.cdf(dist.ppf(0.75)) == pytest.approx(0.75, abs=5e-3)

    def test_cache_is_per_instance(self):
        first, second = _SampleOnly(), _SampleOnly()
        first.variance()
        second.variance()
        assert len(first.calls) == 1
        assert len(second.calls) == 1
