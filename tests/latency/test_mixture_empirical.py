"""Unit tests for mixture, empirical, and quantile-table distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DistributionError
from repro.latency.distributions import ConstantLatency, ExponentialLatency, ParetoLatency
from repro.latency.empirical import EmpiricalDistribution, QuantileTableDistribution
from repro.latency.mixture import (
    MixtureComponent,
    MixtureDistribution,
    pareto_exponential_mixture,
)


class TestMixtureDistribution:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            MixtureDistribution.from_pairs(
                [(0.5, ConstantLatency(1.0)), (0.4, ConstantLatency(2.0))]
            )

    def test_empty_mixture_rejected(self):
        with pytest.raises(DistributionError):
            MixtureDistribution(components=())

    def test_component_weight_validated(self):
        with pytest.raises(DistributionError):
            MixtureComponent(weight=1.5, distribution=ConstantLatency(1.0))

    def test_mean_is_weighted_average(self):
        mixture = MixtureDistribution.from_pairs(
            [(0.25, ConstantLatency(4.0)), (0.75, ConstantLatency(8.0))]
        )
        assert mixture.mean() == pytest.approx(7.0)

    def test_variance_law_of_total_variance(self):
        mixture = MixtureDistribution.from_pairs(
            [(0.5, ConstantLatency(0.0)), (0.5, ConstantLatency(10.0))]
        )
        # Two point masses at 0 and 10: variance = 25.
        assert mixture.variance() == pytest.approx(25.0)

    def test_cdf_is_weighted_sum(self):
        mixture = MixtureDistribution.from_pairs(
            [(0.3, ConstantLatency(1.0)), (0.7, ConstantLatency(5.0))]
        )
        assert mixture.cdf(2.0) == pytest.approx(0.3)
        assert mixture.cdf(6.0) == pytest.approx(1.0)

    def test_sampling_respects_weights(self, rng):
        mixture = MixtureDistribution.from_pairs(
            [(0.9, ConstantLatency(1.0)), (0.1, ConstantLatency(100.0))]
        )
        samples = mixture.sample(100_000, rng)
        fraction_fast = np.mean(samples == 1.0)
        assert fraction_fast == pytest.approx(0.9, abs=0.01)

    def test_sample_mean_converges(self, rng):
        mixture = pareto_exponential_mixture(0.9, xm=1.0, alpha=5.0, exponential_rate=0.1)
        samples = mixture.sample(400_000, rng)
        assert np.mean(samples) == pytest.approx(mixture.mean(), rel=0.03)


class TestParetoExponentialMixture:
    def test_components_match_parameters(self):
        mixture = pareto_exponential_mixture(0.8, xm=2.0, alpha=3.0, exponential_rate=0.5)
        assert len(mixture.components) == 2
        pareto = mixture.components[0].distribution
        tail = mixture.components[1].distribution
        assert isinstance(pareto, ParetoLatency) and pareto.xm == 2.0 and pareto.alpha == 3.0
        assert isinstance(tail, ExponentialLatency) and tail.rate == 0.5
        assert mixture.components[0].weight == pytest.approx(0.8)

    def test_invalid_weight_rejected(self):
        with pytest.raises(DistributionError):
            pareto_exponential_mixture(1.2, xm=1.0, alpha=2.0, exponential_rate=1.0)


class TestEmpiricalDistribution:
    def test_statistics_match_observations(self):
        data = [1.0, 2.0, 3.0, 4.0]
        dist = EmpiricalDistribution.from_samples(data)
        assert dist.mean() == pytest.approx(2.5)
        assert dist.cdf(2.0) == pytest.approx(0.5)
        assert dist.ppf(1.0) == pytest.approx(4.0)
        assert len(dist) == 4

    def test_samples_drawn_from_observations(self, rng):
        dist = EmpiricalDistribution.from_samples([5.0, 7.0])
        samples = dist.sample(1_000, rng)
        assert set(np.unique(samples)) <= {5.0, 7.0}

    def test_rejects_empty_and_negative(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution.from_samples([])
        with pytest.raises(DistributionError):
            EmpiricalDistribution.from_samples([1.0, -2.0])

    def test_sampling_is_uniform_over_observations(self):
        # The rng.integers fast path must still resample uniformly with
        # replacement: each observation appears with probability 1/n.
        dist = EmpiricalDistribution.from_samples([1.0, 2.0, 3.0, 4.0])
        samples = dist.sample(100_000, np.random.default_rng(2))
        _, counts = np.unique(samples, return_counts=True)
        assert counts.size == 4
        assert np.all(np.abs(counts / samples.size - 0.25) < 0.01)

    def test_sampling_reproducible_for_equal_seeds(self):
        dist = EmpiricalDistribution.from_samples(
            np.random.default_rng(0).exponential(2.0, size=500)
        )
        first = dist.sample(1_000, np.random.default_rng(42))
        second = dist.sample(1_000, np.random.default_rng(42))
        np.testing.assert_array_equal(first, second)


class TestQuantileTableDistribution:
    def test_from_percentiles_builds_valid_table(self):
        dist = QuantileTableDistribution.from_percentiles(
            [(50.0, 4.0), (99.0, 25.0)], minimum=1.0, maximum=100.0
        )
        assert dist.ppf(0.0) == pytest.approx(1.0)
        assert dist.ppf(0.5) == pytest.approx(4.0)
        assert dist.ppf(1.0) == pytest.approx(100.0)

    def test_mean_is_quantile_integral(self):
        # Uniform on [0, 10] expressed as a quantile table: mean 5.
        dist = QuantileTableDistribution(
            quantiles=np.array([0.0, 1.0]), latencies=np.array([0.0, 10.0])
        )
        assert dist.mean() == pytest.approx(5.0)

    def test_cdf_inverts_ppf(self):
        dist = QuantileTableDistribution(
            quantiles=np.array([0.0, 0.5, 1.0]), latencies=np.array([0.0, 2.0, 10.0])
        )
        assert dist.cdf(2.0) == pytest.approx(0.5)
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(20.0) == 1.0

    def test_sample_range_respects_table(self, rng):
        dist = QuantileTableDistribution(
            quantiles=np.array([0.0, 1.0]), latencies=np.array([2.0, 4.0])
        )
        samples = dist.sample(10_000, rng)
        assert np.min(samples) >= 2.0
        assert np.max(samples) <= 4.0

    def test_invalid_tables_rejected(self):
        with pytest.raises(DistributionError):
            QuantileTableDistribution(
                quantiles=np.array([0.0, 0.5]), latencies=np.array([1.0, 2.0])
            )
        with pytest.raises(DistributionError):
            QuantileTableDistribution(
                quantiles=np.array([0.0, 0.5, 1.0]), latencies=np.array([1.0, 0.5, 2.0])
            )
        with pytest.raises(DistributionError):
            QuantileTableDistribution(
                quantiles=np.array([0.0, 0.5, 0.5, 1.0]),
                latencies=np.array([1.0, 2.0, 3.0, 4.0]),
            )
