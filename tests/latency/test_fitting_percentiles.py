"""Unit tests for the fitting procedure (§5.5) and percentile helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AnalysisError, DistributionError
from repro.latency.fitting import (
    evaluate_fit,
    fit_from_observations,
    fit_pareto_exponential,
)
from repro.latency.mixture import pareto_exponential_mixture
from repro.latency.percentiles import (
    merge_percentile_tables,
    normalized_rmse,
    percentile_table,
    rmse,
    summary_from_samples,
)


class TestPercentileHelpers:
    def test_percentile_table(self):
        table = percentile_table([1.0, 2.0, 3.0, 4.0, 5.0], [50.0, 100.0])
        assert table[50.0] == pytest.approx(3.0)
        assert table[100.0] == pytest.approx(5.0)

    def test_percentile_table_empty_rejected(self):
        with pytest.raises(AnalysisError):
            percentile_table([], [50.0])

    def test_rmse_zero_for_identical(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            rmse([1.0], [1.0, 2.0])

    def test_normalized_rmse_scales_by_range(self):
        assert normalized_rmse([1.0, 11.0], [0.0, 10.0]) == pytest.approx(0.1)

    def test_normalized_rmse_zero_range(self):
        assert normalized_rmse([5.0, 5.0], [5.0, 5.0]) == 0.0
        with pytest.raises(AnalysisError):
            normalized_rmse([5.0, 6.0], [5.0, 5.0])

    def test_summary_from_samples(self):
        mean, table = summary_from_samples([2.0, 4.0, 6.0], [50.0])
        assert mean == pytest.approx(4.0)
        assert table[50.0] == pytest.approx(4.0)

    def test_merge_percentile_tables_pivots(self):
        merged = merge_percentile_tables(
            {"read": {50.0: 1.0, 99.0: 2.0}, "write": {50.0: 3.0}}
        )
        assert merged[50.0] == {"read": 1.0, "write": 3.0}
        assert merged[99.0] == {"read": 2.0}
        assert list(merged) == [50.0, 99.0]


class TestEvaluateFit:
    def test_perfect_fit_has_low_error(self):
        mixture = pareto_exponential_mixture(0.9, xm=1.0, alpha=4.0, exponential_rate=0.05)
        draws = mixture.sample(300_000, np.random.default_rng(7))
        targets = {p: float(np.percentile(draws, p)) for p in (50.0, 95.0, 99.0, 99.9)}
        assert evaluate_fit(mixture, targets, seed=11) < 0.05

    def test_invalid_percentiles_rejected(self):
        mixture = pareto_exponential_mixture(0.9, xm=1.0, alpha=4.0, exponential_rate=0.05)
        with pytest.raises(DistributionError):
            evaluate_fit(mixture, {})
        with pytest.raises(DistributionError):
            evaluate_fit(mixture, {0.0: 1.0})
        with pytest.raises(DistributionError):
            evaluate_fit(mixture, {50.0: -1.0})


class TestFitParetoExponential:
    def test_recovers_synthetic_mixture_shape(self):
        # Generate targets from a known mixture and check the fit reproduces
        # its percentiles with small normalised error.
        truth = pareto_exponential_mixture(0.93, xm=3.0, alpha=3.3, exponential_rate=0.003)
        draws = truth.sample(300_000, np.random.default_rng(3))
        targets = {
            p: float(np.percentile(draws, p)) for p in (50.0, 75.0, 95.0, 99.0, 99.9)
        }
        fit = fit_pareto_exponential(targets, mean_hint=truth.mean(), grid_refinements=2)
        assert fit.n_rmse < 0.10
        assert 0.0 < fit.pareto_weight < 1.0
        assert fit.xm > 0 and fit.alpha > 0 and fit.exponential_rate > 0

    def test_fits_yammer_read_summary_reasonably(self):
        targets = {50.0: 3.75, 75.0: 4.17, 95.0: 5.2, 98.0: 6.045, 99.0: 6.59, 99.9: 32.89}
        fit = fit_pareto_exponential(targets, mean_hint=9.23, grid_refinements=2)
        # The paper's own fits achieve N-RMSE between 0.06% and 1.84%; allow a
        # looser bound here since the optimiser budget is intentionally small.
        assert fit.n_rmse < 0.15

    def test_describe_mentions_all_parameters(self):
        targets = {50.0: 2.0, 99.0: 10.0}
        fit = fit_pareto_exponential(targets, grid_refinements=1)
        text = fit.describe()
        assert "Pareto" in text and "Exp" in text and "N-RMSE" in text

    def test_requires_percentiles(self):
        with pytest.raises(DistributionError):
            fit_pareto_exponential({})


class TestFitEdgeCases:
    """PR-7 satellite: degenerate summaries must fit, not crash."""

    def test_single_percentile_summary(self):
        # One target used to reach normalized_rmse with a zero observed
        # range and raise AnalysisError mid-fit.
        fit = fit_pareto_exponential({50.0: 5.0}, grid_refinements=1)
        assert np.isfinite(fit.n_rmse)
        assert fit.distribution.ppf(0.5) == pytest.approx(5.0, rel=0.2)

    def test_flat_percentile_table(self):
        # Every percentile quoting the same latency: the fit should converge
        # toward a near-point-mass and report a finite relative error.
        fit = fit_pareto_exponential(
            {50.0: 4.0, 95.0: 4.0, 99.0: 4.0}, grid_refinements=1
        )
        assert np.isfinite(fit.n_rmse)
        assert fit.n_rmse < 0.25
        assert fit.distribution.ppf(0.5) == pytest.approx(4.0, rel=0.3)

    def test_all_zero_observations_do_not_crash(self):
        fit = fit_from_observations(np.zeros(64), percentiles=(50.0, 95.0))
        assert np.isfinite(fit.n_rmse)

    def test_refit_is_deterministic_under_fixed_seed(self):
        observations = np.random.default_rng(5).exponential(3.0, size=2_000)
        first = fit_from_observations(observations, grid_refinements=1)
        second = fit_from_observations(list(observations), grid_refinements=1)
        # Same observations -> bitwise-identical FitResult (the serving
        # layer's refit path relies on this to keep fingerprints stable).
        assert first == second
        assert first.n_rmse == second.n_rmse

    def test_fit_from_observations_validates_inputs(self):
        with pytest.raises(DistributionError):
            fit_from_observations([])
        with pytest.raises(DistributionError):
            fit_from_observations([1.0, -2.0])
        with pytest.raises(DistributionError):
            fit_from_observations([1.0, 2.0], percentiles=())
        with pytest.raises(DistributionError):
            fit_from_observations([[1.0, 2.0]])

    def test_fit_from_observations_matches_manual_summary(self):
        observations = np.random.default_rng(7).gamma(2.0, 2.0, size=3_000)
        points = (50.0, 95.0, 99.0)
        manual = fit_pareto_exponential(
            {p: float(np.percentile(observations, p)) for p in points},
            mean_hint=float(observations.mean()),
            grid_refinements=1,
        )
        streamed = fit_from_observations(
            observations, percentiles=points, grid_refinements=1
        )
        assert streamed == manual
