"""Registry-wide audit of optional sweep-kwarg threading.

``run_experiment`` forwards only the optional kwargs a runner's signature
declares (``_OPTIONAL_SWEEP_KWARGS`` filtering).  That makes it easy for a
new runner to *silently* lose ``--workers`` or ``--draw-batch-size``: the CLI
accepts the flag and the registry drops it.  This suite pins, per registered
experiment, exactly which optional kwargs the runner accepts — registering a
new experiment (or changing a signature) without updating the expectation
map fails loudly here.
"""

from __future__ import annotations

import inspect

import pytest

from repro.experiments.registry import (
    _OPTIONAL_SWEEP_KWARGS,
    get_experiment,
    list_experiments,
    run_experiment,
)

#: Exactly which optional sweep kwargs each registered runner declares.
#: A runner absent from this map, or accepting a different set, is a test
#: failure: decide explicitly whether each flag should reach it or be
#: filtered, then pin the outcome here.
EXPECTED_OPTIONAL_KWARGS: dict[str, set[str]] = {
    # Closed-form / table reproductions: no sweep machinery at all.
    "section3-kstaleness": set(),
    "section3-monotonic": set(),
    "section3-load": set(),
    "table1-2-3": set(),
    "table3-refit": set(),
    # Monte Carlo sweep experiments: full sweep-engine surface.
    "figure4": {"chunk_size", "tolerance", "workers", "probe_resolution_ms", "kernel_backend"},
    "figure5": {"chunk_size", "tolerance", "workers", "probe_resolution_ms", "kernel_backend"},
    "figure6": {"chunk_size", "tolerance", "workers", "probe_resolution_ms", "kernel_backend"},
    "figure7": {"chunk_size", "tolerance", "workers", "probe_resolution_ms", "kernel_backend"},
    "table4": {"chunk_size", "tolerance", "workers", "probe_resolution_ms", "kernel_backend"},
    "sla": {"chunk_size", "tolerance", "workers", "probe_resolution_ms", "kernel_backend"},
    "section5.3-variance": {
        "chunk_size",
        "tolerance",
        "workers",
        "probe_resolution_ms",
        "kernel_backend",
    },
    # Cluster-simulator experiments: sharded blocks + batched network draws.
    "validation": {"workers", "draw_batch_size"},
    "scenario": {"workers", "draw_batch_size", "name"},
    "scenarios": {"workers", "draw_batch_size"},
    # The adaptive-recovery loop is serial by design (trace logs are
    # harvested block by block), so it threads only the draw knob.
    "recovery": {"draw_batch_size", "name"},
    "ablation-read-repair": {"workers", "draw_batch_size", "probe_resolution_ms", "kernel_backend"},
    "ablation-read-fanout": {"workers", "draw_batch_size", "probe_resolution_ms", "kernel_backend"},
    "ablation-failures": {"workers", "draw_batch_size", "probe_resolution_ms", "kernel_backend"},
    # Analytic oracle comparison: sharded measurement only.
    "analytic-validation": {"workers"},
}

#: Runners that drive the cluster simulator MUST thread both sharding knobs.
CLUSTER_RUNNERS = (
    "validation",
    "scenario",
    "scenarios",
    "ablation-read-repair",
    "ablation-read-fanout",
    "ablation-failures",
)


def _declared_optional_kwargs(experiment_id: str) -> set[str]:
    parameters = inspect.signature(get_experiment(experiment_id)).parameters
    assert not any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD for parameter in parameters.values()
    ), f"{experiment_id} hides its kwarg surface behind **kwargs; declare them explicitly"
    return {name for name in parameters if name in _OPTIONAL_SWEEP_KWARGS}


class TestKwargThreadingAudit:
    def test_expectation_map_covers_every_registered_experiment(self):
        registered = {experiment_id for experiment_id, _ in list_experiments()}
        assert registered == set(EXPECTED_OPTIONAL_KWARGS), (
            "experiment registry and EXPECTED_OPTIONAL_KWARGS disagree; "
            "pin the new/removed runner's optional-kwarg surface here"
        )

    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_OPTIONAL_KWARGS))
    def test_runner_signature_matches_pinned_kwargs(self, experiment_id):
        assert _declared_optional_kwargs(experiment_id) == EXPECTED_OPTIONAL_KWARGS[experiment_id]

    @pytest.mark.parametrize("experiment_id", CLUSTER_RUNNERS)
    def test_cluster_runners_thread_both_sharding_knobs(self, experiment_id):
        declared = _declared_optional_kwargs(experiment_id)
        assert {"workers", "draw_batch_size"} <= declared, (
            f"{experiment_id} drives the cluster simulator but silently drops "
            "--workers or --draw-batch-size"
        )


class TestKwargsActuallyReachTheCluster:
    def test_draw_batch_size_changes_ablation_sampling_stream(self):
        """``draw_batch_size=1`` reproduces the legacy per-message stream,
        which differs from the batched default — so identical outputs would
        mean the kwarg was filtered out before reaching the cluster."""
        batched = run_experiment("ablation-read-repair", trials=60, rng=0)
        legacy = run_experiment("ablation-read-repair", trials=60, rng=0, draw_batch_size=1)
        assert batched.rows != legacy.rows

    def test_scenario_workers_are_threaded_not_filtered(self):
        # 2k writes = 2 blocks, so workers=2 actually engages the pool; the
        # blocked discipline then guarantees identical rows.
        serial = run_experiment(
            "scenario", trials=2_000, rng=0, name="baseline", prediction_trials=2_000
        )
        sharded = run_experiment(
            "scenario", trials=2_000, rng=0, name="baseline", prediction_trials=2_000, workers=2
        )
        assert serial.rows == sharded.rows
