"""Tests for the ablation experiments (read repair, read fan-out, failures)."""

from __future__ import annotations

import pytest

from repro.experiments.registry import list_experiments, run_experiment


class TestAblationRegistry:
    def test_ablations_registered(self):
        ids = {experiment_id for experiment_id, _ in list_experiments()}
        assert {"ablation-read-repair", "ablation-read-fanout", "ablation-failures"} <= ids


class TestReadRepairAblation:
    def test_read_repair_never_increases_staleness(self):
        result = run_experiment("ablation-read-repair", trials=150, rng=0)
        by_label = {row["read_repair"]: row for row in result.rows}
        baseline = by_label["disabled (paper model)"]
        repaired = by_label["enabled"]
        assert baseline["staleness_rate"] > 0.0
        assert repaired["staleness_rate"] <= baseline["staleness_rate"] + 0.03
        assert repaired["repairs_sent"] > 0
        assert baseline["repairs_sent"] == 0


class TestFanoutAblation:
    def test_staleness_unchanged_but_load_differs(self):
        # 300 trials (not the 150 used elsewhere): the +-0.10 staleness-rate
        # tolerance below is a statistical bound, and at 150 writes the two
        # fan-out arms' independent workloads sit right at its edge.
        result = run_experiment("ablation-read-fanout", trials=300, rng=0)
        by_label = {row["read_fanout"]: row for row in result.rows}
        dynamo = by_label["all N replicas (Dynamo)"]
        voldemort = by_label["only R replicas (Voldemort)"]
        # §2.3: staleness probabilities are unaffected by fan-out choice.
        assert dynamo["staleness_rate"] == pytest.approx(
            voldemort["staleness_rate"], abs=0.10
        )
        # ...but aggregate replica read load drops when only R replicas are contacted
        # (the busiest replica still serves every read it is sent in both modes).
        assert voldemort["total_replica_read_load"] < dynamo["total_replica_read_load"]
        assert voldemort["max_replica_read_load"] <= dynamo["max_replica_read_load"]


class TestFailureAblation:
    def test_crashed_replica_changes_observed_staleness(self):
        result = run_experiment("ablation-failures", trials=150, rng=0)
        by_label = {row["scenario"]: row for row in result.rows}
        steady = by_label["steady state"]
        degraded = by_label["one replica crashed"]
        assert steady["observations"] > 0 and degraded["observations"] > 0
        # With one of three replicas down and R=W=1, the effective replica set
        # is two, so a random single-replica read is *more* likely to hit the
        # replica that already has the write (Figure 7's N-sensitivity).
        assert degraded["staleness_rate"] <= steady["staleness_rate"] + 0.05
