"""Tests for the experiment registry, the individual experiments (fast settings), and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)

#: Paper artifacts that must all be covered by registered experiments.
EXPECTED_EXPERIMENTS = {
    "section3-kstaleness",
    "section3-monotonic",
    "section3-load",
    "figure4",
    "section5.3-variance",
    "figure5",
    "figure6",
    "figure7",
    "table1-2-3",
    "table3-refit",
    "table4",
    "validation",
    "sla",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        registered = {experiment_id for experiment_id, _ in list_experiments()}
        assert EXPECTED_EXPERIMENTS <= registered

    def test_get_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):

            @register("section3-kstaleness", "duplicate")
            def runner(**kwargs):  # pragma: no cover - never called
                raise AssertionError

    def test_result_to_text_includes_title_and_notes(self):
        result = ExperimentResult(
            experiment_id="x",
            title="A title",
            paper_artifact="Table 9",
            rows=[{"a": 1.0}],
            notes=("something",),
        )
        text = result.to_text()
        assert "A title" in text and "Table 9" in text and "note: something" in text


class TestClosedFormExperiments:
    def test_kstaleness_rows_match_closed_form(self):
        result = run_experiment("section3-kstaleness")
        row = next(r for r in result.rows if r["config"] == "N=3 R=1 W=1")
        assert row["p_within_3"] == pytest.approx(0.7037, abs=1e-3)
        assert row["p_within_10"] > 0.98

    def test_monotonic_rows_bounded(self):
        result = run_experiment("section3-monotonic")
        assert all(0.0 <= row["p_monotonic"] <= 1.0 for row in result.rows)

    def test_load_rows_have_expected_columns(self):
        result = run_experiment("section3-load")
        assert {"n", "p_inconsistency", "load_k=1", "load_k=10"} <= result.rows[0].keys()


class TestMonteCarloExperiments:
    """Each experiment runs at reduced fidelity to keep the suite fast."""

    def test_figure4_shapes(self):
        result = run_experiment("figure4", trials=20_000, rng=0)
        by_ratio = {row["w_to_ars_ratio"]: row for row in result.rows}
        # Fast writes: very high consistency immediately; slow writes: low.
        assert by_ratio["1:4"]["p@t=0ms"] > 0.9
        assert by_ratio["1:0.10"]["p@t=0ms"] < 0.6
        # Everything converges by 100 ms except possibly the slowest ratio.
        assert by_ratio["1:1"]["p@t=100ms"] > 0.999

    def test_variance_sweep_orders_by_variance(self):
        result = run_experiment("section5.3-variance", trials=20_000, rng=0)
        rows = {row["write_distribution"]: row for row in result.rows}
        assert (
            rows["normal sd=5"]["p_consistent_at_commit"]
            <= rows["normal sd=0.5"]["p_consistent_at_commit"]
        )

    def test_figure5_read_latency_grows_with_quorum_size(self):
        result = run_experiment("figure5", trials=20_000, rng=0)
        ymmr_reads = {
            row["quorum_size"]: row
            for row in result.rows
            if row["environment"] == "YMMR" and row["operation"] == "read"
        }
        assert ymmr_reads[1]["p99.9_ms"] <= ymmr_reads[3]["p99.9_ms"]

    def test_figure6_expected_shapes(self):
        result = run_experiment("figure6", trials=30_000, rng=0)
        rows = {(row["environment"], row["config"]): row for row in result.rows}
        assert rows[("LNKD-SSD", "N=3 R=1 W=1")]["p_at_commit"] > 0.95
        assert rows[("LNKD-DISK", "N=3 R=1 W=1")]["p_at_commit"] < 0.6
        assert rows[("YMMR", "N=3 R=1 W=1")]["t_visibility_99.9_ms"] > 500.0
        assert rows[("WAN", "N=3 R=1 W=1")]["p_at_commit"] < 0.6

    def test_figure7_commit_consistency_decreases_with_n(self):
        result = run_experiment("figure7", trials=20_000, rng=0)
        disk = {
            row["n"]: row["p_at_commit"]
            for row in result.rows
            if row["environment"] == "LNKD-DISK"
        }
        assert disk[2] > disk[10]

    def test_table4_strict_quorums_report_zero_window(self):
        result = run_experiment("table4", trials=20_000, rng=0)
        for row in result.rows:
            if row["strict_quorum"]:
                assert row["t_visibility_99.9_ms"] == 0.0
            assert row["combined_p99.9_ms"] == pytest.approx(
                row["read_p99.9_ms"] + row["write_p99.9_ms"]
            )

    def test_table1_2_3_rows_reference_published_summaries(self):
        result = run_experiment("table1-2-3", trials=50_000, rng=0)
        assert any(row["source"].startswith("Table 1") for row in result.rows)
        assert any(row["source"].startswith("Table 2") for row in result.rows)

    def test_sla_experiment_reports_best_configs(self):
        result = run_experiment("sla", trials=5_000, rng=0)
        assert all("best_config" in row for row in result.rows)


class TestValidationExperiment:
    def test_small_grid_runs_and_reports_error(self):
        from repro.core.quorum import ReplicaConfig

        result = run_experiment(
            "validation",
            trials=60,
            rng=0,
            prediction_trials=20_000,
            configs=(ReplicaConfig(3, 1, 1),),
        )
        assert len(result.rows) == 9
        for row in result.rows:
            assert (row["n"], row["r"], row["w"]) == (3, 1, 1)
            assert row["consistency_rmse_pct"] < 25.0
            assert row["observations"] > 0

    def test_full_grid_sweeps_every_configuration(self):
        from repro.experiments.validation import VALIDATION_CONFIGS

        result = run_experiment("validation", trials=60, rng=0, prediction_trials=5_000)
        # configs × W means × A=R=S means.
        assert len(result.rows) == len(VALIDATION_CONFIGS) * 9
        seen_configs = {(row["n"], row["r"], row["w"]) for row in result.rows}
        assert seen_configs == {(c.n, c.r, c.w) for c in VALIDATION_CONFIGS}

    def test_config_and_configs_are_mutually_exclusive(self):
        from repro.core.quorum import ReplicaConfig

        with pytest.raises(ExperimentError):
            run_experiment(
                "validation",
                trials=60,
                config=ReplicaConfig(3, 1, 1),
                configs=(ReplicaConfig(3, 1, 1),),
            )


def _registered_experiment_ids() -> list[str]:
    return [experiment_id for experiment_id, _ in list_experiments()]


class TestRegistrySmoke:
    """Every registered experiment must run end-to-end through the CLI.

    Tiny trial counts keep this fast; the assertions only check that each
    experiment produces a well-formed table (non-empty rows with a consistent
    schema) and renders through the CLI without error.
    """

    #: Small but valid everywhere (the SLA search requires >= 100 trials).
    _SMOKE_TRIALS = 120

    @pytest.mark.parametrize("experiment_id", _registered_experiment_ids())
    def test_cli_smoke_run_produces_well_formed_rows(self, experiment_id, capsys, tmp_path):
        # --workers rides along so this doubles as the registry-wide smoke
        # test that every runner either accepts the knob or has it filtered
        # by the registry (closed-form/cluster runners).  At smoke trial
        # counts a sweep fits in one chunk, so no pool is spawned and the
        # runs stay serial-fast.
        assert (
            main(
                [
                    "run",
                    experiment_id,
                    "--trials",
                    str(self._SMOKE_TRIALS),
                    "--seed",
                    "1",
                    "--workers",
                    "2",
                    "--export",
                    str(tmp_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.startswith("== ")
        # Header line, separator, and at least one data row.
        assert len([line for line in output.splitlines() if line.strip()]) >= 3

        # The exported artifact carries the rows the CLI rendered; assert
        # they are well-formed without re-running the experiment.
        payload = json.loads((tmp_path / f"{experiment_id}.json").read_text())
        rows = payload["rows"]
        assert len(rows) > 0
        # Rows must be non-empty and share a common key core (some
        # experiments legitimately add columns per row, e.g. table1-2-3's
        # published percentile sets).
        common_keys = set(rows[0].keys())
        for row in rows:
            assert len(row) > 0
            common_keys &= set(row.keys())
        assert common_keys

    @pytest.mark.parametrize("experiment_id", _registered_experiment_ids())
    def test_every_runner_accepts_or_filters_workers(self, experiment_id):
        """Registry-level contract behind ``run all --workers``: each runner
        either declares the ``workers`` kwarg or the registry filters it out,
        so the call the CLI would make never raises ``TypeError``.  (The
        end-to-end CLI pass with ``--workers`` is the smoke test above.)"""
        import inspect

        from repro.experiments.registry import _OPTIONAL_SWEEP_KWARGS, get_experiment

        assert "workers" in _OPTIONAL_SWEEP_KWARGS
        parameters = inspect.signature(get_experiment(experiment_id)).parameters
        accepts = "workers" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        # Either outcome is fine; the registry must only filter when the
        # runner would reject the kwarg.
        if not accepts:
            assert experiment_id in {
                "section3-kstaleness",
                "section3-monotonic",
                "section3-load",
                "table1-2-3",
                "table3-refit",
                # The adaptive-recovery loop harvests trace logs block by
                # block in commit order, so it is serial by design.
                "recovery",
            }, f"{experiment_id} silently loses --workers; add the kwarg to its runner"

    def test_cli_workers_match_serial_results(self, capsys, workers):
        """A sweep large enough to engage the process pool produces the same
        table the serial run prints."""
        argv = [
            "run",
            "figure4",
            "--trials",
            "20000",
            "--seed",
            "3",
            "--chunk-size",
            "8192",
        ]
        assert main(argv) == 0
        serial_output = capsys.readouterr().out
        assert main(argv + ["--workers", str(workers)]) == 0
        assert capsys.readouterr().out == serial_output

    def test_cli_validation_accepts_workers_trials_and_draw_batch_size(
        self, capsys, workers
    ):
        """The §5.2 validation experiment takes --workers/--trials/--draw-batch-size
        through the registry filter (PR 2-style smoke test for the sharded
        cluster runs): sharded and serial-blocked results must render the
        same table for any worker count."""
        argv = [
            "run",
            "validation",
            "--trials",
            "60",
            "--seed",
            "5",
            "--draw-batch-size",
            "256",
        ]
        assert main(argv + ["--workers", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert serial_output.startswith("== ")
        assert main(argv + ["--workers", str(workers)]) == 0
        assert capsys.readouterr().out == serial_output

    def test_cli_validation_draw_batch_size_one_runs_legacy_stream(self, capsys):
        assert (
            main(
                [
                    "run",
                    "validation",
                    "--trials",
                    "40",
                    "--draw-batch-size",
                    "1",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.startswith("== ")

    def test_cli_predict_accepts_workers(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "--fit",
                    "LNKD-SSD",
                    "--trials",
                    "5000",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        assert "P(consistent read immediately after commit)" in capsys.readouterr().out

    def test_registry_drops_workers_for_closed_form_runners(self, capsys):
        assert main(["run", "section3-kstaleness", "--workers", "4"]) == 0
        assert "k-staleness" in capsys.readouterr().out

    @pytest.mark.parametrize("experiment_id", _registered_experiment_ids())
    def test_every_runner_accepts_or_filters_probe_resolution(self, experiment_id):
        """Registry-level contract behind ``run all --probe-resolution-ms``:
        every Monte Carlo sweep runner declares the kwarg; closed-form and
        cluster runners have it filtered by the registry."""
        import inspect

        from repro.experiments.registry import _OPTIONAL_SWEEP_KWARGS, get_experiment

        assert "probe_resolution_ms" in _OPTIONAL_SWEEP_KWARGS
        parameters = inspect.signature(get_experiment(experiment_id)).parameters
        accepts = "probe_resolution_ms" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        if not accepts:
            assert experiment_id in {
                "section3-kstaleness",
                "section3-monotonic",
                "section3-load",
                "table1-2-3",
                "table3-refit",
                "validation",
                # analytic-validation compares analytic vs Monte Carlo on a
                # *fixed* probe grid by construction; adaptive refinement
                # would change the oracle's grid, not the comparison.
                "analytic-validation",
                # Scenario divergence bins measured staleness directly; there
                # is no probe grid to refine.
                "scenario",
                "scenarios",
                "recovery",
            }, (
                f"{experiment_id} silently loses --probe-resolution-ms; "
                "add the kwarg to its runner"
            )

    def test_cli_probe_resolution_refines_t_visibility(self, capsys):
        """table4 accepts the flag end-to-end, and the adaptive grid actually
        changes (sharpens) the t-visibility column relative to the sketch.

        The trial count must span several chunks: refinement proposes probes
        at chunk boundaries and activates them REFINE_ACTIVATION_LAG chunks
        later, so a sweep that fits in a couple of chunks never grows probes.
        """
        argv = ["run", "table4", "--trials", "60000", "--chunk-size", "8192"]
        assert main(argv) == 0
        sketch_output = capsys.readouterr().out
        assert main(argv + ["--probe-resolution-ms", "1"]) == 0
        adaptive_output = capsys.readouterr().out
        assert "t_visibility_99.9_ms" in adaptive_output
        # Same trials, same seeds: latency columns are untouched, but the
        # adaptive run inverts exact probe brackets instead of the histogram.
        assert adaptive_output != sketch_output

    def test_cli_predict_probe_resolution_refines_the_report(self, capsys):
        """predict accepts the flag end-to-end with a budget large enough for
        refinement to activate (several chunks past the activation lag), and
        the refined report differs from the sketch-based one."""
        argv = [
            "predict",
            "--fit",
            "LNKD-DISK",
            "--trials",
            "60000",
            "--chunk-size",
            "8192",
        ]
        assert main(argv) == 0
        sketch_output = capsys.readouterr().out
        assert main(argv + ["--probe-resolution-ms", "0.5"]) == 0
        adaptive_output = capsys.readouterr().out
        assert "t-visibility for 99.9%" in adaptive_output
        # Same seed and trials: only the t-visibility inversion changes
        # (union-grid brackets instead of the threshold histogram).
        assert adaptive_output != sketch_output
        # This budget cannot reach 0.5 ms; the CLI must say what it achieved
        # rather than implying the requested resolution was met.
        assert "note: the 99.9% crossing was bracketed to" in adaptive_output

    def test_cli_probe_resolution_ignored_by_closed_form_runners(self, capsys):
        assert main(["run", "section3-kstaleness", "--probe-resolution-ms", "1"]) == 0
        assert "k-staleness" in capsys.readouterr().out

    def test_cli_forwards_sweep_knobs_to_supporting_runners(self, capsys):
        assert (
            main(
                [
                    "run",
                    "table4",
                    "--trials",
                    "20000",
                    "--chunk-size",
                    "8192",
                    "--tolerance",
                    "0.05",
                ]
            )
            == 0
        )
        assert "t_visibility_99.9_ms" in capsys.readouterr().out

    def test_cli_sweep_knobs_ignored_by_closed_form_runners(self, capsys):
        # Closed-form experiments have no sweep to tune; the registry drops
        # the knobs instead of crashing `run all`-style invocations.
        assert main(["run", "section3-kstaleness", "--tolerance", "0.01"]) == 0
        assert "k-staleness" in capsys.readouterr().out

    def test_registry_still_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError):
            run_experiment("section3-kstaleness", bogus_kwarg=1)


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "figure6", "--trials", "1000"])
        assert args.command == "run" and args.trials == 1000

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure6" in output and "table4" in output

    def test_run_command_prints_table(self, capsys):
        assert main(["run", "section3-kstaleness"]) == 0
        output = capsys.readouterr().out
        assert "Closed-form PBS k-staleness" in output

    def test_run_unknown_experiment_errors(self, capsys):
        assert main(["run", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_predict_command(self, capsys):
        assert main(
            ["predict", "--fit", "LNKD-SSD", "--n", "3", "--r", "1", "--w", "1", "--trials", "5000"]
        ) == 0
        output = capsys.readouterr().out
        assert "P(consistent read immediately after commit)" in output

    def test_predict_invalid_config_errors(self, capsys):
        assert main(["predict", "--n", "3", "--r", "4", "--w", "1", "--trials", "5000"]) == 1
        assert "error:" in capsys.readouterr().err
