"""The documentation's Python examples must execute.

Each fenced ```python block in README.md and docs/architecture.md runs as
its own test case, via the same extractor the CI docs job uses
(``tools/check_docs.py``).  Examples are written with small trial counts so
this stays tier-1 fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from check_docs import DOC_FILES, iter_code_blocks, run_block  # noqa: E402

_BLOCKS = list(iter_code_blocks())


def test_documentation_files_exist_and_contain_examples():
    for relative in DOC_FILES:
        assert (Path(__file__).resolve().parent.parent / relative).is_file()
    assert _BLOCKS, "documentation must carry executable python examples"


@pytest.mark.parametrize("block", _BLOCKS, ids=[block.label for block in _BLOCKS])
def test_documentation_block_executes(block):
    run_block(block)
