"""Plain-text table rendering for experiment output.

The benchmark harness and CLI print the paper's tables and figure series as
aligned text so results can be diffed across runs without any plotting
dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import AnalysisError

__all__ = ["format_table", "format_curve", "format_kv"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a list of row mappings as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Missing values render as ``-``.
    """
    if not rows:
        raise AnalysisError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    header = list(columns)
    body = [[_format_cell(row.get(column, "-"), precision) for column in header] for row in rows]
    widths = [
        max(len(header[i]), max(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_curve(
    points: Sequence[tuple[float, float]],
    x_label: str = "t_ms",
    y_label: str = "p_consistent",
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], precision=precision, title=title)


def format_kv(pairs: Mapping[str, object], precision: int = 3, title: str | None = None) -> str:
    """Render a mapping as aligned ``key: value`` lines."""
    if not pairs:
        raise AnalysisError("cannot format an empty key-value block")
    width = max(len(key) for key in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_format_cell(value, precision)}")
    return "\n".join(lines)
