"""Statistical helpers shared by the analysis and experiment code.

The fitting-oriented metrics (RMSE, N-RMSE, percentile tables) live in
:mod:`repro.latency.percentiles`; this module re-exports them for convenience
and adds the aggregate helpers used when comparing measured and predicted
behaviour (empirical CDFs, binned means, bootstrap confidence intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.latency.base import as_rng
from repro.latency.percentiles import normalized_rmse, percentile_table, rmse

__all__ = [
    "rmse",
    "normalized_rmse",
    "percentile_table",
    "empirical_cdf",
    "binned_fraction",
    "bootstrap_mean_interval",
    "BinnedSeries",
]


def empirical_cdf(samples: Sequence[float], grid: Sequence[float]) -> list[tuple[float, float]]:
    """``(x, P(sample <= x))`` for each grid point."""
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise AnalysisError("cannot compute a CDF from an empty sample")
    points = np.asarray(list(grid), dtype=float)
    fractions = np.searchsorted(data, points, side="right") / data.size
    return [(float(x), float(f)) for x, f in zip(points, fractions)]


@dataclass(frozen=True)
class BinnedSeries:
    """A fraction-of-successes series over bins of an explanatory variable."""

    bin_edges: tuple[float, ...]
    bin_centers: tuple[float, ...]
    fractions: tuple[float, ...]
    counts: tuple[int, ...]

    def as_rows(self) -> list[dict[str, float]]:
        """Rows with bin center, success fraction, and sample count."""
        return [
            {"bin_center": center, "fraction": fraction, "count": float(count)}
            for center, fraction, count in zip(self.bin_centers, self.fractions, self.counts)
        ]


def binned_fraction(
    x_values: Sequence[float],
    successes: Sequence[bool],
    bin_edges: Sequence[float],
) -> BinnedSeries:
    """Fraction of successes per bin of ``x_values``.

    Bins with no observations report a fraction of ``nan`` so callers can skip
    them rather than silently treating them as zero.
    """
    xs = np.asarray(x_values, dtype=float)
    wins = np.asarray(successes, dtype=bool)
    if xs.shape != wins.shape:
        raise AnalysisError("x values and successes must have the same length")
    edges = np.asarray(list(bin_edges), dtype=float)
    if edges.size < 2 or np.any(np.diff(edges) <= 0):
        raise AnalysisError("bin edges must be strictly increasing with at least two values")
    indices = np.digitize(xs, edges) - 1
    centers = (edges[:-1] + edges[1:]) / 2.0
    fractions: list[float] = []
    counts: list[int] = []
    for bin_index in range(edges.size - 1):
        mask = indices == bin_index
        count = int(np.sum(mask))
        counts.append(count)
        fractions.append(float(np.mean(wins[mask])) if count else float("nan"))
    return BinnedSeries(
        bin_edges=tuple(float(e) for e in edges),
        bin_centers=tuple(float(c) for c in centers),
        fractions=tuple(fractions),
        counts=tuple(counts),
    )


def bootstrap_mean_interval(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float, float]:
    """``(mean, lower, upper)`` bootstrap confidence interval for the mean."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    generator = as_rng(rng)
    means = np.array(
        [
            float(np.mean(generator.choice(data, size=data.size, replace=True)))
            for _ in range(resamples)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.mean(data)),
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )
