"""Exporting experiment results to CSV and JSON.

The benchmark harness and CLI print plain-text tables; downstream users often
want machine-readable artifacts instead (to plot the figures, diff runs in CI,
or archive alongside EXPERIMENTS.md).  These helpers serialise
:class:`~repro.experiments.registry.ExperimentResult` objects and raw row
lists without requiring any dependency beyond the standard library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.exceptions import AnalysisError

__all__ = ["rows_to_csv", "rows_to_json", "export_result", "load_rows_json"]


def _normalise_value(value: object) -> object:
    """Convert row values to JSON/CSV-friendly primitives (recursing into containers)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_normalise_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _normalise_value(item) for key, item in value.items()}
    return str(value)


def _collect_columns(rows: Sequence[Mapping[str, object]]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write rows to a CSV file (columns are the union of row keys, in first-seen order)."""
    if not rows:
        raise AnalysisError("cannot export an empty row set")
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    columns = _collect_columns(rows)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _normalise_value(value) for key, value in row.items()})
    return destination


def rows_to_json(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write rows (plus optional metadata) to a JSON file."""
    if not rows:
        raise AnalysisError("cannot export an empty row set")
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "metadata": {key: _normalise_value(value) for key, value in (metadata or {}).items()},
        "rows": [
            {key: _normalise_value(value) for key, value in row.items()} for row in rows
        ],
    }
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def export_result(result, directory: str | Path, formats: Sequence[str] = ("csv", "json")) -> list[Path]:
    """Export an :class:`ExperimentResult` to ``<directory>/<experiment_id>.{csv,json}``.

    Returns the list of files written.  ``result`` is typed loosely to avoid an
    import cycle with the experiments package; any object with
    ``experiment_id``, ``title``, ``paper_artifact``, ``rows``, and ``notes``
    attributes works.
    """
    if not formats:
        raise AnalysisError("at least one export format is required")
    output_directory = Path(directory)
    written: list[Path] = []
    for fmt in formats:
        if fmt == "csv":
            written.append(
                rows_to_csv(result.rows, output_directory / f"{result.experiment_id}.csv")
            )
        elif fmt == "json":
            written.append(
                rows_to_json(
                    result.rows,
                    output_directory / f"{result.experiment_id}.json",
                    metadata={
                        "experiment_id": result.experiment_id,
                        "title": result.title,
                        "paper_artifact": result.paper_artifact,
                        "notes": list(result.notes),
                    },
                )
            )
        else:
            raise AnalysisError(f"unknown export format {fmt!r}; expected 'csv' or 'json'")
    return written


def load_rows_json(path: str | Path) -> list[dict[str, object]]:
    """Load rows back from a JSON file written by :func:`rows_to_json`."""
    source = Path(path)
    if not source.exists():
        raise AnalysisError(f"no such export file: {source}")
    payload = json.loads(source.read_text())
    rows = payload.get("rows")
    if not isinstance(rows, list):
        raise AnalysisError(f"{source} does not look like an exported result (missing rows)")
    return rows
