"""Measurement and validation: staleness from traces, statistics, table rendering."""

from repro.analysis.export import (
    export_result,
    load_rows_json,
    rows_to_csv,
    rows_to_json,
)
from repro.analysis.staleness import (
    StalenessFrame,
    StalenessObservation,
    consistency_by_time,
    k_staleness_fraction,
    measured_t_visibility,
    observe_staleness,
    observe_staleness_frame,
    operation_latencies,
    version_lags,
)
from repro.analysis.statistics import (
    BinnedSeries,
    binned_fraction,
    bootstrap_mean_interval,
    empirical_cdf,
    normalized_rmse,
    percentile_table,
    rmse,
)
from repro.analysis.tables import format_curve, format_kv, format_table
from repro.analysis.validation import ValidationResult, run_validation
from repro.analysis.windows import prefix_dominance_counts

__all__ = [
    "export_result",
    "load_rows_json",
    "rows_to_csv",
    "rows_to_json",
    "StalenessFrame",
    "StalenessObservation",
    "consistency_by_time",
    "k_staleness_fraction",
    "measured_t_visibility",
    "observe_staleness",
    "observe_staleness_frame",
    "operation_latencies",
    "version_lags",
    "BinnedSeries",
    "binned_fraction",
    "bootstrap_mean_interval",
    "empirical_cdf",
    "normalized_rmse",
    "percentile_table",
    "rmse",
    "format_curve",
    "format_kv",
    "format_table",
    "ValidationResult",
    "run_validation",
    "prefix_dominance_counts",
]
