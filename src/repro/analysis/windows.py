"""Vectorized prefix-window queries over columns.

The columnar staleness pass (:func:`repro.analysis.staleness.observe_staleness`)
needs one non-trivial primitive: for each read it must count how many of the
writes committed *before the read started* (a prefix of the commit-ordered
version column) carry versions no newer than the version the read returned
(a per-read threshold).  Done naively that is an O(W) scan per read — the
very cost the Fenwick-tree oracle exists to avoid, but the Fenwick tree is an
inherently serial Python loop.

:func:`prefix_dominance_counts` answers all reads at once with a dyadic
merge tree: the value column is padded to a power of two and sorted inside
aligned blocks of every size ``2^k``; each query prefix ``[0, P)`` decomposes
into at most ``log2 N`` such blocks, and a block contributes the number of its
entries at or below the threshold via one ``searchsorted``.  Because block
starts increase with flat position, a single composite key
``block_index * M + rank`` keeps each level's blocks globally sorted, so every
level is answered for *all* queries with one vectorized ``searchsorted`` —
O((N + Q) log N) work with no Python-level per-query loop.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["prefix_dominance_counts"]


def prefix_dominance_counts(
    values: np.ndarray, prefixes: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """For each query ``j``, count ``{i < prefixes[j] : values[i] <= thresholds[j]}``.

    Parameters
    ----------
    values:
        The column being queried, in prefix order (for the staleness pass:
        encoded versions in commit-time order).
    prefixes:
        Per-query prefix lengths, each in ``[0, len(values)]``.
    thresholds:
        Per-query inclusive upper bounds, compared against ``values``.

    Returns
    -------
    An ``int64`` array of per-query counts, aligned with ``prefixes``.
    """
    values = np.asarray(values)
    prefixes = np.asarray(prefixes, dtype=np.int64)
    thresholds = np.asarray(thresholds)
    if prefixes.shape != thresholds.shape:
        raise AnalysisError(
            f"prefixes and thresholds must align, got {prefixes.shape} vs {thresholds.shape}"
        )
    counts = np.zeros(prefixes.shape[0], dtype=np.int64)
    total = values.shape[0]
    if total == 0 or prefixes.shape[0] == 0:
        return counts
    if prefixes.min() < 0 or prefixes.max() > total:
        raise AnalysisError(f"prefixes must lie in [0, {total}]")

    # Rank-compress so thresholds become integer ranks: the count of values
    # <= threshold equals the count of ranks <= rank(threshold).
    unique = np.unique(values)
    ranks = np.searchsorted(unique, values)
    threshold_ranks = np.searchsorted(unique, thresholds, side="right") - 1

    # Pad to a power of two with a sentinel rank no threshold can reach.
    levels = max(1, int(total - 1).bit_length())
    padded_size = 1 << levels
    sentinel = unique.shape[0]
    padded = np.full(padded_size, sentinel, dtype=np.int64)
    padded[:total] = ranks
    modulus = sentinel + 1

    # Walk each query's prefix decomposition from the widest block down,
    # answering one level for every query with a single searchsorted.
    starts = np.zeros_like(prefixes)
    for level in range(levels, -1, -1):
        block = 1 << level
        active = np.flatnonzero((prefixes >> level) & 1)
        if active.shape[0]:
            sorted_blocks = np.sort(padded.reshape(-1, block), axis=1)
            flat = sorted_blocks.ravel() + np.repeat(
                np.arange(sorted_blocks.shape[0], dtype=np.int64) * modulus, block
            )
            rows = starts[active] >> level
            positions = np.searchsorted(
                flat, rows * modulus + threshold_ranks[active], side="right"
            )
            counts[active] += positions - rows * block
            starts[active] += block
    return counts
