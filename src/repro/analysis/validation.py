"""Predicted-vs-observed validation of the WARS model (paper §5.2).

The paper validates its Monte Carlo predictor by running an instrumented
Cassandra cluster with known (exponential) message-latency distributions,
measuring staleness and operation latency, and comparing against predictions:
average t-visibility RMSE of 0.28% and latency N-RMSE of 0.48%.

:func:`run_validation` reproduces that experiment against the
:class:`~repro.cluster.store.DynamoCluster` substrate: the *same* WARS
distributions drive both the cluster simulator (per-message delays) and the
analytical predictor, the cluster runs the single-key overwrite workload, and
the two consistency curves / latency percentile sets are compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.staleness import (
    StalenessObservation,
    consistency_by_time,
    observe_staleness,
    operation_latencies,
)
from repro.analysis.statistics import rmse
from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import AnalysisError
from repro.latency.base import as_rng
from repro.latency.percentiles import normalized_rmse
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload

__all__ = ["ValidationResult", "run_validation"]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one predicted-vs-observed comparison."""

    config: ReplicaConfig
    #: Time-bin centres (ms) where the consistency curves were compared.
    bin_centers_ms: tuple[float, ...]
    measured_consistency: tuple[float, ...]
    predicted_consistency: tuple[float, ...]
    #: RMSE between measured and predicted probability-of-consistency curves.
    consistency_rmse: float
    #: N-RMSE between measured and predicted read latency percentiles.
    read_latency_nrmse: float
    #: N-RMSE between measured and predicted write latency percentiles.
    write_latency_nrmse: float
    observations: int

    def summary_lines(self) -> list[str]:
        """Human-readable validation summary."""
        return [
            f"configuration: {self.config.label()}",
            f"staleness observations: {self.observations}",
            f"consistency curve RMSE: {self.consistency_rmse * 100:.2f}%",
            f"read latency N-RMSE: {self.read_latency_nrmse * 100:.2f}%",
            f"write latency N-RMSE: {self.write_latency_nrmse * 100:.2f}%",
        ]


def _compare_curves(
    observations: Sequence[StalenessObservation],
    predicted_result,
    bin_edges: Sequence[float],
) -> tuple[list[float], list[float], list[float]]:
    """Bin measured observations and evaluate the prediction at the bin centres."""
    binned = consistency_by_time(observations, bin_edges)
    centers: list[float] = []
    measured: list[float] = []
    predicted: list[float] = []
    for center, fraction, count in zip(binned.bin_centers, binned.fractions, binned.counts):
        if count == 0 or not np.isfinite(fraction):
            continue
        centers.append(center)
        measured.append(fraction)
        predicted.append(predicted_result.consistency_probability(max(center, 0.0)))
    if not centers:
        raise AnalysisError("no populated time bins; widen the bin edges or add reads")
    return centers, measured, predicted


def run_validation(
    distributions: WARSDistributions,
    config: ReplicaConfig,
    writes: int = 500,
    write_interval_ms: float = 100.0,
    read_offsets_ms: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0),
    prediction_trials: int = 100_000,
    latency_percentiles: Sequence[float] = tuple(float(p) for p in range(1, 100)),
    bin_width_ms: float = 5.0,
    rng: np.random.Generator | int | None = 0,
) -> ValidationResult:
    """Run the §5.2 validation experiment for one configuration.

    The cluster overwrites a single key ``writes`` times, issuing reads at the
    given offsets after each write; the WARS predictor is evaluated with the
    same latency distributions; and the consistency curves plus latency
    percentiles are compared.
    """
    if writes < 10:
        raise AnalysisError(f"at least 10 writes are required for validation, got {writes}")
    generator = as_rng(rng)

    # --- Measured side: run the workload on the discrete-event cluster. ---
    cluster = DynamoCluster(config=config, distributions=distributions, rng=generator)
    operations = validation_workload(
        key="validation-key",
        writes=writes,
        write_interval_ms=write_interval_ms,
        read_offsets_ms=read_offsets_ms,
    )
    WorkloadRunner(cluster).run(operations)
    observations = observe_staleness(cluster.trace_log, key="validation-key")
    if not observations:
        raise AnalysisError("the validation workload produced no staleness observations")
    measured_reads, measured_writes = operation_latencies(cluster.trace_log)

    # --- Predicted side: WARS Monte Carlo with the same distributions. ---
    predictor = WARSModel(distributions=distributions, config=config)
    predicted_result = predictor.sample(prediction_trials, generator)

    max_t = max(obs.t_since_commit_ms for obs in observations)
    bin_edges = np.arange(0.0, max_t + bin_width_ms, bin_width_ms)
    if bin_edges.size < 2:
        bin_edges = np.array([0.0, max(max_t, bin_width_ms)])
    centers, measured_curve, predicted_curve = _compare_curves(
        observations, predicted_result, bin_edges
    )

    predicted_read_percentiles = [
        predicted_result.read_latency_percentile(p) for p in latency_percentiles
    ]
    predicted_write_percentiles = [
        predicted_result.write_latency_percentile(p) for p in latency_percentiles
    ]
    measured_read_percentiles = list(np.percentile(measured_reads, list(latency_percentiles)))
    measured_write_percentiles = list(
        np.percentile(measured_writes, list(latency_percentiles))
    )

    return ValidationResult(
        config=config,
        bin_centers_ms=tuple(centers),
        measured_consistency=tuple(measured_curve),
        predicted_consistency=tuple(predicted_curve),
        consistency_rmse=rmse(predicted_curve, measured_curve),
        read_latency_nrmse=normalized_rmse(
            predicted_read_percentiles, measured_read_percentiles
        ),
        write_latency_nrmse=normalized_rmse(
            predicted_write_percentiles, measured_write_percentiles
        ),
        observations=len(observations),
    )
