"""Predicted-vs-observed validation of the WARS model (paper §5.2).

The paper validates its Monte Carlo predictor by running an instrumented
Cassandra cluster with known (exponential) message-latency distributions,
measuring staleness and operation latency, and comparing against predictions:
average t-visibility RMSE of 0.28% and latency N-RMSE of 0.48%.

:func:`run_validation` reproduces that experiment against the
:class:`~repro.cluster.store.DynamoCluster` substrate: the *same* WARS
distributions drive both the cluster simulator (per-message delays) and the
analytical predictor, the cluster runs the single-key overwrite workload, and
the two consistency curves / latency percentile sets are compared.

Sharded runs
------------
The paper's 50,000 writes per latency combination make a serial simulation
the bottleneck of a full grid, so ``workers=`` farms *blocks* of writes to a
process pool: the workload is split into independent blocks of
:data:`VALIDATION_BLOCK_WRITES` writes, each block runs its own cluster with
a seed spawned from one root :class:`numpy.random.SeedSequence`, and the
per-block staleness observations and operation latencies are merged in block
order.  The block structure depends only on ``writes`` (never on
``workers``), so results are **bit-for-bit identical for any worker count**,
mirroring the sweep-engine merge contract of
:mod:`repro.montecarlo.engine`.  ``workers=None`` (the default) preserves
the historical single-cluster path, where one generator drives the whole
workload sequentially.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.staleness import (
    StalenessObservation,
    consistency_by_time,
    observe_staleness,
    operation_latencies,
)
from repro.analysis.statistics import rmse
from repro.cluster.client import WorkloadRunner
from repro.cluster.sampling import DEFAULT_DRAW_BATCH_SIZE
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import AnalysisError
from repro.kernels import jit_has_run, pin_worker_threads
from repro.latency.base import as_rng
from repro.latency.percentiles import normalized_rmse
from repro.latency.production import WARSDistributions
from repro.workloads.operations import validation_workload

__all__ = ["ValidationResult", "run_validation", "VALIDATION_BLOCK_WRITES"]

#: Writes per independent simulation block in sharded validation runs.  Fixed
#: (rather than derived from the worker count) so the block structure — and
#: therefore every merged result — is identical for any ``workers`` value.
VALIDATION_BLOCK_WRITES = 5_000


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one predicted-vs-observed comparison."""

    config: ReplicaConfig
    #: Time-bin centres (ms) where the consistency curves were compared.
    bin_centers_ms: tuple[float, ...]
    measured_consistency: tuple[float, ...]
    predicted_consistency: tuple[float, ...]
    #: RMSE between measured and predicted probability-of-consistency curves.
    consistency_rmse: float
    #: N-RMSE between measured and predicted read latency percentiles.
    read_latency_nrmse: float
    #: N-RMSE between measured and predicted write latency percentiles.
    write_latency_nrmse: float
    observations: int

    def summary_lines(self) -> list[str]:
        """Human-readable validation summary."""
        return [
            f"configuration: {self.config.label()}",
            f"staleness observations: {self.observations}",
            f"consistency curve RMSE: {self.consistency_rmse * 100:.2f}%",
            f"read latency N-RMSE: {self.read_latency_nrmse * 100:.2f}%",
            f"write latency N-RMSE: {self.write_latency_nrmse * 100:.2f}%",
        ]


def _compare_curves(
    observations: Sequence[StalenessObservation],
    predicted_result,
    bin_edges: Sequence[float],
) -> tuple[list[float], list[float], list[float]]:
    """Bin measured observations and evaluate the prediction at the bin centres."""
    binned = consistency_by_time(observations, bin_edges)
    centers: list[float] = []
    measured: list[float] = []
    predicted: list[float] = []
    for center, fraction, count in zip(binned.bin_centers, binned.fractions, binned.counts):
        if count == 0 or not np.isfinite(fraction):
            continue
        centers.append(center)
        measured.append(fraction)
        predicted.append(predicted_result.consistency_probability(max(center, 0.0)))
    if not centers:
        raise AnalysisError("no populated time bins; widen the bin edges or add reads")
    return centers, measured, predicted


# ---------------------------------------------------------------------------
# Sharded measurement: independent blocks of writes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ValidationBlockSpec:
    """Picklable description of one independent simulation block."""

    distributions: WARSDistributions
    config: ReplicaConfig
    writes: int
    write_interval_ms: float
    read_offsets_ms: tuple[float, ...]
    seed: np.random.SeedSequence
    draw_batch_size: int
    trace_backend: str = "columnar"


def _run_validation_block(
    spec: _ValidationBlockSpec,
) -> tuple[list[StalenessObservation], np.ndarray, np.ndarray]:
    """Run one block's cluster workload and extract its measurements.

    Module-level so both fork and spawn pools can pickle it (the engine's
    spawn-after-JIT rule applies here too).
    """
    cluster = DynamoCluster(
        config=spec.config,
        distributions=spec.distributions,
        rng=np.random.default_rng(spec.seed),
        draw_batch_size=spec.draw_batch_size,
        trace_backend=spec.trace_backend,
    )
    operations = validation_workload(
        key="validation-key",
        writes=spec.writes,
        write_interval_ms=spec.write_interval_ms,
        read_offsets_ms=spec.read_offsets_ms,
    )
    WorkloadRunner(cluster).run(operations)
    observations = observe_staleness(cluster.trace_log, key="validation-key")
    measured_reads, measured_writes = operation_latencies(cluster.trace_log)
    return observations, measured_reads, measured_writes


def _block_sizes(writes: int, block_writes: int) -> list[int]:
    """Split ``writes`` into block sizes; a tail below 10 writes merges back."""
    count = math.ceil(writes / block_writes)
    sizes = [block_writes] * (count - 1)
    tail = writes - block_writes * (count - 1)
    if tail < 10 and sizes:
        sizes[-1] += tail
    else:
        sizes.append(tail)
    return sizes


def _root_entropy(rng: np.random.Generator | int | None) -> int | None:
    """Derive the root seed for block spawning from any accepted ``rng`` form.

    An integer seed is used directly; a generator contributes one draw (so
    repeated calls sharing a generator — e.g. grid cells — get distinct but
    reproducible roots); ``None`` stays ``None`` (fresh OS entropy).
    """
    if rng is None:
        return None
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63))
    return int(rng)


def _measure_sharded(
    distributions: WARSDistributions,
    config: ReplicaConfig,
    writes: int,
    write_interval_ms: float,
    read_offsets_ms: tuple[float, ...],
    root: np.random.SeedSequence,
    block_writes: int,
    draw_batch_size: int,
    workers: int,
    trace_backend: str,
) -> tuple[list[StalenessObservation], np.ndarray, np.ndarray]:
    """Run the measured side as independent blocks, serially or on a pool."""
    sizes = _block_sizes(writes, block_writes)
    seeds = root.spawn(len(sizes))
    specs = [
        _ValidationBlockSpec(
            distributions=distributions,
            config=config,
            writes=size,
            write_interval_ms=write_interval_ms,
            read_offsets_ms=tuple(read_offsets_ms),
            seed=seed,
            draw_batch_size=draw_batch_size,
            trace_backend=trace_backend,
        )
        for size, seed in zip(sizes, seeds)
    ]
    if workers > 1 and len(specs) > 1:
        # Same pool discipline as the sweep engine: pin per-worker thread
        # pools, and use spawn once a JIT kernel has run in this process
        # (numba threading layers are not fork-safe).
        if not jit_has_run() and "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context("spawn")
        with context.Pool(
            processes=min(workers, len(specs)),
            initializer=pin_worker_threads,
            initargs=(workers,),
        ) as pool:
            results = pool.map(_run_validation_block, specs, chunksize=1)
    else:
        results = [_run_validation_block(spec) for spec in specs]

    observations: list[StalenessObservation] = []
    read_blocks: list[np.ndarray] = []
    write_blocks: list[np.ndarray] = []
    for block_observations, block_reads, block_writes_lat in results:
        observations.extend(block_observations)
        read_blocks.append(block_reads)
        write_blocks.append(block_writes_lat)
    return observations, np.concatenate(read_blocks), np.concatenate(write_blocks)


def run_validation(
    distributions: WARSDistributions,
    config: ReplicaConfig,
    writes: int = 500,
    write_interval_ms: float = 100.0,
    read_offsets_ms: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0),
    prediction_trials: int = 100_000,
    latency_percentiles: Sequence[float] = tuple(float(p) for p in range(1, 100)),
    bin_width_ms: float = 5.0,
    rng: np.random.Generator | int | None = 0,
    workers: int | None = None,
    block_writes: int | None = None,
    draw_batch_size: int = DEFAULT_DRAW_BATCH_SIZE,
    trace_backend: str = "columnar",
) -> ValidationResult:
    """Run the §5.2 validation experiment for one configuration.

    The cluster overwrites a single key ``writes`` times, issuing reads at the
    given offsets after each write; the WARS predictor is evaluated with the
    same latency distributions; and the consistency curves plus latency
    percentiles are compared.

    Args:
        workers: ``None`` (default) runs the historical single-cluster serial
            path.  Any integer >= 1 switches to the *blocked* path — writes
            split into :data:`VALIDATION_BLOCK_WRITES`-write blocks with
            SeedSequence-spawned seeds — and values > 1 additionally farm the
            blocks to a process pool.  Blocked results are bit-for-bit
            identical for any ``workers`` value.
        block_writes: Override the block size (implies the blocked path).
        draw_batch_size: Network draw-buffer size for the cluster(s);
            ``1`` reproduces the legacy per-message sampling stream.
        trace_backend: ``"columnar"`` (default) or ``"object"`` trace storage
            for the cluster(s); both yield identical results — the object
            backend is the equivalence oracle the conformance tests pin.
    """
    if writes < 10:
        raise AnalysisError(f"at least 10 writes are required for validation, got {writes}")
    if workers is not None and workers < 1:
        raise AnalysisError(f"workers must be >= 1, got {workers}")
    if block_writes is not None and block_writes < 10:
        raise AnalysisError(f"block_writes must be >= 10, got {block_writes}")

    sharded = workers is not None or block_writes is not None
    if sharded:
        root = np.random.SeedSequence(_root_entropy(rng))
        # Reserve a dedicated child for the predictor before the block seeds
        # so measured and predicted streams are independent.
        predictor_seed, blocks_root = root.spawn(2)
        observations, measured_reads, measured_writes = _measure_sharded(
            distributions=distributions,
            config=config,
            writes=writes,
            write_interval_ms=write_interval_ms,
            read_offsets_ms=tuple(read_offsets_ms),
            root=blocks_root,
            block_writes=block_writes or VALIDATION_BLOCK_WRITES,
            draw_batch_size=draw_batch_size,
            workers=workers or 1,
            trace_backend=trace_backend,
        )
        predictor_rng = np.random.default_rng(predictor_seed)
    else:
        generator = as_rng(rng)
        cluster = DynamoCluster(
            config=config,
            distributions=distributions,
            rng=generator,
            draw_batch_size=draw_batch_size,
            trace_backend=trace_backend,
        )
        operations = validation_workload(
            key="validation-key",
            writes=writes,
            write_interval_ms=write_interval_ms,
            read_offsets_ms=read_offsets_ms,
        )
        WorkloadRunner(cluster).run(operations)
        observations = observe_staleness(cluster.trace_log, key="validation-key")
        measured_reads, measured_writes = operation_latencies(cluster.trace_log)
        predictor_rng = generator

    if not observations:
        raise AnalysisError("the validation workload produced no staleness observations")

    # --- Predicted side: WARS Monte Carlo with the same distributions. ---
    predictor = WARSModel(distributions=distributions, config=config)
    predicted_result = predictor.sample(prediction_trials, predictor_rng)

    max_t = max(obs.t_since_commit_ms for obs in observations)
    bin_edges = np.arange(0.0, max_t + bin_width_ms, bin_width_ms)
    if bin_edges.size < 2:
        bin_edges = np.array([0.0, max(max_t, bin_width_ms)])
    centers, measured_curve, predicted_curve = _compare_curves(
        observations, predicted_result, bin_edges
    )

    predicted_read_percentiles = [
        predicted_result.read_latency_percentile(p) for p in latency_percentiles
    ]
    predicted_write_percentiles = [
        predicted_result.write_latency_percentile(p) for p in latency_percentiles
    ]
    measured_read_percentiles = list(np.percentile(measured_reads, list(latency_percentiles)))
    measured_write_percentiles = list(
        np.percentile(measured_writes, list(latency_percentiles))
    )

    return ValidationResult(
        config=config,
        bin_centers_ms=tuple(centers),
        measured_consistency=tuple(measured_curve),
        predicted_consistency=tuple(predicted_curve),
        consistency_rmse=rmse(predicted_curve, measured_curve),
        read_latency_nrmse=normalized_rmse(
            predicted_read_percentiles, measured_read_percentiles
        ),
        write_latency_nrmse=normalized_rmse(
            predicted_write_percentiles, measured_write_percentiles
        ),
        observations=len(observations),
    )
