"""Measuring staleness from cluster traces.

These functions turn a :class:`~repro.cluster.tracing.TraceLog` into the
quantities the paper reports:

* **t-visibility** — for every completed read, how long after the latest
  commit did it start, and did it observe that commit?  Binning those
  observations gives the empirical probability-of-consistency curve that the
  §5.2 validation compares against the WARS prediction.
* **k-staleness** — how many committed versions behind was each read?  The
  distribution of version lags validates the Equation 2 closed form.
* **operation latency** — read and write latencies extracted from the traces
  for the latency half of the validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.statistics import BinnedSeries, binned_fraction
from repro.cluster.tracing import TraceLog
from repro.exceptions import AnalysisError

__all__ = [
    "StalenessObservation",
    "observe_staleness",
    "consistency_by_time",
    "measured_t_visibility",
    "version_lags",
    "k_staleness_fraction",
    "operation_latencies",
]


@dataclass(frozen=True)
class StalenessObservation:
    """One read's staleness outcome relative to the latest prior commit."""

    operation_id: int
    key: str
    #: Time between the latest prior commit and the read's start (ms).
    t_since_commit_ms: float
    #: Whether the read returned that latest committed version (or newer).
    consistent: bool
    #: Number of committed versions the returned value lagged behind (0 = fresh).
    version_lag: int


def observe_staleness(trace_log: TraceLog, key: str | None = None) -> list[StalenessObservation]:
    """Extract per-read staleness observations from a trace log.

    Reads that start before any write commits are skipped (there is nothing to
    be stale against).  Reads may return versions newer than the latest commit
    at their start time (in-flight writes); the paper counts these as
    consistent, and so do we.
    """
    observations: list[StalenessObservation] = []
    for read in trace_log.completed_reads(key):
        committed = [
            write
            for write in trace_log.committed_writes(read.key)
            if write.committed_ms <= read.started_ms
        ]
        if not committed:
            continue
        latest = max(committed, key=lambda write: write.version)
        t_since_commit = read.started_ms - latest.committed_ms
        returned = read.returned_version
        consistent = returned is not None and returned >= latest.version
        if consistent:
            lag = 0
        elif returned is None:
            lag = len(committed)
        else:
            lag = sum(1 for write in committed if write.version > returned)
        observations.append(
            StalenessObservation(
                operation_id=read.operation_id,
                key=read.key,
                t_since_commit_ms=float(t_since_commit),
                consistent=consistent,
                version_lag=lag,
            )
        )
    return observations


def consistency_by_time(
    observations: Sequence[StalenessObservation], bin_edges: Sequence[float]
) -> BinnedSeries:
    """Empirical P(consistent read) binned by time since the latest commit."""
    if not observations:
        raise AnalysisError("no staleness observations to bin")
    return binned_fraction(
        [obs.t_since_commit_ms for obs in observations],
        [obs.consistent for obs in observations],
        bin_edges,
    )


def measured_t_visibility(
    observations: Sequence[StalenessObservation], target_probability: float
) -> float:
    """Smallest observed ``t`` beyond which the running consistency fraction meets the target.

    Sorts observations by ``t`` and finds the smallest threshold such that the
    fraction of consistent reads among observations with ``t >= threshold``
    reaches the target.  Returns ``inf`` when even the largest observed ``t``
    does not reach the target.
    """
    if not observations:
        raise AnalysisError("no staleness observations available")
    if not 0.0 < target_probability <= 1.0:
        raise AnalysisError(
            f"target probability must be in (0, 1], got {target_probability}"
        )
    ordered = sorted(observations, key=lambda obs: obs.t_since_commit_ms)
    consistent_flags = np.array([obs.consistent for obs in ordered], dtype=float)
    # Suffix means: fraction consistent among reads with t >= t_i.
    suffix_fraction = np.cumsum(consistent_flags[::-1])[::-1] / np.arange(
        len(ordered), 0, -1
    )
    for observation, fraction in zip(ordered, suffix_fraction):
        if fraction >= target_probability:
            return observation.t_since_commit_ms
    return float("inf")


def version_lags(observations: Sequence[StalenessObservation]) -> np.ndarray:
    """Array of per-read version lags (0 = returned the freshest committed version)."""
    if not observations:
        raise AnalysisError("no staleness observations available")
    return np.array([obs.version_lag for obs in observations], dtype=int)


def k_staleness_fraction(observations: Sequence[StalenessObservation], k: int) -> float:
    """Measured probability that reads were within ``k`` versions of the freshest commit."""
    if k < 1:
        raise AnalysisError(f"version tolerance k must be >= 1, got {k}")
    lags = version_lags(observations)
    return float(np.mean(lags < k))


def operation_latencies(trace_log: TraceLog) -> tuple[np.ndarray, np.ndarray]:
    """``(read_latencies, write_latencies)`` in ms for completed operations."""
    reads = np.array(
        [trace.latency_ms for trace in trace_log.reads if trace.latency_ms is not None],
        dtype=float,
    )
    writes = np.array(
        [
            trace.commit_latency_ms
            for trace in trace_log.writes
            if trace.commit_latency_ms is not None
        ],
        dtype=float,
    )
    if reads.size == 0 and writes.size == 0:
        raise AnalysisError("trace log contains no completed operations")
    return reads, writes
