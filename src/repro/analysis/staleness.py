"""Measuring staleness from cluster traces.

These functions turn a :class:`~repro.cluster.tracing.TraceLog` into the
quantities the paper reports:

* **t-visibility** — for every completed read, how long after the latest
  commit did it start, and did it observe that commit?  Binning those
  observations gives the empirical probability-of-consistency curve that the
  §5.2 validation compares against the WARS prediction.
* **k-staleness** — how many committed versions behind was each read?  The
  distribution of version lags validates the Equation 2 closed form.
* **operation latency** — read and write latencies extracted from the traces
  for the latency half of the validation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.statistics import BinnedSeries, binned_fraction
from repro.analysis.windows import prefix_dominance_counts
from repro.cluster.tracelog import _NO_VERSION, ColumnarTraceLog
from repro.cluster.tracing import TraceLog
from repro.exceptions import AnalysisError

__all__ = [
    "StalenessObservation",
    "StalenessFrame",
    "observe_staleness",
    "observe_staleness_frame",
    "consistency_by_time",
    "measured_t_visibility",
    "version_lags",
    "k_staleness_fraction",
    "operation_latencies",
]


@dataclass(frozen=True, slots=True)
class StalenessObservation:
    """One read's staleness outcome relative to the latest prior commit."""

    operation_id: int
    key: str
    #: Time between the latest prior commit and the read's start (ms).
    t_since_commit_ms: float
    #: Whether the read returned that latest committed version (or newer).
    consistent: bool
    #: Number of committed versions the returned value lagged behind (0 = fresh).
    version_lag: int


@dataclass(frozen=True, slots=True)
class StalenessFrame:
    """Staleness observations as aligned columns — the array-native twin of
    a ``list[StalenessObservation]``.

    The curve functions (:func:`consistency_by_time`,
    :func:`measured_t_visibility`, :func:`version_lags`,
    :func:`k_staleness_fraction`) accept a frame directly, skipping the
    per-observation attribute walks; :meth:`observations` materialises the
    object list when row objects are genuinely needed.
    """

    operation_ids: np.ndarray
    key_ids: np.ndarray
    #: Interned-id → key string table the ``key_ids`` column indexes into.
    key_table: tuple
    t_since_commit_ms: np.ndarray
    consistent: np.ndarray
    version_lag: np.ndarray

    def __len__(self) -> int:
        return int(self.operation_ids.shape[0])

    def observations(self) -> list[StalenessObservation]:
        """Materialise the equivalent ``StalenessObservation`` list."""
        table = self.key_table
        return [
            StalenessObservation(op, table[key_id], t, flag, lag)
            for op, key_id, t, flag, lag in zip(
                self.operation_ids.tolist(),
                self.key_ids.tolist(),
                self.t_since_commit_ms.tolist(),
                self.consistent.tolist(),
                self.version_lag.tolist(),
            )
        ]


class _Fenwick:
    """A Fenwick (binary-indexed) tree counting inserted version ranks."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int) -> None:
        """Count one occurrence of rank ``index`` (0-based)."""
        tree = self.tree
        position = index + 1
        size = self.size
        while position <= size:
            tree[position] += 1
            position += position & -position

    def count_le(self, index: int) -> int:
        """Number of inserted ranks ``<= index`` (0-based; -1 returns 0)."""
        tree = self.tree
        position = index + 1
        total = 0
        while position > 0:
            total += tree[position]
            position -= position & -position
        return total


class _KeyStalenessState:
    """Per-key incremental state for :func:`observe_staleness`.

    Holds the key's committed writes sorted by commit time plus a Fenwick
    tree over version ranks, so processing reads in start-time order needs
    only O(log W) per read instead of re-scanning (and re-sorting) every
    committed write — the difference between minutes and milliseconds at the
    paper's 50,000-writes-per-cell scale.
    """

    __slots__ = (
        "commit_times",
        "versions",
        "sorted_versions",
        "ranks",
        "fenwick",
        "cursor",
        "inserted",
        "max_version",
        "max_version_commit_ms",
    )

    def __init__(self, committed: list) -> None:
        # ``committed`` arrives sorted by committed_ms (TraceLog order).
        self.commit_times = [write.committed_ms for write in committed]
        self.versions = [write.version for write in committed]
        self.sorted_versions = sorted(self.versions)
        rank_of = {version: rank for rank, version in enumerate(self.sorted_versions)}
        self.ranks = [rank_of[version] for version in self.versions]
        self.fenwick = _Fenwick(len(committed))
        self.cursor = 0
        self.inserted = 0
        self.max_version = None
        self.max_version_commit_ms = 0.0

    def advance_to(self, time_ms: float) -> None:
        """Insert every write committed at or before ``time_ms``."""
        cursor = self.cursor
        commit_times = self.commit_times
        total = len(commit_times)
        while cursor < total and commit_times[cursor] <= time_ms:
            version = self.versions[cursor]
            if self.max_version is None or version > self.max_version:
                self.max_version = version
                self.max_version_commit_ms = commit_times[cursor]
            self.fenwick.add(self.ranks[cursor])
            cursor += 1
        self.inserted = cursor
        self.cursor = cursor

    def lag_of(self, returned) -> int:
        """Committed versions newer than ``returned`` among inserted writes."""
        rank = bisect.bisect_right(self.sorted_versions, returned)
        return self.inserted - self.fenwick.count_le(rank - 1)


def observe_staleness(
    trace_log: TraceLog | ColumnarTraceLog,
    key: str | None = None,
    method: str = "auto",
) -> list[StalenessObservation]:
    """Extract per-read staleness observations from a trace log.

    Reads that start before any write commits are skipped (there is nothing to
    be stale against).  Reads may return versions newer than the latest commit
    at their start time (in-flight writes); the paper counts these as
    consistent, and so do we.

    ``method`` selects the implementation: ``"columnar"`` is the vectorized
    per-key window pass over a :class:`~repro.cluster.tracelog.ColumnarTraceLog`
    (searchsorted insertion counts, cumulative-max encoded versions, and a
    dyadic merge tree for version lags); ``"fenwick"`` is the per-read
    Fenwick-tree loop, kept as the exactness oracle, which accepts either
    backend through the shared query surface.  ``"auto"`` (default) picks
    columnar when the log is columnar and Fenwick otherwise.  Both produce
    identical observation lists.
    """
    if method == "auto":
        method = "columnar" if isinstance(trace_log, ColumnarTraceLog) else "fenwick"
    if method == "columnar":
        if not isinstance(trace_log, ColumnarTraceLog):
            raise AnalysisError(
                "the columnar staleness pass requires a ColumnarTraceLog; "
                "use method='fenwick' (or convert) for object trace logs"
            )
        return _observe_staleness_columnar(trace_log, key)
    if method != "fenwick":
        raise AnalysisError(
            f"unknown staleness method {method!r}; choose 'auto', 'columnar', or 'fenwick'"
        )
    return _observe_staleness_fenwick(trace_log, key)


def _observe_staleness_fenwick(
    trace_log: TraceLog | ColumnarTraceLog, key: str | None
) -> list[StalenessObservation]:
    """The per-read Fenwick-tree pass (O((R + W) log W) per key), the oracle."""
    reads = trace_log.completed_reads(key)
    if not reads:
        return []
    committed_by_key: dict[str, list] = {}
    for write in trace_log.writes:
        if write.committed and (key is None or write.key == key):
            committed_by_key.setdefault(write.key, []).append(write)
    for writes in committed_by_key.values():
        writes.sort(key=lambda write: write.committed_ms)
    states: dict[str, _KeyStalenessState] = {}

    observations: list[StalenessObservation] = []
    for read in reads:
        state = states.get(read.key)
        if state is None:
            writes = committed_by_key.get(read.key)
            if writes is None:
                continue
            state = states[read.key] = _KeyStalenessState(writes)
        state.advance_to(read.started_ms)
        if state.inserted == 0:
            continue
        latest_version = state.max_version
        t_since_commit = read.started_ms - state.max_version_commit_ms
        returned = read.returned_version
        consistent = returned is not None and returned >= latest_version
        if consistent:
            lag = 0
        elif returned is None:
            lag = state.inserted
        else:
            lag = state.lag_of(returned)
        observations.append(
            StalenessObservation(
                operation_id=read.operation_id,
                key=read.key,
                t_since_commit_ms=float(t_since_commit),
                consistent=consistent,
                version_lag=lag,
            )
        )
    return observations


def observe_staleness_frame(
    trace_log: ColumnarTraceLog, key: str | None = None
) -> StalenessFrame:
    """Like :func:`observe_staleness`, but returns the columns themselves.

    This is the all-array endpoint of the columnar pipeline: no per-read
    Python objects are built, and the result feeds straight into the curve
    functions.  Requires a :class:`~repro.cluster.tracelog.ColumnarTraceLog`.
    """
    if not isinstance(trace_log, ColumnarTraceLog):
        raise AnalysisError(
            "observe_staleness_frame requires a ColumnarTraceLog; "
            "use observe_staleness(method='fenwick') for object trace logs"
        )
    return _observe_staleness_columnar_frame(trace_log, key)


def _observe_staleness_columnar(
    trace_log: ColumnarTraceLog, key: str | None
) -> list[StalenessObservation]:
    """The vectorized pass, materialised to the shared observation-list shape."""
    return _observe_staleness_columnar_frame(trace_log, key).observations()


def _empty_frame() -> StalenessFrame:
    return StalenessFrame(
        operation_ids=np.empty(0, dtype=np.int64),
        key_ids=np.empty(0, dtype=np.int64),
        key_table=(),
        t_since_commit_ms=np.empty(0, dtype=np.float64),
        consistent=np.empty(0, dtype=bool),
        version_lag=np.empty(0, dtype=np.int64),
    )


def _observe_staleness_columnar_frame(
    trace_log: ColumnarTraceLog, key: str | None
) -> StalenessFrame:
    """Vectorized per-key window pass over the columnar trace log.

    Versions are encoded as ``timestamp * modulus + writer_rank`` (writer
    ranks taken over the *sorted* string table), which replicates the
    ``(timestamp, writer)`` lexicographic :class:`~repro.cluster.versioning.Version`
    order as plain int64 comparisons; ``-1`` encodes "read returned no value",
    strictly below every real version.  Per key, the committed writes form a
    commit-time-ordered column: each read's insertion count is one
    ``searchsorted``, the latest version it raced against is a cumulative
    maximum, that maximum's commit time is recovered from the last
    strict-increase index, and version lags come from
    :func:`~repro.analysis.windows.prefix_dominance_counts`.
    """
    read_rows = trace_log.completed_read_rows(key)
    total_reads = read_rows.shape[0]
    if total_reads == 0:
        return _empty_frame()
    write_rows = trace_log.committed_write_rows(key)
    if write_rows.shape[0] == 0:
        return _empty_frame()
    write_columns = trace_log.write_columns()
    read_columns = trace_log.read_columns()
    ranks = trace_log.writer_sort_ranks()
    modulus = len(trace_log.string_table()) + 1

    write_keys = write_columns["key"][write_rows]
    commit_times = write_columns["committed_ms"][write_rows]
    write_enc = (
        write_columns["version_ts"][write_rows] * modulus
        + ranks[write_columns["version_writer"][write_rows]]
    )
    read_keys = read_columns["key"][read_rows]
    read_started = read_columns["started_ms"][read_rows]
    returned_ts = read_columns["returned_ts"][read_rows]
    returned_none = returned_ts == _NO_VERSION
    safe_writer = np.where(returned_none, 0, read_columns["returned_writer"][read_rows])
    read_enc = np.where(
        returned_none, np.int64(-1), returned_ts * modulus + ranks[safe_writer]
    )

    # Per-read outputs, indexed by global (start-time-ordered) read position.
    emit = np.zeros(total_reads, dtype=bool)
    t_since = np.zeros(total_reads, dtype=np.float64)
    consistent = np.zeros(total_reads, dtype=bool)
    lag = np.zeros(total_reads, dtype=np.int64)

    # Group both sides by key; stable sorts preserve commit order within each
    # write group and start order within each read group.
    write_group = np.argsort(write_keys, kind="stable")
    read_group = np.argsort(read_keys, kind="stable")
    grouped_write_keys = write_keys[write_group]
    grouped_read_keys = read_keys[read_group]
    for key_id in np.unique(grouped_read_keys):
        write_lo = np.searchsorted(grouped_write_keys, key_id, side="left")
        write_hi = np.searchsorted(grouped_write_keys, key_id, side="right")
        if write_lo == write_hi:
            continue  # no committed writes for this key: nothing to be stale against
        read_lo = np.searchsorted(grouped_read_keys, key_id, side="left")
        read_hi = np.searchsorted(grouped_read_keys, key_id, side="right")
        writes_here = write_group[write_lo:write_hi]
        reads_here = read_group[read_lo:read_hi]
        key_commit_times = commit_times[writes_here]
        key_write_enc = write_enc[writes_here]
        inserted = np.searchsorted(key_commit_times, read_started[reads_here], side="right")
        has_prior_commit = inserted > 0
        if not has_prior_commit.any():
            continue
        prefix_max = np.maximum.accumulate(key_write_enc)
        new_max = np.empty(key_write_enc.shape[0], dtype=bool)
        new_max[0] = True
        new_max[1:] = key_write_enc[1:] > prefix_max[:-1]
        last_increase = np.maximum.accumulate(
            np.where(new_max, np.arange(key_write_enc.shape[0]), 0)
        )
        positions = reads_here[has_prior_commit]
        inserted_here = inserted[has_prior_commit]
        latest_enc = prefix_max[inserted_here - 1]
        emit[positions] = True
        t_since[positions] = (
            read_started[positions] - key_commit_times[last_increase[inserted_here - 1]]
        )
        returned_here = read_enc[positions]
        is_consistent = returned_here >= latest_enc
        consistent[positions] = is_consistent
        lag_here = np.zeros(positions.shape[0], dtype=np.int64)
        none_here = returned_none[positions]
        lag_here[~is_consistent & none_here] = inserted_here[~is_consistent & none_here]
        needs_count = ~is_consistent & ~none_here
        if needs_count.any():
            dominated = prefix_dominance_counts(
                key_write_enc, inserted_here[needs_count], returned_here[needs_count]
            )
            lag_here[needs_count] = inserted_here[needs_count] - dominated
        lag[positions] = lag_here

    positions = np.flatnonzero(emit)
    operation_ids = read_columns["operation_id"][read_rows]
    return StalenessFrame(
        operation_ids=operation_ids[positions],
        key_ids=read_keys[positions],
        key_table=tuple(trace_log.string_table()),
        t_since_commit_ms=t_since[positions],
        consistent=consistent[positions],
        version_lag=lag[positions],
    )


def _times_and_flags(
    observations: "Sequence[StalenessObservation] | StalenessFrame",
) -> tuple[np.ndarray, np.ndarray]:
    """``(t_since_commit_ms, consistent)`` columns from either representation."""
    if isinstance(observations, StalenessFrame):
        return observations.t_since_commit_ms, observations.consistent
    return (
        np.array([obs.t_since_commit_ms for obs in observations], dtype=float),
        np.array([obs.consistent for obs in observations], dtype=bool),
    )


def consistency_by_time(
    observations: "Sequence[StalenessObservation] | StalenessFrame",
    bin_edges: Sequence[float],
) -> BinnedSeries:
    """Empirical P(consistent read) binned by time since the latest commit."""
    if not len(observations):
        raise AnalysisError("no staleness observations to bin")
    times, flags = _times_and_flags(observations)
    return binned_fraction(times, flags, bin_edges)


def measured_t_visibility(
    observations: "Sequence[StalenessObservation] | StalenessFrame",
    target_probability: float,
) -> float:
    """Smallest observed ``t`` beyond which the running consistency fraction meets the target.

    Sorts observations by ``t`` and finds the smallest threshold such that the
    fraction of consistent reads among observations with ``t >= threshold``
    reaches the target.  Returns ``inf`` when even the largest observed ``t``
    does not reach the target.
    """
    if not len(observations):
        raise AnalysisError("no staleness observations available")
    if not 0.0 < target_probability <= 1.0:
        raise AnalysisError(
            f"target probability must be in (0, 1], got {target_probability}"
        )
    times, flags = _times_and_flags(observations)
    consistent_flags = flags.astype(float)
    order = np.argsort(times, kind="stable")
    times = times[order]
    # Suffix means: fraction consistent among reads with t >= t_i.
    suffix_fraction = np.cumsum(consistent_flags[order][::-1])[::-1] / np.arange(
        times.shape[0], 0, -1
    )
    meets_target = suffix_fraction >= target_probability
    if not meets_target.any():
        return float("inf")
    return float(times[np.argmax(meets_target)])


def version_lags(
    observations: "Sequence[StalenessObservation] | StalenessFrame",
) -> np.ndarray:
    """Array of per-read version lags (0 = returned the freshest committed version)."""
    if not len(observations):
        raise AnalysisError("no staleness observations available")
    if isinstance(observations, StalenessFrame):
        return np.array(observations.version_lag, dtype=int)
    return np.array([obs.version_lag for obs in observations], dtype=int)


def k_staleness_fraction(
    observations: "Sequence[StalenessObservation] | StalenessFrame", k: int
) -> float:
    """Measured probability that reads were within ``k`` versions of the freshest commit."""
    if k < 1:
        raise AnalysisError(f"version tolerance k must be >= 1, got {k}")
    lags = version_lags(observations)
    return float(np.mean(lags < k))


def operation_latencies(
    trace_log: TraceLog | ColumnarTraceLog,
) -> tuple[np.ndarray, np.ndarray]:
    """``(read_latencies, write_latencies)`` in ms for completed operations.

    On a columnar log this is a pure column pass (mask the NaN completion
    sentinels, subtract the start column); on the object log it walks the
    trace lists.  Both return latencies in record order.
    """
    if isinstance(trace_log, ColumnarTraceLog):
        read_columns = trace_log.read_columns()
        completed = read_columns["completed_ms"]
        read_mask = ~np.isnan(completed)
        reads = completed[read_mask] - read_columns["started_ms"][read_mask]
        write_columns = trace_log.write_columns()
        committed = write_columns["committed_ms"]
        write_mask = ~np.isnan(committed)
        writes = committed[write_mask] - write_columns["started_ms"][write_mask]
    else:
        reads = np.array(
            [trace.latency_ms for trace in trace_log.reads if trace.latency_ms is not None],
            dtype=float,
        )
        writes = np.array(
            [
                trace.commit_latency_ms
                for trace in trace_log.writes
                if trace.commit_latency_ms is not None
            ],
            dtype=float,
        )
    if reads.size == 0 and writes.size == 0:
        raise AnalysisError("trace log contains no completed operations")
    return reads, writes
