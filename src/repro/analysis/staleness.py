"""Measuring staleness from cluster traces.

These functions turn a :class:`~repro.cluster.tracing.TraceLog` into the
quantities the paper reports:

* **t-visibility** — for every completed read, how long after the latest
  commit did it start, and did it observe that commit?  Binning those
  observations gives the empirical probability-of-consistency curve that the
  §5.2 validation compares against the WARS prediction.
* **k-staleness** — how many committed versions behind was each read?  The
  distribution of version lags validates the Equation 2 closed form.
* **operation latency** — read and write latencies extracted from the traces
  for the latency half of the validation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.statistics import BinnedSeries, binned_fraction
from repro.cluster.tracing import TraceLog
from repro.exceptions import AnalysisError

__all__ = [
    "StalenessObservation",
    "observe_staleness",
    "consistency_by_time",
    "measured_t_visibility",
    "version_lags",
    "k_staleness_fraction",
    "operation_latencies",
]


@dataclass(frozen=True, slots=True)
class StalenessObservation:
    """One read's staleness outcome relative to the latest prior commit."""

    operation_id: int
    key: str
    #: Time between the latest prior commit and the read's start (ms).
    t_since_commit_ms: float
    #: Whether the read returned that latest committed version (or newer).
    consistent: bool
    #: Number of committed versions the returned value lagged behind (0 = fresh).
    version_lag: int


class _Fenwick:
    """A Fenwick (binary-indexed) tree counting inserted version ranks."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int) -> None:
        """Count one occurrence of rank ``index`` (0-based)."""
        tree = self.tree
        position = index + 1
        size = self.size
        while position <= size:
            tree[position] += 1
            position += position & -position

    def count_le(self, index: int) -> int:
        """Number of inserted ranks ``<= index`` (0-based; -1 returns 0)."""
        tree = self.tree
        position = index + 1
        total = 0
        while position > 0:
            total += tree[position]
            position -= position & -position
        return total


class _KeyStalenessState:
    """Per-key incremental state for :func:`observe_staleness`.

    Holds the key's committed writes sorted by commit time plus a Fenwick
    tree over version ranks, so processing reads in start-time order needs
    only O(log W) per read instead of re-scanning (and re-sorting) every
    committed write — the difference between minutes and milliseconds at the
    paper's 50,000-writes-per-cell scale.
    """

    __slots__ = (
        "commit_times",
        "versions",
        "sorted_versions",
        "ranks",
        "fenwick",
        "cursor",
        "inserted",
        "max_version",
        "max_version_commit_ms",
    )

    def __init__(self, committed: list) -> None:
        # ``committed`` arrives sorted by committed_ms (TraceLog order).
        self.commit_times = [write.committed_ms for write in committed]
        self.versions = [write.version for write in committed]
        self.sorted_versions = sorted(self.versions)
        rank_of = {version: rank for rank, version in enumerate(self.sorted_versions)}
        self.ranks = [rank_of[version] for version in self.versions]
        self.fenwick = _Fenwick(len(committed))
        self.cursor = 0
        self.inserted = 0
        self.max_version = None
        self.max_version_commit_ms = 0.0

    def advance_to(self, time_ms: float) -> None:
        """Insert every write committed at or before ``time_ms``."""
        cursor = self.cursor
        commit_times = self.commit_times
        total = len(commit_times)
        while cursor < total and commit_times[cursor] <= time_ms:
            version = self.versions[cursor]
            if self.max_version is None or version > self.max_version:
                self.max_version = version
                self.max_version_commit_ms = commit_times[cursor]
            self.fenwick.add(self.ranks[cursor])
            cursor += 1
        self.inserted = cursor
        self.cursor = cursor

    def lag_of(self, returned) -> int:
        """Committed versions newer than ``returned`` among inserted writes."""
        rank = bisect.bisect_right(self.sorted_versions, returned)
        return self.inserted - self.fenwick.count_le(rank - 1)


def observe_staleness(trace_log: TraceLog, key: str | None = None) -> list[StalenessObservation]:
    """Extract per-read staleness observations from a trace log.

    Reads that start before any write commits are skipped (there is nothing to
    be stale against).  Reads may return versions newer than the latest commit
    at their start time (in-flight writes); the paper counts these as
    consistent, and so do we.

    Runs in O((R + W) log W) per key — reads are processed in start-time
    order while a per-key cursor inserts writes as their commit times pass —
    making paper-scale trace logs (50,000 writes, ~400,000 reads per §5.2
    cell) tractable; output is identical to the naive per-read scan.
    """
    reads = trace_log.completed_reads(key)
    if not reads:
        return []
    committed_by_key: dict[str, list] = {}
    for write in trace_log.writes:
        if write.committed and (key is None or write.key == key):
            committed_by_key.setdefault(write.key, []).append(write)
    for writes in committed_by_key.values():
        writes.sort(key=lambda write: write.committed_ms)
    states: dict[str, _KeyStalenessState] = {}

    observations: list[StalenessObservation] = []
    for read in reads:
        state = states.get(read.key)
        if state is None:
            writes = committed_by_key.get(read.key)
            if writes is None:
                continue
            state = states[read.key] = _KeyStalenessState(writes)
        state.advance_to(read.started_ms)
        if state.inserted == 0:
            continue
        latest_version = state.max_version
        t_since_commit = read.started_ms - state.max_version_commit_ms
        returned = read.returned_version
        consistent = returned is not None and returned >= latest_version
        if consistent:
            lag = 0
        elif returned is None:
            lag = state.inserted
        else:
            lag = state.lag_of(returned)
        observations.append(
            StalenessObservation(
                operation_id=read.operation_id,
                key=read.key,
                t_since_commit_ms=float(t_since_commit),
                consistent=consistent,
                version_lag=lag,
            )
        )
    return observations


def consistency_by_time(
    observations: Sequence[StalenessObservation], bin_edges: Sequence[float]
) -> BinnedSeries:
    """Empirical P(consistent read) binned by time since the latest commit."""
    if not observations:
        raise AnalysisError("no staleness observations to bin")
    return binned_fraction(
        [obs.t_since_commit_ms for obs in observations],
        [obs.consistent for obs in observations],
        bin_edges,
    )


def measured_t_visibility(
    observations: Sequence[StalenessObservation], target_probability: float
) -> float:
    """Smallest observed ``t`` beyond which the running consistency fraction meets the target.

    Sorts observations by ``t`` and finds the smallest threshold such that the
    fraction of consistent reads among observations with ``t >= threshold``
    reaches the target.  Returns ``inf`` when even the largest observed ``t``
    does not reach the target.
    """
    if not observations:
        raise AnalysisError("no staleness observations available")
    if not 0.0 < target_probability <= 1.0:
        raise AnalysisError(
            f"target probability must be in (0, 1], got {target_probability}"
        )
    ordered = sorted(observations, key=lambda obs: obs.t_since_commit_ms)
    consistent_flags = np.array([obs.consistent for obs in ordered], dtype=float)
    # Suffix means: fraction consistent among reads with t >= t_i.
    suffix_fraction = np.cumsum(consistent_flags[::-1])[::-1] / np.arange(
        len(ordered), 0, -1
    )
    for observation, fraction in zip(ordered, suffix_fraction):
        if fraction >= target_probability:
            return observation.t_since_commit_ms
    return float("inf")


def version_lags(observations: Sequence[StalenessObservation]) -> np.ndarray:
    """Array of per-read version lags (0 = returned the freshest committed version)."""
    if not observations:
        raise AnalysisError("no staleness observations available")
    return np.array([obs.version_lag for obs in observations], dtype=int)


def k_staleness_fraction(observations: Sequence[StalenessObservation], k: int) -> float:
    """Measured probability that reads were within ``k`` versions of the freshest commit."""
    if k < 1:
        raise AnalysisError(f"version tolerance k must be >= 1, got {k}")
    lags = version_lags(observations)
    return float(np.mean(lags < k))


def operation_latencies(trace_log: TraceLog) -> tuple[np.ndarray, np.ndarray]:
    """``(read_latencies, write_latencies)`` in ms for completed operations."""
    reads = np.array(
        [trace.latency_ms for trace in trace_log.reads if trace.latency_ms is not None],
        dtype=float,
    )
    writes = np.array(
        [
            trace.commit_latency_ms
            for trace in trace_log.writes
            if trace.commit_latency_ms is not None
        ],
        dtype=float,
    )
    if reads.size == 0 and writes.size == 0:
        raise AnalysisError("trace log contains no completed operations")
    return reads, writes
