"""Client sessions and workload drivers for the cluster simulator.

:class:`ClientSession` issues synchronous operations against a cluster while
tracking the session guarantees discussed in §3.2 (monotonic reads,
read-your-writes), so experiments can measure how often partial quorums
violate them in practice.  :class:`WorkloadRunner` schedules an entire
generated workload (see :mod:`repro.workloads`) onto the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cluster.coordinator import ReadHandle, WriteHandle
from repro.cluster.store import DynamoCluster
from repro.cluster.versioning import Version
from repro.exceptions import WorkloadError
from repro.workloads.operations import Operation, OperationKind

__all__ = ["SessionStats", "ClientSession", "WorkloadRunner"]


@dataclass
class SessionStats:
    """Session-guarantee accounting for one client."""

    reads: int = 0
    writes: int = 0
    monotonic_violations: int = 0
    read_your_writes_violations: int = 0
    empty_reads: int = 0

    @property
    def monotonic_violation_rate(self) -> float:
        """Fraction of reads that observed older data than a previous read."""
        return self.monotonic_violations / self.reads if self.reads else 0.0

    @property
    def read_your_writes_violation_rate(self) -> float:
        """Fraction of reads that missed this session's own latest write."""
        return self.read_your_writes_violations / self.reads if self.reads else 0.0


class ClientSession:
    """A single client issuing synchronous operations against one coordinator.

    The session pins a coordinator (the common "sticky client" deployment) and
    tracks, per key, the newest version it has read and the newest version it
    has written, to measure monotonic-reads and read-your-writes violations.
    """

    def __init__(self, cluster: DynamoCluster, session_id: str = "client") -> None:
        self._cluster = cluster
        self.session_id = session_id
        self._coordinator = cluster.coordinators[
            hash(session_id) % len(cluster.coordinators)
        ]
        self._last_read_version: dict[str, Version] = {}
        self._last_written_version: dict[str, Version] = {}
        self.stats = SessionStats()

    def write(self, key: str, value: object) -> WriteHandle:
        """Write through this session's coordinator and record the version written."""
        handle = self._cluster.write(key, value, coordinator=self._coordinator)
        self.stats.writes += 1
        if handle.committed:
            self._last_written_version[key] = handle.trace.version
        return handle

    def read(self, key: str) -> ReadHandle:
        """Read through this session's coordinator and update session-guarantee stats."""
        handle = self._cluster.read(key, coordinator=self._coordinator)
        self.stats.reads += 1
        observed: Optional[Version] = handle.trace.returned_version

        if observed is None:
            self.stats.empty_reads += 1

        previous = self._last_read_version.get(key)
        if previous is not None and (observed is None or observed < previous):
            self.stats.monotonic_violations += 1

        own_write = self._last_written_version.get(key)
        if own_write is not None and (observed is None or observed < own_write):
            self.stats.read_your_writes_violations += 1

        if observed is not None and (previous is None or observed > previous):
            self._last_read_version[key] = observed
        return handle


#: Operations fed onto the event queue per feeder step (see
#: :meth:`WorkloadRunner.run`).  Feeding lazily keeps the heap small — a few
#: in-flight operations instead of the whole workload — which matters because
#: every heap sift costs O(log heap-size) per event at paper-scale counts.
FEED_CHUNK_OPERATIONS = 512


@dataclass
class WorkloadRunner:
    """Schedules a generated operation stream onto a cluster and runs it.

    The runner is fire-and-forget: every operation's trace is recorded in the
    cluster's :class:`~repro.cluster.tracing.TraceLog`, which the analysis
    package consumes afterwards.
    """

    cluster: DynamoCluster
    scheduled_operations: int = field(default=0, init=False)

    def schedule(self, operations: Iterable[Operation]) -> int:
        """Schedule every operation at its start time; returns the count scheduled."""
        count = 0
        for operation in operations:
            if operation.start_ms < self.cluster.now_ms:
                raise WorkloadError(
                    f"operation at {operation.start_ms} ms is in the simulator's past "
                    f"(now = {self.cluster.now_ms} ms)"
                )
            if operation.kind is OperationKind.WRITE:
                self.cluster.schedule_write(operation.key, operation.value, operation.start_ms)
            else:
                self.cluster.schedule_read(operation.key, operation.start_ms)
            count += 1
        self.scheduled_operations += count
        return count

    def _feed(self, operations: list[Operation], start: int) -> None:
        """Schedule one chunk of ``operations[start:]`` and a continuation.

        The continuation fires at the first start time beyond the chunk, so at
        any moment the event queue holds at most one chunk of future
        operations plus the in-flight messages.  Chunk boundaries never split
        a group of equal-start-time operations, preserving their relative
        order exactly as eager scheduling would.
        """
        end = start + FEED_CHUNK_OPERATIONS
        total = len(operations)
        if end < total:
            while end < total and (
                operations[end].start_ms == operations[end - 1].start_ms
            ):
                end += 1
        self.schedule(operations[start:end])
        if end < total:
            self.cluster.simulator.schedule_at_action(
                operations[end].start_ms, lambda: self._feed(operations, end)
            )

    def run(self, operations: Iterable[Operation], settle_ms: float = 1_000.0) -> None:
        """Schedule the workload, run it to completion, then let late messages settle.

        Operations are fed onto the event queue lazily in chunks of
        :data:`FEED_CHUNK_OPERATIONS` (sorted by start time, stable for ties)
        rather than all up front, bounding the heap size.  ``settle_ms`` keeps
        the simulation running past the last scheduled operation so in-flight
        acknowledgements and late read responses (which the staleness detector
        needs) are delivered.
        """
        operations = sorted(operations, key=lambda operation: operation.start_ms)
        if not operations:
            return
        self._feed(operations, 0)
        horizon = operations[-1].start_ms + settle_ms
        self.cluster.run(until_ms=horizon)
        # Drain anything still outstanding (e.g. slow tail messages).
        self.cluster.run()
