"""Per-operation trace records.

The validation methodology of §5.2 hinges on instrumenting the store: every
write records when each replica received it and when it committed, and every
read records which replicas answered among the first ``R`` and which version
was returned.  These traces are what the analysis package consumes to measure
empirical t-visibility, k-staleness, and the WARS latency components.

Recording goes through a narrow scalar API (``begin_write`` /
``note_write_*`` / ``begin_read`` / ``note_read_*``) shared with the
struct-of-arrays backend in :mod:`repro.cluster.tracelog`; here the returned
reference *is* the trace object and the notes mutate it in place.  Queries
are cached and invalidated by a mutation counter, and the per-key version
lookups are binary searches over a per-key commit-time index instead of
O(writes) full-log scans.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.versioning import Version

__all__ = ["WriteTrace", "ReadTrace", "TraceLog"]


@dataclass(slots=True)
class WriteTrace:
    """Lifecycle of a single write operation."""

    operation_id: int
    key: str
    version: Version
    coordinator: str
    started_ms: float
    #: Per-replica arrival time of the write message (the W leg), by node id.
    replica_arrivals_ms: dict[str, float] = field(default_factory=dict)
    #: Per-replica acknowledgement arrival time at the coordinator (W + A legs).
    ack_arrivals_ms: dict[str, float] = field(default_factory=dict)
    #: Time the coordinator had collected W acknowledgements (commit), if ever.
    committed_ms: Optional[float] = None
    #: Replicas whose write message was dropped (failure or partition).
    dropped_replicas: set[str] = field(default_factory=set)

    @property
    def committed(self) -> bool:
        """True when the coordinator received its write quorum."""
        return self.committed_ms is not None

    @property
    def commit_latency_ms(self) -> Optional[float]:
        """Commit (write operation) latency, or ``None`` for uncommitted writes."""
        if self.committed_ms is None:
            return None
        return self.committed_ms - self.started_ms

    def arrival_offsets_from_commit(self) -> dict[str, float]:
        """Per-replica arrival time relative to commit (negative = before commit)."""
        if self.committed_ms is None:
            return {}
        return {
            replica: arrival - self.committed_ms
            for replica, arrival in self.replica_arrivals_ms.items()
        }


@dataclass(slots=True)
class ReadTrace:
    """Lifecycle of a single read operation."""

    operation_id: int
    key: str
    coordinator: str
    started_ms: float
    #: The first R responses (node id → version returned, None when replica was empty).
    quorum_responses: dict[str, Optional[Version]] = field(default_factory=dict)
    #: Responses that arrived after the operation already returned.
    late_responses: dict[str, Optional[Version]] = field(default_factory=dict)
    #: Per-replica response arrival time at the coordinator (R + S legs).
    response_arrivals_ms: dict[str, float] = field(default_factory=dict)
    #: Version the coordinator returned to the client (None = key not found).
    returned_version: Optional[Version] = None
    completed_ms: Optional[float] = None
    timed_out: bool = False
    #: Number of read-repair pushes this read triggered (0 when disabled).
    repairs_issued: int = 0

    @property
    def completed(self) -> bool:
        """True when the coordinator assembled a read quorum before timing out."""
        return self.completed_ms is not None and not self.timed_out

    @property
    def latency_ms(self) -> Optional[float]:
        """Read operation latency, or ``None`` for timed-out reads."""
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms


@dataclass
class TraceLog:
    """Accumulates traces for a simulation run and answers staleness queries.

    Query results (sort orders, per-key commit indexes) are cached and
    invalidated whenever a trace is recorded or mutated through the narrow
    ``begin_*``/``note_*`` API, so repeated analysis passes pay for sorting
    and index building exactly once per log state.
    """

    writes: list[WriteTrace] = field(default_factory=list)
    reads: list[ReadTrace] = field(default_factory=list)
    #: Total write traces examined while (re)building per-key commit indexes.
    #: Regression tests assert repeated queries do not rescan the log.
    index_scans: int = field(default=0, repr=False, compare=False)
    _mutations: int = field(default=0, repr=False, compare=False)
    _cache_token: tuple = field(default=(-1, -1, -1), repr=False, compare=False)
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def record_write(self, trace: WriteTrace) -> None:
        """Append a write trace."""
        self.writes.append(trace)
        self._mutations += 1

    def record_read(self, trace: ReadTrace) -> None:
        """Append a read trace."""
        self.reads.append(trace)
        self._mutations += 1

    # ------------------------------------------------------------------
    # Narrow recording API (shared with the columnar backend).
    # ------------------------------------------------------------------
    def begin_write(
        self,
        operation_id: int,
        key: str,
        version: Version,
        coordinator: str,
        started_ms: float,
    ) -> WriteTrace:
        """Open a write trace; the returned reference is the trace itself."""
        trace = WriteTrace(
            operation_id=operation_id,
            key=key,
            version=version,
            coordinator=coordinator,
            started_ms=started_ms,
        )
        self.writes.append(trace)
        self._mutations += 1
        return trace

    def note_write_arrival(self, ref: WriteTrace, node_id: str, time_ms: float) -> None:
        """Record the write message reaching a replica (the W leg)."""
        ref.replica_arrivals_ms[node_id] = time_ms
        self._mutations += 1

    def note_write_ack(self, ref: WriteTrace, node_id: str, time_ms: float) -> None:
        """Record a replica acknowledgement reaching the coordinator (W + A legs)."""
        ref.ack_arrivals_ms[node_id] = time_ms
        self._mutations += 1

    def note_write_commit(self, ref: WriteTrace, time_ms: float) -> None:
        """Record the coordinator assembling its write quorum."""
        ref.committed_ms = time_ms
        self._mutations += 1

    def note_write_drop(self, ref: WriteTrace, node_id: str) -> None:
        """Record a write message dropped on the way to a replica."""
        ref.dropped_replicas.add(node_id)
        self._mutations += 1

    def write_view(self, ref: WriteTrace) -> WriteTrace:
        """The trace behind a write reference (the reference itself here)."""
        return ref

    def begin_read(
        self, operation_id: int, key: str, coordinator: str, started_ms: float
    ) -> ReadTrace:
        """Open a read trace; the returned reference is the trace itself."""
        trace = ReadTrace(
            operation_id=operation_id,
            key=key,
            coordinator=coordinator,
            started_ms=started_ms,
        )
        self.reads.append(trace)
        self._mutations += 1
        return trace

    def note_read_response(self, ref: ReadTrace, node_id: str, time_ms: float) -> None:
        """Record a replica response reaching the coordinator (R + S legs)."""
        ref.response_arrivals_ms[node_id] = time_ms
        self._mutations += 1

    def note_read_quorum(
        self, ref: ReadTrace, node_id: str, version: Optional[Version]
    ) -> None:
        """Record a response counted among the first R."""
        ref.quorum_responses[node_id] = version
        self._mutations += 1

    def note_read_late(
        self, ref: ReadTrace, node_id: str, version: Optional[Version]
    ) -> None:
        """Record a response that arrived after the read already returned."""
        ref.late_responses[node_id] = version
        self._mutations += 1

    def note_read_complete(
        self, ref: ReadTrace, version: Optional[Version], time_ms: float
    ) -> None:
        """Record the read returning ``version`` to the client at ``time_ms``."""
        ref.returned_version = version
        ref.completed_ms = time_ms
        self._mutations += 1

    def note_read_timeout(self, ref: ReadTrace) -> None:
        """Record the read giving up before assembling R responses."""
        ref.timed_out = True
        self._mutations += 1

    def note_read_repair(self, ref: ReadTrace) -> None:
        """Record one read-repair push triggered by this read."""
        ref.repairs_issued += 1
        self._mutations += 1

    def read_view(self, ref: ReadTrace) -> ReadTrace:
        """The trace behind a read reference (the reference itself here)."""
        return ref

    # ------------------------------------------------------------------
    # Cached query state.
    # ------------------------------------------------------------------
    def _query_cache(self) -> dict:
        token = (len(self.writes), len(self.reads), self._mutations)
        if token != self._cache_token:
            self._cache = {}
            self._cache_token = token
        return self._cache

    def _key_commit_index(self, key: str) -> tuple[list[float], list[Version], dict]:
        """(sorted commit times, prefix-max versions, version → time) for one key."""
        cache = self._query_cache()
        cached = cache.get(("key_index", key))
        if cached is None:
            committed = self.committed_writes(key)
            self.index_scans += len(self.writes)
            times = [trace.committed_ms for trace in committed]
            prefix_max: list[Version] = []
            best: Optional[Version] = None
            for trace in committed:
                if best is None or trace.version > best:
                    best = trace.version
                prefix_max.append(best)
            version_times = {trace.version: trace.committed_ms for trace in committed}
            cached = (times, prefix_max, version_times)
            cache[("key_index", key)] = cached
        return cached

    # ------------------------------------------------------------------
    # Queries used by the analysis package.
    # ------------------------------------------------------------------
    def committed_writes(self, key: str | None = None) -> list[WriteTrace]:
        """All committed writes, optionally restricted to one key, in commit order."""
        cache = self._query_cache()
        cached = cache.get(("committed", key))
        if cached is None:
            selected = [
                trace
                for trace in self.writes
                if trace.committed and (key is None or trace.key == key)
            ]
            selected.sort(key=lambda trace: trace.committed_ms)  # type: ignore[arg-type, return-value]
            cache[("committed", key)] = cached = selected
        return list(cached)

    def completed_reads(self, key: str | None = None) -> list[ReadTrace]:
        """All completed reads, optionally restricted to one key, in start order."""
        cache = self._query_cache()
        cached = cache.get(("reads", key))
        if cached is None:
            selected = [
                trace
                for trace in self.reads
                if trace.completed and (key is None or trace.key == key)
            ]
            selected.sort(key=lambda trace: trace.started_ms)
            cache[("reads", key)] = cached = selected
        return list(cached)

    def latest_committed_version_before(self, key: str, time_ms: float) -> Optional[Version]:
        """The newest version of ``key`` whose commit time is <= ``time_ms``."""
        times, prefix_max, _ = self._key_commit_index(key)
        position = bisect_right(times, time_ms)
        if position == 0:
            return None
        return prefix_max[position - 1]

    def commit_time_of(self, key: str, version: Version) -> Optional[float]:
        """Commit time of a specific version, or ``None`` if it never committed."""
        _, _, version_times = self._key_commit_index(key)
        return version_times.get(version)

    def clear(self) -> None:
        """Drop all recorded traces."""
        self.writes.clear()
        self.reads.clear()
        self._mutations += 1
