"""Per-operation trace records.

The validation methodology of §5.2 hinges on instrumenting the store: every
write records when each replica received it and when it committed, and every
read records which replicas answered among the first ``R`` and which version
was returned.  These traces are what the analysis package consumes to measure
empirical t-visibility, k-staleness, and the WARS latency components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.versioning import Version

__all__ = ["WriteTrace", "ReadTrace", "TraceLog"]


@dataclass(slots=True)
class WriteTrace:
    """Lifecycle of a single write operation."""

    operation_id: int
    key: str
    version: Version
    coordinator: str
    started_ms: float
    #: Per-replica arrival time of the write message (the W leg), by node id.
    replica_arrivals_ms: dict[str, float] = field(default_factory=dict)
    #: Per-replica acknowledgement arrival time at the coordinator (W + A legs).
    ack_arrivals_ms: dict[str, float] = field(default_factory=dict)
    #: Time the coordinator had collected W acknowledgements (commit), if ever.
    committed_ms: Optional[float] = None
    #: Replicas whose write message was dropped (failure or partition).
    dropped_replicas: set[str] = field(default_factory=set)

    @property
    def committed(self) -> bool:
        """True when the coordinator received its write quorum."""
        return self.committed_ms is not None

    @property
    def commit_latency_ms(self) -> Optional[float]:
        """Commit (write operation) latency, or ``None`` for uncommitted writes."""
        if self.committed_ms is None:
            return None
        return self.committed_ms - self.started_ms

    def arrival_offsets_from_commit(self) -> dict[str, float]:
        """Per-replica arrival time relative to commit (negative = before commit)."""
        if self.committed_ms is None:
            return {}
        return {
            replica: arrival - self.committed_ms
            for replica, arrival in self.replica_arrivals_ms.items()
        }


@dataclass(slots=True)
class ReadTrace:
    """Lifecycle of a single read operation."""

    operation_id: int
    key: str
    coordinator: str
    started_ms: float
    #: The first R responses (node id → version returned, None when replica was empty).
    quorum_responses: dict[str, Optional[Version]] = field(default_factory=dict)
    #: Responses that arrived after the operation already returned.
    late_responses: dict[str, Optional[Version]] = field(default_factory=dict)
    #: Per-replica response arrival time at the coordinator (R + S legs).
    response_arrivals_ms: dict[str, float] = field(default_factory=dict)
    #: Version the coordinator returned to the client (None = key not found).
    returned_version: Optional[Version] = None
    completed_ms: Optional[float] = None
    timed_out: bool = False
    #: Number of read-repair pushes this read triggered (0 when disabled).
    repairs_issued: int = 0

    @property
    def completed(self) -> bool:
        """True when the coordinator assembled a read quorum before timing out."""
        return self.completed_ms is not None and not self.timed_out

    @property
    def latency_ms(self) -> Optional[float]:
        """Read operation latency, or ``None`` for timed-out reads."""
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms


@dataclass
class TraceLog:
    """Accumulates traces for a simulation run and answers staleness queries."""

    writes: list[WriteTrace] = field(default_factory=list)
    reads: list[ReadTrace] = field(default_factory=list)

    def record_write(self, trace: WriteTrace) -> None:
        """Append a write trace."""
        self.writes.append(trace)

    def record_read(self, trace: ReadTrace) -> None:
        """Append a read trace."""
        self.reads.append(trace)

    # ------------------------------------------------------------------
    # Queries used by the analysis package.
    # ------------------------------------------------------------------
    def committed_writes(self, key: str | None = None) -> list[WriteTrace]:
        """All committed writes, optionally restricted to one key, in commit order."""
        selected = [
            trace
            for trace in self.writes
            if trace.committed and (key is None or trace.key == key)
        ]
        return sorted(selected, key=lambda trace: trace.committed_ms)  # type: ignore[arg-type, return-value]

    def completed_reads(self, key: str | None = None) -> list[ReadTrace]:
        """All completed reads, optionally restricted to one key, in start order."""
        selected = [
            trace
            for trace in self.reads
            if trace.completed and (key is None or trace.key == key)
        ]
        return sorted(selected, key=lambda trace: trace.started_ms)

    def latest_committed_version_before(self, key: str, time_ms: float) -> Optional[Version]:
        """The newest version of ``key`` whose commit time is <= ``time_ms``."""
        latest: Optional[Version] = None
        for trace in self.writes:
            if trace.key != key or not trace.committed:
                continue
            if trace.committed_ms <= time_ms and (latest is None or trace.version > latest):
                latest = trace.version
        return latest

    def commit_time_of(self, key: str, version: Version) -> Optional[float]:
        """Commit time of a specific version, or ``None`` if it never committed."""
        for trace in self.writes:
            if trace.key == key and trace.version == version and trace.committed:
                return trace.committed_ms
        return None

    def clear(self) -> None:
        """Drop all recorded traces."""
        self.writes.clear()
        self.reads.clear()
