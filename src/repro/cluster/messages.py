"""Message types exchanged between coordinators and replicas.

Each message type corresponds to one leg of the WARS model (§4.1):

* :class:`WriteRequest` — the ``W`` leg (coordinator → replica),
* :class:`WriteAck` — the ``A`` leg (replica → coordinator),
* :class:`ReadRequest` — the ``R`` leg (coordinator → replica),
* :class:`ReadResponse` — the ``S`` leg (replica → coordinator),

plus the anti-entropy messages (:class:`RepairWrite`, :class:`HintedWrite`,
:class:`SyncDigest`) that are *outside* WARS and therefore disabled in the
validation experiments but available for ablations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.versioning import VersionedValue

__all__ = [
    "next_operation_id",
    "WriteRequest",
    "WriteAck",
    "ReadRequest",
    "ReadResponse",
    "RepairWrite",
    "HintedWrite",
    "SyncDigest",
]

_operation_counter = itertools.count(1)


def next_operation_id() -> int:
    """Return a process-wide unique operation identifier."""
    return next(_operation_counter)


@dataclass(frozen=True)
class WriteRequest:
    """Coordinator → replica: store this version (the WARS ``W`` leg)."""

    operation_id: int
    replica: str
    payload: VersionedValue
    sent_at_ms: float


@dataclass(frozen=True)
class WriteAck:
    """Replica → coordinator: the version was durably applied (the ``A`` leg)."""

    operation_id: int
    replica: str
    applied_at_ms: float


@dataclass(frozen=True)
class ReadRequest:
    """Coordinator → replica: return your newest version of ``key`` (the ``R`` leg)."""

    operation_id: int
    replica: str
    key: str
    sent_at_ms: float


@dataclass(frozen=True)
class ReadResponse:
    """Replica → coordinator: the replica's current version, if any (the ``S`` leg)."""

    operation_id: int
    replica: str
    key: str
    payload: Optional[VersionedValue]
    replied_at_ms: float


@dataclass(frozen=True)
class RepairWrite:
    """Coordinator → replica: read-repair push of a newer version (anti-entropy)."""

    operation_id: int
    replica: str
    payload: VersionedValue
    sent_at_ms: float


@dataclass(frozen=True)
class HintedWrite:
    """Coordinator → fallback replica: write held on behalf of a failed replica."""

    operation_id: int
    intended_replica: str
    holder: str
    payload: VersionedValue
    sent_at_ms: float


@dataclass(frozen=True)
class SyncDigest:
    """Replica → replica: Merkle-tree digest exchanged during active anti-entropy."""

    sender: str
    receiver: str
    root_hash: str
    key_range: tuple[str, str] = field(default=("", "￿"))
    sent_at_ms: float = 0.0
