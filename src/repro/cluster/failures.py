"""Fail-stop failure injection (paper §6, "Failure modes").

The paper's evaluation focuses on steady-state behaviour and notes that
fail-stop failures appear as latency spikes / tail-probability mass in the
WARS distributions.  The :class:`FailureInjector` lets ablation experiments
quantify that directly: crash and recover nodes on a schedule (deterministic
or sampled), and observe the effect on measured t-visibility and operation
availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.membership import Membership
from repro.cluster.simulator import Simulator
from repro.exceptions import ConfigurationError

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled crash/recovery pair for a node."""

    node_id: str
    crash_at_ms: float
    recover_at_ms: float | None = None

    def __post_init__(self) -> None:
        if self.crash_at_ms < 0:
            raise ConfigurationError(f"crash time must be non-negative, got {self.crash_at_ms}")
        if self.recover_at_ms is not None and self.recover_at_ms <= self.crash_at_ms:
            raise ConfigurationError(
                f"recovery time {self.recover_at_ms} must follow crash time {self.crash_at_ms}"
            )


class FailureInjector:
    """Schedules fail-stop crashes and recoveries on the simulator."""

    def __init__(self, simulator: Simulator, membership: Membership) -> None:
        self._simulator = simulator
        self._membership = membership
        self._events: list[FailureEvent] = []

    @property
    def scheduled_events(self) -> Sequence[FailureEvent]:
        """Failure events scheduled so far."""
        return tuple(self._events)

    def schedule(self, event: FailureEvent) -> None:
        """Schedule one crash (and optional recovery).

        Overlapping downtime windows for the same node are rejected: a node
        that is already down cannot crash again, and the second event's
        recovery would resurrect it mid-downtime of the first.  Windows are
        half-open ``[crash, recover)``, so a crash exactly at another event's
        recovery time is fine.
        """
        node = self._membership.node(event.node_id)
        start = event.crash_at_ms
        end = float("inf") if event.recover_at_ms is None else event.recover_at_ms
        for existing in self._events:
            if existing.node_id != event.node_id:
                continue
            other_start = existing.crash_at_ms
            other_end = (
                float("inf") if existing.recover_at_ms is None else existing.recover_at_ms
            )
            if start < other_end and other_start < end:
                raise ConfigurationError(
                    f"failure window [{start}, {end}) for node {event.node_id!r} "
                    f"overlaps already-scheduled window [{other_start}, {other_end})"
                )
        self._events.append(event)
        self._simulator.schedule_at(
            event.crash_at_ms, node.crash, label=f"crash:{event.node_id}"
        )
        if event.recover_at_ms is not None:
            self._simulator.schedule_at(
                event.recover_at_ms, node.recover, label=f"recover:{event.node_id}"
            )

    def schedule_crash(
        self, node_id: str, at_ms: float, downtime_ms: float | None = None
    ) -> FailureEvent:
        """Convenience wrapper building and scheduling a :class:`FailureEvent`."""
        recover_at = None if downtime_ms is None else at_ms + downtime_ms
        event = FailureEvent(node_id=node_id, crash_at_ms=at_ms, recover_at_ms=recover_at)
        self.schedule(event)
        return event

    def schedule_random_failures(
        self,
        mean_time_to_failure_ms: float,
        mean_downtime_ms: float,
        horizon_ms: float,
    ) -> list[FailureEvent]:
        """Poisson crash arrivals with exponential downtimes, per node, up to a horizon.

        This mirrors the paper's back-of-envelope failure discussion (crashes
        per machine per year with a fixed expected downtime), scaled to
        simulation time.
        """
        if mean_time_to_failure_ms <= 0 or mean_downtime_ms <= 0 or horizon_ms <= 0:
            raise ConfigurationError("failure model parameters must be positive")
        rng = self._simulator.rng
        events: list[FailureEvent] = []
        for node_id in self._membership.node_ids:
            time_ms = float(rng.exponential(mean_time_to_failure_ms))
            while time_ms < horizon_ms:
                downtime = float(rng.exponential(mean_downtime_ms))
                event = self.schedule_crash(node_id, time_ms, downtime)
                events.append(event)
                time_ms += downtime + float(rng.exponential(mean_time_to_failure_ms))
        return events
