"""Read and write coordinators for the Dynamo-style store.

The coordinator implements the protocol shown in Figure 1 of the paper: every
operation is forwarded to all ``N`` replicas of the key, and the operation
returns to the client after the first ``W`` acknowledgements (writes) or ``R``
responses (reads).  Remaining messages keep flowing and are recorded as late
responses — exactly the behaviour that makes quorums "expand" and that the
asynchronous staleness detector (§4.3) exploits.

The coordinator is also where the optional anti-entropy hooks attach:

* **read repair** — after the last response for a read arrives, push the
  newest observed version to any replica that returned something older;
* **hinted handoff** — when a write message targets a crashed replica, hand
  the write to a fallback node that replays it on recovery.

Both are disabled by default, matching the paper's conservative assumptions
(§4.2), and can be switched on for ablation experiments.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.membership import Membership
from repro.cluster.messages import next_operation_id
from repro.cluster.network import Network
from repro.cluster.node import StorageNode
from repro.cluster.simulator import Simulator
from repro.cluster.tracing import ReadTrace, TraceLog, WriteTrace
from repro.cluster.versioning import LamportClock, VectorClock, VersionedValue, Version
from repro.core.quorum import ReplicaConfig
from repro.exceptions import SimulationError

__all__ = ["Coordinator", "WriteHandle", "ReadHandle"]


class WriteHandle:
    """Client-visible handle for an in-flight write.

    Holds the trace log and the write's row reference rather than a trace
    object; :attr:`trace` materialises the familiar ``WriteTrace`` surface on
    demand (on the object backend the reference *is* the trace, so this is
    free).
    """

    __slots__ = (
        "ref",
        "payload",
        "acks_received",
        "finished",
        "committed",
        "on_complete",
        "used_fallbacks",
        "_log",
        "_timeout_event",
    )

    def __init__(
        self,
        log: TraceLog,
        ref: object,
        payload: VersionedValue,
        on_complete: Optional[Callable[[WriteTrace], None]] = None,
    ) -> None:
        self._log = log
        #: Trace reference (row id on the columnar backend, the trace itself
        #: on the object backend).
        self.ref = ref
        self.payload = payload
        self.acks_received = 0
        self.finished = False
        #: True once the write quorum acknowledged.
        self.committed = False
        self.on_complete = on_complete
        #: Fallback nodes already holding a sloppy-quorum copy for this write.
        self.used_fallbacks: set[str] = set()
        self._timeout_event: object = None

    @property
    def trace(self) -> WriteTrace:
        """The write's trace (a lazy row view on the columnar backend)."""
        return self._log.write_view(self.ref)


class ReadHandle:
    """Client-visible handle for an in-flight read.

    Like :class:`WriteHandle`, carries (log, reference) instead of a trace
    object; quorum membership and the newest-version selection are tracked
    incrementally on the handle so the hot path never inspects trace state.
    """

    __slots__ = (
        "ref",
        "expected_responses",
        "responses",
        "finished",
        "value",
        "on_complete",
        "quorum_count",
        "_newest",
        "_log",
        "_timeout_event",
    )

    def __init__(
        self,
        log: TraceLog,
        ref: object,
        expected_responses: int,
        on_complete: Optional[Callable[[ReadTrace], None]] = None,
    ) -> None:
        self._log = log
        #: Trace reference (row id on the columnar backend, the trace itself
        #: on the object backend).
        self.ref = ref
        self.expected_responses = expected_responses
        self.responses: dict[str, Optional[VersionedValue]] = {}
        self.finished = False
        self.value: Optional[VersionedValue] = None
        self.on_complete = on_complete
        #: Responses counted toward the read quorum so far.
        self.quorum_count = 0
        self._newest: Optional[VersionedValue] = None
        self._timeout_event: object = None

    @property
    def trace(self) -> ReadTrace:
        """The read's trace (a lazy row view on the columnar backend)."""
        return self._log.read_view(self.ref)

    @property
    def completed(self) -> bool:
        """True once the read quorum was assembled (and the op did not time out)."""
        return self.trace.completed


class Coordinator:
    """Coordinates quorum reads and writes for one logical client entry point."""

    def __init__(
        self,
        coordinator_id: str,
        simulator: Simulator,
        membership: Membership,
        network: Network,
        config: ReplicaConfig,
        trace_log: TraceLog,
        read_repair: bool = False,
        hinted_handoff: bool = False,
        sloppy_quorum: bool = False,
        timeout_ms: float = 60_000.0,
        read_fanout_all: bool = True,
        event_labels: bool = False,
    ) -> None:
        if timeout_ms <= 0:
            raise SimulationError(f"operation timeout must be positive, got {timeout_ms}")
        self.coordinator_id = coordinator_id
        self._simulator = simulator
        self._clock = simulator.clock
        # Message sends bypass Simulator.schedule: delays come from validated
        # latency distributions (non-negative by construction), so the hot
        # path pushes pre-bound calls straight onto the event queue.
        self._push_call = simulator.queue.push_call
        self._membership = membership
        self._network = network
        self._config = config
        self._r = config.r
        self._w = config.w
        self._trace_log = trace_log
        # Bound narrow-API methods: recording happens with scalars through
        # one pre-bound call per lifecycle step, identically on the object
        # and columnar backends.
        self._begin_write = trace_log.begin_write
        self._note_write_arrival = trace_log.note_write_arrival
        self._note_write_ack = trace_log.note_write_ack
        self._note_write_commit = trace_log.note_write_commit
        self._note_write_drop = trace_log.note_write_drop
        self._begin_read = trace_log.begin_read
        self._note_read_response = trace_log.note_read_response
        self._note_read_quorum = trace_log.note_read_quorum
        self._note_read_late = trace_log.note_read_late
        self._note_read_complete = trace_log.note_read_complete
        self._note_read_timeout = trace_log.note_read_timeout
        self._note_read_repair = trace_log.note_read_repair
        # Single-entry placement memo (validation workloads hammer one key);
        # guarded by the membership generation so ring changes invalidate it.
        self._pref_key: str | None = None
        self._pref_nodes: tuple[StorageNode, ...] = ()
        self._pref_generation = -1
        self._read_repair = read_repair
        self._hinted_handoff = hinted_handoff
        # Dynamo's "sloppy quorum": when a home replica is down, the write is
        # redirected to the next healthy node on the ring and that node's
        # acknowledgement counts toward W (availability over placement).
        self._sloppy_quorum = sloppy_quorum
        self._timeout_ms = timeout_ms
        # Dynamo sends reads to all N replicas; Voldemort sends to only R
        # (§2.3).  Staleness is unaffected but load and late responses differ.
        self._read_fanout_all = read_fanout_all
        # Event labels are debugging sugar: building the per-message f-strings
        # costs an allocation on every hot-path event, so untraced runs skip
        # them entirely (the trace *log* — the measurement instrument — is
        # unaffected; only event-queue labels are gated).
        self._event_labels = event_labels
        self._lamport = LamportClock()
        self._clock_vector = VectorClock()
        self.repairs_sent = 0
        self.hints_stored = 0
        self.hints_replayed = 0
        #: Hints held on behalf of crashed replicas: node id → list of payloads.
        self._pending_hints: dict[str, list[VersionedValue]] = {}

    def _preference(self, key: str) -> tuple[StorageNode, ...]:
        """The key's N-replica preference list, memoised per coordinator."""
        membership = self._membership
        if key == self._pref_key and self._pref_generation == membership.generation:
            return self._pref_nodes
        nodes = membership.preference_nodes(key, self._config.n)
        self._pref_key = key
        self._pref_nodes = nodes
        self._pref_generation = membership.generation
        return nodes

    # ------------------------------------------------------------------
    # Write path.
    # ------------------------------------------------------------------
    def write(
        self,
        key: str,
        value: object,
        on_complete: Optional[Callable[[WriteTrace], None]] = None,
    ) -> WriteHandle:
        """Issue a write: forward to all N replicas, commit after W acknowledgements."""
        now = self._clock.now_ms
        timestamp = self._lamport.tick()
        self._clock_vector = self._clock_vector.increment(self.coordinator_id)
        version = Version(timestamp=timestamp, writer=self.coordinator_id)
        payload = VersionedValue(
            key=key,
            value=value,
            version=version,
            vector_clock=self._clock_vector,
            write_started_ms=now,
        )
        operation_id = next_operation_id()
        ref = self._begin_write(operation_id, key, version, self.coordinator_id, now)
        handle = WriteHandle(self._trace_log, ref, payload, on_complete=on_complete)

        replicas = self._preference(key)
        if self._event_labels:
            for replica in replicas:
                self._send_write(replica, handle)
        else:
            # Inlined _send_write: locals bound once, delivery checked only
            # when loss or partitions are actually configured (delivery state
            # can only change between events, never inside this send loop).
            network = self._network
            push_call = self._push_call
            deliver = self._deliver_write
            lossy = network.may_drop
            for replica in replicas:
                if lossy and not network.delivers(
                    self.coordinator_id, replica.node_id
                ):
                    self._note_write_drop(ref, replica.node_id)
                    continue
                push_call(
                    now + network.write_delay(replica.node_id),
                    deliver,
                    replica,
                    handle,
                )

        handle._timeout_event = self._simulator.schedule(
            self._timeout_ms,
            lambda: self._write_timeout(handle),
            label=f"write-timeout:{operation_id}" if self._event_labels else "",
        )
        return handle

    def _send_write(self, replica: StorageNode, handle: WriteHandle) -> None:
        """Send the write message for one replica (the W leg)."""
        if not self._network.delivers(self.coordinator_id, replica.node_id):
            self._note_write_drop(handle.ref, replica.node_id)
            return
        delay = self._network.write_delay(replica.node_id)
        if self._event_labels:
            self._simulator.schedule(
                delay,
                lambda: self._deliver_write(replica, handle),
                label=f"write-deliver:{handle.trace.operation_id}:{replica.node_id}",
            )
        else:
            self._push_call(
                self._clock.now_ms + delay, self._deliver_write, replica, handle
            )

    def _deliver_write(self, replica: StorageNode, handle: WriteHandle) -> None:
        """The write message arrives at a replica; apply it and send the ack (A leg)."""
        now = self._clock.now_ms
        if not replica.alive:
            self._note_write_drop(handle.ref, replica.node_id)
            if self._hinted_handoff:
                self._store_hint(replica.node_id, handle.payload)
            if self._sloppy_quorum:
                self._redirect_to_fallback(replica, handle)
            return
        replica.apply_write(handle.payload, now)
        self._note_write_arrival(handle.ref, replica.node_id, now)
        network = self._network
        if network.may_drop and not network.delivers(
            replica.node_id, self.coordinator_id
        ):
            return
        ack_delay = network.ack_delay(replica.node_id)
        if self._event_labels:
            self._simulator.schedule(
                ack_delay,
                lambda: self._receive_ack(replica.node_id, handle),
                label=f"write-ack:{handle.trace.operation_id}:{replica.node_id}",
            )
        else:
            self._push_call(
                self._clock.now_ms + ack_delay,
                self._receive_ack,
                replica.node_id,
                handle,
            )

    def _receive_ack(self, replica_id: str, handle: WriteHandle) -> None:
        """An acknowledgement reaches the coordinator; commit at the W-th one."""
        now = self._clock.now_ms
        self._note_write_ack(handle.ref, replica_id, now)
        handle.acks_received += 1
        if handle.finished or handle.committed:
            return
        if handle.acks_received >= self._w:
            self._note_write_commit(handle.ref, now)
            handle.committed = True
            handle.finished = True
            if handle._timeout_event is not None:
                handle._timeout_event.cancel()
            if handle.on_complete is not None:
                handle.on_complete(handle.trace)

    def _write_timeout(self, handle: WriteHandle) -> None:
        """Fail the write if the quorum never assembled within the timeout."""
        if handle.finished:
            return
        handle.finished = True
        if handle.on_complete is not None:
            handle.on_complete(handle.trace)

    # ------------------------------------------------------------------
    # Sloppy quorums.
    # ------------------------------------------------------------------
    def _redirect_to_fallback(self, failed_replica: StorageNode, handle: WriteHandle) -> None:
        """Send the write to the next healthy non-replica node on the ring.

        The fallback's acknowledgement counts toward the write quorum, which is
        what keeps Dynamo-style writes available when home replicas are down.
        Each failed home replica consumes a distinct fallback.
        """
        key = handle.payload.key
        candidates = self._membership.extended_preference_list(
            key, len(self._membership)
        )
        home_ids = {
            node.node_id for node in self._membership.preference_list(key, self._config.n)
        }
        fallback: Optional[StorageNode] = None
        for candidate in candidates:
            if candidate.node_id in home_ids or candidate.node_id in handle.used_fallbacks:
                continue
            if candidate.alive:
                fallback = candidate
                break
        if fallback is None:
            return
        handle.used_fallbacks.add(fallback.node_id)
        if not self._network.delivers(self.coordinator_id, fallback.node_id):
            return
        delay = self._network.write_delay(fallback.node_id)
        if self._event_labels:
            self._simulator.schedule(
                delay,
                lambda: self._deliver_sloppy_write(fallback, failed_replica, handle),
                label=f"sloppy-write:{handle.trace.operation_id}:{fallback.node_id}",
            )
        else:
            self._push_call(
                self._clock.now_ms + delay,
                self._deliver_sloppy_write,
                fallback,
                failed_replica,
                handle,
            )

    def _deliver_sloppy_write(
        self, fallback: StorageNode, intended: StorageNode, handle: WriteHandle
    ) -> None:
        """The redirected write arrives at the fallback node."""
        now = self._clock.now_ms
        if not fallback.alive:
            return
        fallback.apply_write(handle.payload, now)
        self._note_write_arrival(handle.ref, fallback.node_id, now)
        if self._hinted_handoff:
            # The fallback holds the data on behalf of the intended replica;
            # keep a hint so it can be replayed after recovery.
            self._store_hint(intended.node_id, handle.payload)
        if not self._network.delivers(fallback.node_id, self.coordinator_id):
            return
        ack_delay = self._network.ack_delay(fallback.node_id)
        if self._event_labels:
            self._simulator.schedule(
                ack_delay,
                lambda: self._receive_ack(fallback.node_id, handle),
                label=f"sloppy-ack:{handle.trace.operation_id}:{fallback.node_id}",
            )
        else:
            self._push_call(
                self._clock.now_ms + ack_delay,
                self._receive_ack,
                fallback.node_id,
                handle,
            )

    # ------------------------------------------------------------------
    # Hinted handoff.
    # ------------------------------------------------------------------
    def _store_hint(self, intended_replica: str, payload: VersionedValue) -> None:
        """Keep a hint for a crashed replica; replayed on the next write/read touching it."""
        self._pending_hints.setdefault(intended_replica, []).append(payload)
        self.hints_stored += 1

    def replay_hints(self, replica: StorageNode) -> int:
        """Push held hints to a recovered replica (called by the store's maintenance loop)."""
        if not replica.alive:
            return 0
        hints = self._pending_hints.pop(replica.node_id, [])
        replayed = 0
        for payload in hints:
            delay = self._network.write_delay(replica.node_id)
            if self._event_labels:
                self._simulator.schedule(
                    delay,
                    lambda p=payload: replica.apply_write(p, self._clock.now_ms),
                    label=f"hint-replay:{replica.node_id}",
                )
            else:
                self._simulator.schedule_action(
                    delay, lambda p=payload: replica.apply_write(p, self._clock.now_ms)
                )
            replayed += 1
        self.hints_replayed += replayed
        return replayed

    @property
    def pending_hint_count(self) -> int:
        """Hints currently held for crashed replicas."""
        return sum(len(hints) for hints in self._pending_hints.values())

    # ------------------------------------------------------------------
    # Read path.
    # ------------------------------------------------------------------
    def read(
        self,
        key: str,
        on_complete: Optional[Callable[[ReadTrace], None]] = None,
    ) -> ReadHandle:
        """Issue a read: forward to replicas, return the newest of the first R responses."""
        now = self._clock.now_ms
        operation_id = next_operation_id()
        ref = self._begin_read(operation_id, key, self.coordinator_id, now)
        replicas = self._preference(key)
        if not self._read_fanout_all:
            replicas = replicas[: self._r]
        handle = ReadHandle(self._trace_log, ref, len(replicas), on_complete=on_complete)

        if self._event_labels:
            for replica in replicas:
                self._send_read(replica, key, handle)
        else:
            # Inlined _send_read (see write() above for the rationale).
            network = self._network
            push_call = self._push_call
            deliver = self._deliver_read
            lossy = network.may_drop
            for replica in replicas:
                if lossy and not network.delivers(
                    self.coordinator_id, replica.node_id
                ):
                    handle.expected_responses -= 1
                    continue
                push_call(
                    now + network.read_delay(replica.node_id),
                    deliver,
                    replica,
                    key,
                    handle,
                )

        handle._timeout_event = self._simulator.schedule(
            self._timeout_ms,
            lambda: self._read_timeout(handle),
            label=f"read-timeout:{operation_id}" if self._event_labels else "",
        )
        return handle

    def _send_read(self, replica: StorageNode, key: str, handle: ReadHandle) -> None:
        """Send the read request for one replica (the R leg)."""
        if not self._network.delivers(self.coordinator_id, replica.node_id):
            handle.expected_responses -= 1
            return
        delay = self._network.read_delay(replica.node_id)
        if self._event_labels:
            self._simulator.schedule(
                delay,
                lambda: self._deliver_read(replica, key, handle),
                label=f"read-deliver:{handle.trace.operation_id}:{replica.node_id}",
            )
        else:
            self._push_call(
                self._clock.now_ms + delay, self._deliver_read, replica, key, handle
            )

    def _deliver_read(self, replica: StorageNode, key: str, handle: ReadHandle) -> None:
        """The read request arrives at a replica; send back its current version (S leg)."""
        if not replica.alive:
            handle.expected_responses -= 1
            if self._read_repair:
                self._maybe_run_read_repair(handle)
            return
        payload = replica.read(key)
        network = self._network
        if network.may_drop and not network.delivers(
            replica.node_id, self.coordinator_id
        ):
            handle.expected_responses -= 1
            if self._read_repair:
                self._maybe_run_read_repair(handle)
            return
        delay = network.response_delay(replica.node_id)
        if self._event_labels:
            self._simulator.schedule(
                delay,
                lambda: self._receive_response(replica.node_id, payload, handle),
                label=f"read-response:{handle.trace.operation_id}:{replica.node_id}",
            )
        else:
            self._push_call(
                self._clock.now_ms + delay,
                self._receive_response,
                replica.node_id,
                payload,
                handle,
            )

    def _receive_response(
        self,
        replica_id: str,
        payload: Optional[VersionedValue],
        handle: ReadHandle,
    ) -> None:
        """A replica's response reaches the coordinator."""
        now = self._clock.now_ms
        self._note_read_response(handle.ref, replica_id, now)
        handle.responses[replica_id] = payload
        version = payload.version if payload is not None else None

        if not handle.finished and handle.quorum_count < self._r:
            handle.quorum_count += 1
            if payload is not None:
                newest = handle._newest
                if newest is None or payload.version > newest.version:
                    handle._newest = payload
            self._note_read_quorum(handle.ref, replica_id, version)
            if handle.quorum_count >= self._r:
                self._complete_read(handle)
        else:
            self._note_read_late(handle.ref, replica_id, version)

        if self._read_repair:
            self._maybe_run_read_repair(handle)

    def _complete_read(self, handle: ReadHandle) -> None:
        """Assemble the result from the first R responses and return to the client."""
        now = self._clock.now_ms
        newest = handle._newest
        handle.value = newest
        self._note_read_complete(
            handle.ref, newest.version if newest is not None else None, now
        )
        handle.finished = True
        if handle._timeout_event is not None:
            handle._timeout_event.cancel()
        if handle.on_complete is not None:
            handle.on_complete(handle.trace)

    def _read_timeout(self, handle: ReadHandle) -> None:
        """Fail the read if fewer than R responses arrived within the timeout."""
        if handle.finished:
            return
        handle.finished = True
        self._note_read_timeout(handle.ref)
        if handle.on_complete is not None:
            handle.on_complete(handle.trace)

    # ------------------------------------------------------------------
    # Read repair.
    # ------------------------------------------------------------------
    def _maybe_run_read_repair(self, handle: ReadHandle) -> None:
        """After the final response, push the newest version to out-of-date replicas."""
        if not self._read_repair:
            return
        responses_seen = len(handle.responses)
        if responses_seen < handle.expected_responses or responses_seen == 0:
            return
        newest: Optional[VersionedValue] = None
        for payload in handle.responses.values():
            if payload is not None and (newest is None or payload.version > newest.version):
                newest = payload
        if newest is None:
            return
        for replica_id, payload in handle.responses.items():
            is_stale = payload is None or payload.version < newest.version
            if not is_stale:
                continue
            replica = self._membership.node(replica_id)
            delay = self._network.write_delay(replica_id)
            if self._event_labels:
                self._simulator.schedule(
                    delay,
                    lambda r=replica, p=newest: r.apply_write(p, self._clock.now_ms),
                    label=f"read-repair:{handle.trace.operation_id}:{replica_id}",
                )
            else:
                self._simulator.schedule_action(
                    delay,
                    lambda r=replica, p=newest: r.apply_write(p, self._clock.now_ms),
                )
            self._note_read_repair(handle.ref)
            self.repairs_sent += 1
