"""Network delay model for the cluster simulator.

The simulator's message delays are drawn from the same
:class:`~repro.latency.production.WARSDistributions` objects used by the
analytical Monte Carlo model, which is what makes the §5.2 validation an
apples-to-apples comparison: both the simulator and the predictor consume the
identical latency model, and any disagreement is due to protocol behaviour
rather than different inputs.

Message loss and partitions are modelled here as well so failure ablations
do not need to touch the coordinator logic.

Delay sampling is batched: each distinct underlying distribution gets a
:class:`~repro.cluster.sampling.LatencyDrawBuffer` that refills
``draw_batch_size`` values at a time from the shared generator, replacing the
one-numpy-call-per-message hot path (see :mod:`repro.cluster.sampling` for
the determinism contract).  ``draw_batch_size=1`` reproduces the legacy
per-draw seed stream exactly.

An optional :class:`~repro.faults.plan.FaultPlan` modulates drawn delays on a
time-varying schedule (gray failures, correlated bursts).  Modulation is pure
arithmetic on the already-drawn value — it never consumes draws — so fault
plans compose with the batching contract without perturbing any stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.sampling import (
    DEFAULT_DRAW_BATCH_SIZE,
    LatencyDrawBuffer,
    UniformDrawBuffer,
)
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FaultRuntime
from repro.latency.base import LatencyDistribution
from repro.latency.composite import PerReplicaLatency
from repro.latency.production import WARSDistributions

__all__ = ["Network"]


@dataclass
class Network:
    """Samples one-way message delays and applies loss/partition policies.

    Parameters
    ----------
    distributions:
        The WARS one-way latency distributions.
    rng:
        Random generator shared with the simulator.
    replica_slots:
        Maps replica node ids to slot indices for per-replica distributions
        (the WAN scenario).  Optional for IID distributions.
    loss_probability:
        Independent probability that any one-way message is dropped.
    draw_batch_size:
        Latency draws buffered per distribution between generator refills.
        ``1`` disables batching and reproduces the legacy per-message
        ``sample(1, rng)`` stream bit-for-bit.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` whose gray failures
        and burst processes modulate drawn delays on a time-varying schedule.
        Modulation is applied *after* the buffered draw, so it never changes
        how many generator draws are consumed (see
        :mod:`repro.faults.runtime`).  Requires ``clock``.
    clock:
        The simulator's clock (any object with a ``now_ms`` attribute); only
        needed when ``fault_plan`` is set.
    """

    distributions: WARSDistributions
    rng: np.random.Generator
    replica_slots: dict[str, int] = field(default_factory=dict)
    loss_probability: float = 0.0
    draw_batch_size: int = DEFAULT_DRAW_BATCH_SIZE
    _partitioned: set[frozenset[str]] = field(default_factory=set, repr=False)
    dropped_messages: int = 0
    fault_plan: FaultPlan | None = None
    clock: object | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {self.loss_probability}"
            )
        if self.draw_batch_size < 1:
            raise ConfigurationError(
                f"draw batch size must be a positive integer, got {self.draw_batch_size}"
            )
        # One buffer per distinct distribution object: legs sharing a
        # distribution (e.g. A=R=S in the §5.2 validation) share its buffer,
        # consuming draws in message order.  Keyed by id() — the distribution
        # objects are pinned by self.distributions for the network's lifetime.
        self._buffers: dict[int, LatencyDrawBuffer] = {}
        self._loss_buffer: UniformDrawBuffer | None = None
        # Per-leg replica → buffer caches so the delay methods are a dict hit
        # plus a buffered draw: the per-replica resolution (isinstance check,
        # slot validation) runs once per (leg, replica), not once per message.
        self._w_cache: dict[str, LatencyDrawBuffer] = {}
        self._a_cache: dict[str, LatencyDrawBuffer] = {}
        self._r_cache: dict[str, LatencyDrawBuffer] = {}
        self._s_cache: dict[str, LatencyDrawBuffer] = {}
        if self.fault_plan is not None:
            if self.clock is None:
                raise ConfigurationError(
                    "a fault plan needs the simulator clock; pass clock= "
                    "(DynamoCluster wires this automatically)"
                )
            self._fault_runtime: FaultRuntime | None = FaultRuntime(
                self.fault_plan, self.clock
            )
        else:
            self._fault_runtime = None

    # ------------------------------------------------------------------
    # Delay sampling.
    # ------------------------------------------------------------------
    def _buffer_for(self, distribution: LatencyDistribution) -> LatencyDrawBuffer:
        buffer = self._buffers.get(id(distribution))
        if buffer is None:
            buffer = LatencyDrawBuffer(distribution, self.rng, self.draw_batch_size)
            self._buffers[id(distribution)] = buffer
        return buffer

    def _resolve(
        self, distribution: LatencyDistribution, replica: str
    ) -> LatencyDrawBuffer:
        """Resolve a leg distribution for one replica to its shared draw buffer."""
        if isinstance(distribution, PerReplicaLatency):
            slot = self.replica_slots.get(replica)
            if slot is None:
                raise ConfigurationError(
                    f"replica {replica!r} has no slot assignment for per-replica latencies"
                )
            if not 0 <= slot < distribution.replica_count:
                raise ConfigurationError(
                    f"replica {replica!r} slot {slot} outside per-replica distribution "
                    f"of size {distribution.replica_count}"
                )
            distribution = distribution.replicas[slot]
        return self._buffer_for(distribution)

    def _sample(self, distribution: LatencyDistribution, replica: str) -> float:
        """Uncached draw for one leg/replica (kept for ad-hoc callers)."""
        return self._resolve(distribution, replica).draw()

    @property
    def may_drop(self) -> bool:
        """True when delivery decisions can drop messages.

        Hot paths consult this once per operation/delivery and call
        :meth:`delivers` only when it is ``True``, so lossless partition-free
        runs never pay the per-message delivery check.  Kept next to the drop
        machinery so any new drop mechanism updates both together.
        """
        return bool(self._partitioned) or self.loss_probability > 0.0

    @property
    def draw_refills(self) -> int:
        """Total buffer refills so far (instrumentation for tests/benchmarks)."""
        return sum(buffer.refills for buffer in self._buffers.values())

    @property
    def draws_consumed(self) -> int:
        """Latency draws served so far across every buffer.

        This is the quantity the fault-plan draw-accounting contract pins:
        modulation rescales values *after* they are drawn, so a run with a
        fault plan consumes exactly as many draws (and triggers exactly as
        many refills) as the same run without one.
        """
        return sum(
            buffer.refills * buffer.batch_size - buffer.pending
            for buffer in self._buffers.values()
        )

    @property
    def fault_runtime(self) -> FaultRuntime | None:
        """The plan's per-cluster runtime (``None`` without a fault plan)."""
        return self._fault_runtime

    def write_delay(self, replica: str) -> float:
        """One-way delay for the coordinator → replica write message (``W``)."""
        buffer = self._w_cache.get(replica)
        if buffer is None:
            buffer = self._resolve(self.distributions.w, replica)
            self._w_cache[replica] = buffer
        value = buffer.draw()
        if self._fault_runtime is not None:
            return self._fault_runtime.modulate("W", replica, value)
        return value

    def ack_delay(self, replica: str) -> float:
        """One-way delay for the replica → coordinator acknowledgement (``A``)."""
        buffer = self._a_cache.get(replica)
        if buffer is None:
            buffer = self._resolve(self.distributions.a, replica)
            self._a_cache[replica] = buffer
        value = buffer.draw()
        if self._fault_runtime is not None:
            return self._fault_runtime.modulate("A", replica, value)
        return value

    def read_delay(self, replica: str) -> float:
        """One-way delay for the coordinator → replica read request (``R``)."""
        buffer = self._r_cache.get(replica)
        if buffer is None:
            buffer = self._resolve(self.distributions.r, replica)
            self._r_cache[replica] = buffer
        value = buffer.draw()
        if self._fault_runtime is not None:
            return self._fault_runtime.modulate("R", replica, value)
        return value

    def response_delay(self, replica: str) -> float:
        """One-way delay for the replica → coordinator read response (``S``)."""
        buffer = self._s_cache.get(replica)
        if buffer is None:
            buffer = self._resolve(self.distributions.s, replica)
            self._s_cache[replica] = buffer
        value = buffer.draw()
        if self._fault_runtime is not None:
            return self._fault_runtime.modulate("S", replica, value)
        return value

    # ------------------------------------------------------------------
    # Loss and partitions.
    # ------------------------------------------------------------------
    def partition(self, side_a: str, side_b: str) -> None:
        """Drop all messages between two endpoints until :meth:`heal` is called."""
        self._partitioned.add(frozenset((side_a, side_b)))

    def heal(self, side_a: str, side_b: str) -> None:
        """Remove a previously installed partition (no-op if absent)."""
        self._partitioned.discard(frozenset((side_a, side_b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self._partitioned.clear()

    def delivers(self, sender: str, receiver: str) -> bool:
        """Decide whether a message between two endpoints is delivered.

        The decision never consumes latency draws: loss coin flips come from
        a dedicated uniform buffer, so dropped messages leave the latency
        streams untouched (see :mod:`repro.cluster.sampling`).
        """
        if not self._partitioned and not self.loss_probability:
            # Fast path for the common lossless, partition-free runs: no
            # frozenset allocation, no RNG consumption.
            return True
        if self._partitioned and frozenset((sender, receiver)) in self._partitioned:
            self.dropped_messages += 1
            return False
        if self.loss_probability:
            if self._loss_buffer is None:
                self._loss_buffer = UniformDrawBuffer(self.rng, self.draw_batch_size)
            if self._loss_buffer.draw() < self.loss_probability:
                self.dropped_messages += 1
                return False
        return True
