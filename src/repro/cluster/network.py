"""Network delay model for the cluster simulator.

The simulator's message delays are drawn from the same
:class:`~repro.latency.production.WARSDistributions` objects used by the
analytical Monte Carlo model, which is what makes the §5.2 validation an
apples-to-apples comparison: both the simulator and the predictor consume the
identical latency model, and any disagreement is due to protocol behaviour
rather than different inputs.

Message loss and partitions are modelled here as well so failure ablations
do not need to touch the coordinator logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.latency.base import LatencyDistribution
from repro.latency.composite import PerReplicaLatency
from repro.latency.production import WARSDistributions

__all__ = ["Network"]


@dataclass
class Network:
    """Samples one-way message delays and applies loss/partition policies.

    Parameters
    ----------
    distributions:
        The WARS one-way latency distributions.
    rng:
        Random generator shared with the simulator.
    replica_slots:
        Maps replica node ids to slot indices for per-replica distributions
        (the WAN scenario).  Optional for IID distributions.
    loss_probability:
        Independent probability that any one-way message is dropped.
    """

    distributions: WARSDistributions
    rng: np.random.Generator
    replica_slots: dict[str, int] = field(default_factory=dict)
    loss_probability: float = 0.0
    _partitioned: set[frozenset[str]] = field(default_factory=set, repr=False)
    dropped_messages: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {self.loss_probability}"
            )

    # ------------------------------------------------------------------
    # Delay sampling.
    # ------------------------------------------------------------------
    def _sample(self, distribution: LatencyDistribution, replica: str) -> float:
        if isinstance(distribution, PerReplicaLatency):
            slot = self.replica_slots.get(replica)
            if slot is None:
                raise ConfigurationError(
                    f"replica {replica!r} has no slot assignment for per-replica latencies"
                )
            if not 0 <= slot < distribution.replica_count:
                raise ConfigurationError(
                    f"replica {replica!r} slot {slot} outside per-replica distribution "
                    f"of size {distribution.replica_count}"
                )
            return float(distribution.replicas[slot].sample(1, self.rng)[0])
        return float(distribution.sample(1, self.rng)[0])

    def write_delay(self, replica: str) -> float:
        """One-way delay for the coordinator → replica write message (``W``)."""
        return self._sample(self.distributions.w, replica)

    def ack_delay(self, replica: str) -> float:
        """One-way delay for the replica → coordinator acknowledgement (``A``)."""
        return self._sample(self.distributions.a, replica)

    def read_delay(self, replica: str) -> float:
        """One-way delay for the coordinator → replica read request (``R``)."""
        return self._sample(self.distributions.r, replica)

    def response_delay(self, replica: str) -> float:
        """One-way delay for the replica → coordinator read response (``S``)."""
        return self._sample(self.distributions.s, replica)

    # ------------------------------------------------------------------
    # Loss and partitions.
    # ------------------------------------------------------------------
    def partition(self, side_a: str, side_b: str) -> None:
        """Drop all messages between two endpoints until :meth:`heal` is called."""
        self._partitioned.add(frozenset((side_a, side_b)))

    def heal(self, side_a: str, side_b: str) -> None:
        """Remove a previously installed partition (no-op if absent)."""
        self._partitioned.discard(frozenset((side_a, side_b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self._partitioned.clear()

    def delivers(self, sender: str, receiver: str) -> bool:
        """Decide whether a message between two endpoints is delivered."""
        if frozenset((sender, receiver)) in self._partitioned:
            self.dropped_messages += 1
            return False
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.dropped_messages += 1
            return False
        return True
