"""Cluster membership: the node roster and per-key replica lookup.

Dynamo-style systems use one quorum system per key (§2.2): the membership
component owns the consistent-hash ring and answers "which N nodes replicate
this key?".  It also tracks liveness so coordinators can consult a single
source of truth when deciding whether to hint writes for failed replicas.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.cluster.node import StorageNode
from repro.cluster.ring import ConsistentHashRing
from repro.exceptions import ConfigurationError

__all__ = ["Membership"]


class Membership:
    """Node roster, placement, and liveness for one cluster."""

    def __init__(self, node_ids: Iterable[str], virtual_nodes: int = 64) -> None:
        ids = list(node_ids)
        if not ids:
            raise ConfigurationError("a cluster requires at least one node")
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate node identifiers in {ids}")
        self._nodes: dict[str, StorageNode] = {
            node_id: StorageNode(node_id=node_id) for node_id in ids
        }
        self._ring = ConsistentHashRing(ids, virtual_nodes=virtual_nodes)
        #: Bumped whenever the ring changes; lets coordinators keep their own
        #: tiny placement memos without risking staleness.
        self.generation = 0
        # Placement cache: ring walks are pure in (key, n) until the ring
        # itself changes, and coordinators resolve the same key's preference
        # list on every operation — a hot path at paper-scale write counts.
        # Node objects are mutated in place for liveness, so cached tuples
        # stay truthful across crashes/recoveries.
        self._preference_cache: dict[tuple[str, int], tuple[StorageNode, ...]] = {}

    # ------------------------------------------------------------------
    # Roster.
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> list[str]:
        """All node identifiers, in insertion order."""
        return list(self._nodes)

    @property
    def nodes(self) -> Mapping[str, StorageNode]:
        """Mapping of node id → node object."""
        return dict(self._nodes)

    def node(self, node_id: str) -> StorageNode:
        """Look up one node by id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown node {node_id!r}") from exc

    def add_node(self, node_id: str) -> StorageNode:
        """Add a new (empty) node to the cluster and the ring."""
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id!r} already exists")
        node = StorageNode(node_id=node_id)
        self._nodes[node_id] = node
        self._ring.add_node(node_id)
        self._preference_cache.clear()
        self.generation += 1
        return node

    def remove_node(self, node_id: str) -> None:
        """Permanently remove a node from the cluster and the ring."""
        self.node(node_id)
        del self._nodes[node_id]
        self._ring.remove_node(node_id)
        self._preference_cache.clear()
        self.generation += 1

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Placement and liveness.
    # ------------------------------------------------------------------
    def preference_nodes(self, key: str, n: int) -> tuple[StorageNode, ...]:
        """Cached ``n`` replica nodes for ``key`` (alive or not), in ring order.

        Returns a tuple so callers cannot mutate the cached placement; the
        cache is invalidated whenever the ring changes (add/remove node).
        """
        cached = self._preference_cache.get((key, n))
        if cached is None:
            cached = tuple(
                self.node(node_id) for node_id in self._ring.preference_list(key, n)
            )
            self._preference_cache[(key, n)] = cached
        return cached

    def preference_list(self, key: str, n: int) -> list[StorageNode]:
        """The ``n`` replica nodes for ``key`` (alive or not), in ring order."""
        return list(self.preference_nodes(key, n))

    def alive_nodes(self) -> list[StorageNode]:
        """Nodes currently alive."""
        return [node for node in self._nodes.values() if node.alive]

    def failed_nodes(self) -> list[StorageNode]:
        """Nodes currently crashed."""
        return [node for node in self._nodes.values() if not node.alive]

    def extended_preference_list(self, key: str, count: int) -> list[StorageNode]:
        """The first ``count`` nodes in ring order for ``key`` (capped at the cluster size).

        The nodes beyond the first ``n`` are the hinted-handoff / sloppy-quorum
        fallback candidates, in the order Dynamo would try them.
        """
        capped = min(count, len(self._nodes))
        return [self.node(node_id) for node_id in self._ring.preference_list(key, capped)]

    def fallback_for(self, key: str, n: int, failed_node_id: str) -> StorageNode | None:
        """The first non-preference-list node, used as a hinted-handoff holder.

        Returns ``None`` when every node is already in the preference list.
        """
        preference_ids = {node.node_id for node in self.preference_list(key, n)}
        if failed_node_id not in preference_ids:
            raise ConfigurationError(
                f"node {failed_node_id!r} is not a replica for key {key!r}"
            )
        extended = self._ring.preference_list(key, min(len(self._nodes), n + 1))
        for node_id in extended:
            if node_id not in preference_ids:
                return self.node(node_id)
        return None
