"""Version ordering for the Dynamo-style store.

The paper assumes "a total ordering of versions ... easily achievable using
globally synchronized clocks or a causal ordering provided by mechanisms such
as vector clocks with commutative merge functions" (§2.1, footnote 2).  This
module provides both:

* :class:`LamportClock` / :class:`Version` — a total order built from a
  (logical timestamp, writer id) pair, which is what the coordinator-assigned
  version numbers in the validation experiments use; and
* :class:`VectorClock` — a causal partial order with a commutative,
  associative merge, used by the conflict-detection paths (siblings) and the
  property-based tests.

A :class:`VersionedValue` bundles a value with its version and the (simulated)
commit metadata needed for staleness accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.exceptions import SimulationError

__all__ = ["LamportClock", "Version", "VectorClock", "Causality", "VersionedValue"]


class LamportClock:
    """A per-process Lamport logical clock."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"logical clock cannot start below zero, got {start}")
        self._time = int(start)

    @property
    def time(self) -> int:
        """Current logical time."""
        return self._time

    def tick(self) -> int:
        """Advance the clock for a local event and return the new time."""
        self._time += 1
        return self._time

    def observe(self, other_time: int) -> int:
        """Merge in a timestamp observed on a received message, then tick."""
        if other_time < 0:
            raise SimulationError(f"observed timestamp cannot be negative, got {other_time}")
        self._time = max(self._time, int(other_time)) + 1
        return self._time


@dataclass(frozen=True, order=True)
class Version:
    """A totally ordered version identifier: (logical timestamp, writer id).

    Ordering is lexicographic, so two writes with the same logical timestamp
    are ordered deterministically by their writer identifier — the standard
    Lamport total-order construction.
    """

    timestamp: int
    writer: str

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise SimulationError(f"version timestamp cannot be negative, got {self.timestamp}")

    def is_newer_than(self, other: "Version | None") -> bool:
        """True when this version supersedes ``other`` (``None`` means no version)."""
        if other is None:
            return True
        return self > other


class Causality(Enum):
    """Relationship between two vector clocks."""

    EQUAL = "equal"
    BEFORE = "before"
    AFTER = "after"
    CONCURRENT = "concurrent"


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock keyed by node identifier."""

    counters: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node, count in self.counters.items():
            if count < 0:
                raise SimulationError(f"vector clock entry for {node!r} is negative: {count}")
        object.__setattr__(self, "counters", dict(self.counters))

    def increment(self, node: str) -> "VectorClock":
        """Return a new clock with ``node``'s counter advanced by one."""
        counters = dict(self.counters)
        counters[node] = counters.get(node, 0) + 1
        return VectorClock(counters)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Element-wise maximum — the commutative, associative merge."""
        counters = dict(self.counters)
        for node, count in other.counters.items():
            counters[node] = max(counters.get(node, 0), count)
        return VectorClock(counters)

    def compare(self, other: "VectorClock") -> Causality:
        """Determine the causal relationship between two clocks."""
        keys = set(self.counters) | set(other.counters)
        less_somewhere = False
        greater_somewhere = False
        for key in keys:
            mine = self.counters.get(key, 0)
            theirs = other.counters.get(key, 0)
            if mine < theirs:
                less_somewhere = True
            elif mine > theirs:
                greater_somewhere = True
        if not less_somewhere and not greater_somewhere:
            return Causality.EQUAL
        if less_somewhere and not greater_somewhere:
            return Causality.BEFORE
        if greater_somewhere and not less_somewhere:
            return Causality.AFTER
        return Causality.CONCURRENT

    def dominates(self, other: "VectorClock") -> bool:
        """True when this clock causally supersedes or equals ``other``."""
        return self.compare(other) in (Causality.AFTER, Causality.EQUAL)


@dataclass(frozen=True)
class VersionedValue:
    """A value stored at a replica along with its version metadata.

    Attributes
    ----------
    key / value:
        The logical key and its payload.
    version:
        Totally ordered version identifier assigned by the write coordinator.
    vector_clock:
        Causal history, used for sibling detection in conflict-aware reads.
    write_started_ms:
        Simulated time at which the coordinator began the write.
    """

    key: str
    value: object
    version: Version
    vector_clock: VectorClock = field(default_factory=VectorClock)
    write_started_ms: float = 0.0

    def supersedes(self, other: "VersionedValue | None") -> bool:
        """Total-order comparison used when replicas decide whether to overwrite."""
        if other is None:
            return True
        if other.key != self.key:
            raise SimulationError(
                f"cannot compare versions of different keys ({self.key!r} vs {other.key!r})"
            )
        return self.version.is_newer_than(other.version)
