"""Merkle trees over key ranges for active anti-entropy.

Dynamo and Cassandra summarise replica contents with Merkle trees so that two
replicas can find divergent key ranges by exchanging a logarithmic number of
hashes rather than full contents (§4.2; Cassandra only does this when a repair
is requested manually).  This implementation hashes (key, version) pairs into
a fixed number of leaf buckets by key hash, then builds a binary hash tree
over the buckets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cluster.versioning import Version
from repro.exceptions import ConfigurationError

__all__ = ["MerkleTree", "diff_buckets"]


def _hash_text(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def _bucket_for(key: str, bucket_count: int) -> int:
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % bucket_count


@dataclass(frozen=True)
class MerkleTree:
    """An immutable Merkle summary of a replica's (key → version) contents."""

    bucket_count: int
    bucket_hashes: tuple[str, ...]
    levels: tuple[tuple[str, ...], ...]

    @classmethod
    def build(
        cls, contents: Mapping[str, Version], bucket_count: int = 64
    ) -> "MerkleTree":
        """Build a tree from a mapping of key to its newest version."""
        if bucket_count < 1 or bucket_count & (bucket_count - 1):
            raise ConfigurationError(
                f"bucket count must be a positive power of two, got {bucket_count}"
            )
        buckets: list[list[str]] = [[] for _ in range(bucket_count)]
        for key in sorted(contents):
            version = contents[key]
            buckets[_bucket_for(key, bucket_count)].append(
                f"{key}@{version.timestamp}:{version.writer}"
            )
        bucket_hashes = tuple(_hash_text("|".join(bucket)) for bucket in buckets)

        levels: list[tuple[str, ...]] = [bucket_hashes]
        current = bucket_hashes
        while len(current) > 1:
            paired = tuple(
                _hash_text(current[i] + current[i + 1]) for i in range(0, len(current), 2)
            )
            levels.append(paired)
            current = paired
        return cls(bucket_count=bucket_count, bucket_hashes=bucket_hashes, levels=tuple(levels))

    @property
    def root_hash(self) -> str:
        """The root digest summarising the entire key space."""
        return self.levels[-1][0]

    def differing_buckets(self, other: "MerkleTree") -> list[int]:
        """Return the leaf bucket indices whose hashes differ between two trees."""
        if self.bucket_count != other.bucket_count:
            raise ConfigurationError(
                "cannot diff Merkle trees with different bucket counts "
                f"({self.bucket_count} vs {other.bucket_count})"
            )
        if self.root_hash == other.root_hash:
            return []
        return [
            index
            for index, (mine, theirs) in enumerate(
                zip(self.bucket_hashes, other.bucket_hashes)
            )
            if mine != theirs
        ]


def diff_buckets(
    contents: Mapping[str, Version], bucket_indices: Iterable[int], bucket_count: int
) -> list[str]:
    """Return the keys from ``contents`` that fall into the given leaf buckets."""
    wanted = set(bucket_indices)
    return [key for key in contents if _bucket_for(key, bucket_count) in wanted]
