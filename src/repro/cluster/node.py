"""Replica storage nodes.

Each :class:`StorageNode` holds the newest version it has seen for every key
(newest in the coordinator-assigned total order), plus optional causal
siblings when concurrent vector clocks are detected.  Nodes are deliberately
passive: the coordinator and anti-entropy machinery drive all messaging, and
nodes only apply writes and answer reads, mirroring the thin replica role in
Dynamo-style systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.merkle import MerkleTree
from repro.cluster.versioning import Causality, Version, VersionedValue
from repro.exceptions import SimulationError

__all__ = ["StorageNode", "ApplyResult"]


@dataclass(frozen=True)
class ApplyResult:
    """Outcome of applying a write at a replica."""

    applied: bool
    superseded_version: Optional[Version]


@dataclass
class StorageNode:
    """A single replica: versioned key-value storage plus liveness state."""

    node_id: str
    alive: bool = True
    _data: dict[str, VersionedValue] = field(default_factory=dict, repr=False)
    _siblings: dict[str, list[VersionedValue]] = field(default_factory=dict, repr=False)
    #: Arrival time (ms) of the newest version per key, used by staleness analysis.
    _arrival_ms: dict[str, float] = field(default_factory=dict, repr=False)
    applied_writes: int = 0
    served_reads: int = 0
    dropped_messages: int = 0

    # ------------------------------------------------------------------
    # Liveness.
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop the node: it drops all messages until recovery."""
        self.alive = False

    def recover(self) -> None:
        """Bring the node back; its pre-crash data is intact (fail-stop, not amnesia)."""
        self.alive = True

    # ------------------------------------------------------------------
    # Write path.
    # ------------------------------------------------------------------
    def apply_write(self, payload: VersionedValue, at_ms: float) -> ApplyResult:
        """Apply a write carried by a :class:`~repro.cluster.messages.WriteRequest`.

        The newest version in the total order wins.  Concurrent vector clocks
        are retained as siblings so conflict-aware readers can observe them.
        Returns whether the payload was applied and the version it replaced.
        """
        if not self.alive:
            self.dropped_messages += 1
            return ApplyResult(applied=False, superseded_version=None)
        current = self._data.get(payload.key)
        if current is not None and not payload.supersedes(current):
            # Stale or duplicate write: keep as a sibling only if causally concurrent.
            if payload.vector_clock.compare(current.vector_clock) is Causality.CONCURRENT:
                self._siblings.setdefault(payload.key, []).append(payload)
            return ApplyResult(applied=False, superseded_version=None)
        self._data[payload.key] = payload
        self._arrival_ms[payload.key] = at_ms
        self._siblings.pop(payload.key, None)
        self.applied_writes += 1
        return ApplyResult(
            applied=True,
            superseded_version=current.version if current is not None else None,
        )

    # ------------------------------------------------------------------
    # Read path.
    # ------------------------------------------------------------------
    def read(self, key: str) -> Optional[VersionedValue]:
        """Return the newest locally stored version of ``key`` (``None`` if absent)."""
        if not self.alive:
            self.dropped_messages += 1
            return None
        self.served_reads += 1
        return self._data.get(key)

    def siblings(self, key: str) -> list[VersionedValue]:
        """Causally concurrent versions retained alongside the newest one."""
        return list(self._siblings.get(key, ()))

    def version_of(self, key: str) -> Optional[Version]:
        """The version currently stored for ``key`` regardless of liveness."""
        stored = self._data.get(key)
        return stored.version if stored is not None else None

    def arrival_time_ms(self, key: str) -> Optional[float]:
        """When the currently stored version of ``key`` arrived at this replica."""
        return self._arrival_ms.get(key)

    # ------------------------------------------------------------------
    # Anti-entropy support.
    # ------------------------------------------------------------------
    def key_count(self) -> int:
        """Number of keys stored locally."""
        return len(self._data)

    def keys(self) -> list[str]:
        """All keys stored locally."""
        return list(self._data)

    def snapshot_versions(self) -> dict[str, Version]:
        """Mapping of key → stored version, used to build Merkle summaries."""
        return {key: value.version for key, value in self._data.items()}

    def merkle_tree(self, bucket_count: int = 64) -> MerkleTree:
        """Merkle summary of this node's contents."""
        return MerkleTree.build(self.snapshot_versions(), bucket_count)

    def stored_value(self, key: str) -> Optional[VersionedValue]:
        """Direct storage access (no liveness check); used by anti-entropy and tests."""
        return self._data.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def validate(self) -> None:
        """Internal consistency check used by property tests."""
        for key, value in self._data.items():
            if value.key != key:
                raise SimulationError(
                    f"node {self.node_id}: stored value for {key!r} claims key {value.key!r}"
                )
