"""The pre-overhaul ("reference") simulation engine, kept as a pinned baseline.

The hot-path overhaul (batched draw buffers, tuple-heap events, pre-bound
call dispatch — see :mod:`repro.cluster.events` and
:mod:`repro.cluster.sampling`) replaced this implementation wholesale.  The
original engine is preserved here, verbatim in behaviour, for two reasons:

* **benchmark honesty** — the ``>= 5x events/sec`` claim in ``benchmarks/``
  is measured against *this* engine (the pre-overhaul simulator path), not
  against a de-tuned configuration of the new one;
* **equivalence anchoring** — ``DynamoCluster(engine="reference")`` runs the
  identical protocol code (coordinator, nodes, tracing) on the old event
  loop and the old per-message ``sample(1, rng)`` draws, so statistical
  equivalence of the batched path can be demonstrated against the true
  legacy seed discipline end to end.

The RNG stream of this engine is bit-for-bit the pre-overhaul stream: one
``sample(1, rng)`` call per delivered message in event order, and one scalar
``rng.random()`` per loss decision.  (The event representation itself never
consumes randomness, so ``DynamoCluster(draw_batch_size=1)`` on the new
engine reproduces the same stream — just faster; this module additionally
reproduces the old *costs*.)

Use ``DynamoCluster(engine="reference", event_labels=True)`` for a faithful
pre-overhaul baseline: the original coordinator always built per-message
event labels, so benchmarks should enable them.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.network import Network
from repro.cluster.simulator import Simulator
from repro.exceptions import ConfigurationError, SimulationError
from repro.latency.base import LatencyDistribution
from repro.latency.composite import PerReplicaLatency

__all__ = ["ReferenceEvent", "ReferenceEventQueue", "ReferenceSimulator", "ReferenceNetwork"]


@dataclass(order=True)
class ReferenceEvent:
    """The pre-overhaul ordered-dataclass event (heap sifts run Python ``__lt__``)."""

    time_ms: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the simulator skips it."""
        self.cancelled = True


class ReferenceEventQueue:
    """The pre-overhaul event heap: dataclass events, O(n) live count."""

    def __init__(self) -> None:
        self._heap: list[ReferenceEvent] = []
        self._counter = itertools.count()
        self.last_drain_processed = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(
        self, time_ms: float, action: Callable[[], None], label: str = ""
    ) -> ReferenceEvent:
        """Schedule ``action`` at absolute simulated time ``time_ms``."""
        if time_ms < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time_ms}")
        event = ReferenceEvent(
            time_ms=float(time_ms),
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def push_action(self, time_ms: float, action: Callable[[], None]) -> ReferenceEvent:
        """Fast-path compatibility shim: the reference engine has no fast path."""
        return self.push(time_ms, action)

    def push_call(self, time_ms: float, *call: object) -> ReferenceEvent:
        """Fast-path compatibility shim: schedules a closure over ``call``."""
        return self.push(time_ms, lambda: call[0](*call[1:]))

    def pop(self) -> ReferenceEvent | None:
        """Remove and return the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ms

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def drain(self, clock, horizon: float, processed: int, max_events: int) -> int:
        """Pre-overhaul drain: peek, pop, advance, call — one event at a time."""
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > horizon:
                    return processed
                event = self.pop()
                clock.advance_to(event.time_ms)
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; possible event storm"
                    )
                event.action()
        finally:
            self.last_drain_processed = processed


class ReferenceSimulator(Simulator):
    """The pre-overhaul event loop on the pre-overhaul queue.

    Identical scheduling semantics to :class:`~repro.cluster.simulator.Simulator`
    (same API, same determinism); only the event representation and the loop
    mechanics differ.  ``schedule_action``/``schedule_at_action`` fall back to
    the allocating paths, as the original engine had no allocation-free twins.
    """

    def __init__(
        self,
        rng: np.random.Generator | int | None = None,
        max_events: int = 50_000_000,
    ) -> None:
        super().__init__(rng=rng, max_events=max_events)
        self._queue = ReferenceEventQueue()

    def schedule_action(self, delay_ms: float, action: Callable[[], None]) -> None:
        self.schedule(delay_ms, action)

    def schedule_at_action(self, time_ms: float, action: Callable[[], None]) -> None:
        self.schedule_at(time_ms, action)

    def step(self) -> bool:
        """Process the next event — the pre-overhaul pop/advance/call cycle."""
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time_ms)
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events; possible event storm"
            )
        event.action()
        return True


class ReferenceNetwork(Network):
    """The pre-overhaul network: one numpy ``sample(1, rng)`` call per message.

    Inherits the :class:`~repro.cluster.network.Network` configuration and
    loss/partition bookkeeping but restores the original per-call sampling
    (no draw buffers) and the original ``delivers`` (scalar ``rng.random()``
    per loss decision, frozenset membership test per message).
    """

    def _sample(self, distribution: LatencyDistribution, replica: str) -> float:
        if isinstance(distribution, PerReplicaLatency):
            slot = self.replica_slots.get(replica)
            if slot is None:
                raise ConfigurationError(
                    f"replica {replica!r} has no slot assignment for "
                    "per-replica latencies"
                )
            return float(distribution.replicas[slot].sample(1, self.rng)[0])
        return float(distribution.sample(1, self.rng)[0])

    def write_delay(self, replica: str) -> float:
        return self._sample(self.distributions.w, replica)

    def ack_delay(self, replica: str) -> float:
        return self._sample(self.distributions.a, replica)

    def read_delay(self, replica: str) -> float:
        return self._sample(self.distributions.r, replica)

    def response_delay(self, replica: str) -> float:
        return self._sample(self.distributions.s, replica)

    def delivers(self, sender: str, receiver: str) -> bool:
        if frozenset((sender, receiver)) in self._partitioned:
            self.dropped_messages += 1
            return False
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.dropped_messages += 1
            return False
        return True

    @property
    def draw_refills(self) -> int:
        return 0
