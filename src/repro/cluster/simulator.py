"""Deterministic discrete-event simulation loop.

The :class:`Simulator` owns the clock, the event queue, and the random number
generator shared by every component of the cluster.  Components schedule work
with :meth:`Simulator.schedule` (relative delays) or
:meth:`Simulator.schedule_at` (absolute times); :meth:`Simulator.run` drains
the queue in time order.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.clock import SimulationClock
from repro.cluster.events import Event, EventQueue
from repro.exceptions import SimulationError
from repro.latency.base import as_rng

__all__ = ["Simulator"]


class Simulator:
    """Event loop shared by all cluster components.

    Parameters
    ----------
    rng:
        Seed or generator used for every stochastic choice in the simulation
        (message delays, workload sampling, failure injection), making runs
        reproducible end to end.
    max_events:
        Safety valve against runaway event storms; exceeded runs raise
        :class:`SimulationError`.
    """

    def __init__(
        self,
        rng: np.random.Generator | int | None = None,
        max_events: int = 50_000_000,
    ) -> None:
        if max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.clock = SimulationClock()
        self.rng = as_rng(rng)
        self._queue = EventQueue()
        self._max_events = max_events
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now_ms

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    def schedule(self, delay_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay_ms`` milliseconds from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay {delay_ms})")
        return self._queue.push(self.now_ms + delay_ms, action, label)

    def schedule_at(self, time_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire at absolute simulated time ``time_ms``."""
        if time_ms < self.now_ms:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self.now_ms}, at={time_ms})"
            )
        return self._queue.push(time_ms, action, label)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time_ms)
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events; possible event storm"
            )
        event.action()
        return True

    def run(self, until_ms: float | None = None) -> None:
        """Drain the event queue, optionally stopping once the clock passes ``until_ms``.

        With ``until_ms`` given, events scheduled after the horizon stay in the
        queue and the clock is advanced exactly to the horizon.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant; run() called recursively")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until_ms is not None and next_time > until_ms:
                    break
                self.step()
            if until_ms is not None and until_ms > self.now_ms:
                self.clock.advance_to(until_ms)
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self.clock.reset()
        self._processed = 0
