"""Deterministic discrete-event simulation loop.

The :class:`Simulator` owns the clock, the event queue, and the random number
generator shared by every component of the cluster.  Components schedule work
with :meth:`Simulator.schedule` (relative delays) or
:meth:`Simulator.schedule_at` (absolute times); :meth:`Simulator.run` drains
the queue in time order.

The ``clock`` attribute is shared *by identity* with components that need to
observe simulated time outside the event callbacks — notably the network's
:class:`~repro.faults.runtime.FaultRuntime`, whose time-varying modulation
reads ``clock.now_ms`` on every delay draw.  Events dispatch in
non-decreasing time order, so observers may rely on the clock being
monotonic within a run.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.clock import SimulationClock
from repro.cluster.events import Event, EventQueue
from repro.exceptions import SimulationError
from repro.latency.base import as_rng

__all__ = ["Simulator"]


def _dispatch(entry: tuple) -> None:
    """Invoke one raw heap entry (see :meth:`EventQueue.push_call`)."""
    length = len(entry)
    if length == 5:
        entry[2](entry[3], entry[4])
    elif length == 6:
        entry[2](entry[3], entry[4], entry[5])
    elif length == 4:
        entry[2](entry[3])
    else:
        item = entry[2]
        if item.__class__ is Event:
            item.action()
        else:
            item()


class Simulator:
    """Event loop shared by all cluster components.

    Parameters
    ----------
    rng:
        Seed or generator used for every stochastic choice in the simulation
        (message delays, workload sampling, failure injection), making runs
        reproducible end to end.
    max_events:
        Safety valve against runaway event storms; exceeded runs raise
        :class:`SimulationError`.
    queue:
        The event queue implementation (default: the tuple-heap
        :class:`EventQueue`).  Any queue with the same push/pop/drain
        contract works — :class:`~repro.cluster.events.CalendarQueue` is the
        O(1)-amortised alternative selected by
        ``DynamoCluster(engine="calendar")``.
    """

    def __init__(
        self,
        rng: np.random.Generator | int | None = None,
        max_events: int = 50_000_000,
        queue: EventQueue | None = None,
    ) -> None:
        if max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.clock = SimulationClock()
        self.rng = as_rng(rng)
        self._queue = EventQueue() if queue is None else queue
        self._max_events = max_events
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now_ms

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    def schedule(self, delay_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay_ms`` milliseconds from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay {delay_ms})")
        return self._queue.push(self.clock.now_ms + delay_ms, action, label)

    def schedule_action(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Schedule an *uncancellable* ``action`` ``delay_ms`` ms from now.

        The hot-path twin of :meth:`schedule`: no :class:`Event` object (and
        no label) is allocated, so message-delivery events — which are never
        cancelled — cost only a heap entry.
        """
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay {delay_ms})")
        self._queue.push_action(self.clock.now_ms + delay_ms, action)

    def schedule_at_action(self, time_ms: float, action: Callable[[], None]) -> None:
        """Uncancellable twin of :meth:`schedule_at` (no Event, no label)."""
        if time_ms < self.clock.now_ms:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self.clock.now_ms}, "
                f"at={time_ms})"
            )
        self._queue.push_action(float(time_ms), action)

    @property
    def queue(self) -> EventQueue:
        """The simulator's event queue.

        Exposed so hot-path components (the coordinator's message sends) can
        use the queue's allocation-free :meth:`EventQueue.push_call` directly
        with precomputed absolute times; everything else should go through
        :meth:`schedule`/:meth:`schedule_at`, which validate times.
        """
        return self._queue

    def schedule_at(self, time_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire at absolute simulated time ``time_ms``."""
        if time_ms < self.now_ms:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self.now_ms}, at={time_ms})"
            )
        return self._queue.push(time_ms, action, label)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns ``False`` when the queue is empty."""
        entry = self._queue._pop_raw(float("inf"))
        if entry is None:
            return False
        self.clock.advance_to(entry[0])
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"simulation exceeded {self._max_events} events; possible event storm"
            )
        _dispatch(entry)
        return True

    def run(self, until_ms: float | None = None) -> None:
        """Drain the event queue, optionally stopping once the clock passes ``until_ms``.

        With ``until_ms`` given, events scheduled after the horizon stay in the
        queue and the clock is advanced exactly to the horizon.

        The loop body is an inlined :meth:`step` with hot attributes bound to
        locals: the queue is popped and the clock advanced directly, and the
        processed-event counter lives in a local that is written back when the
        loop exits (event actions only schedule work — they never re-enter
        ``run``/``step``, which the re-entrancy guard enforces).
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant; run() called recursively")
        self._running = True
        clock = self.clock
        queue = self._queue
        horizon = float("inf") if until_ms is None else float(until_ms)
        try:
            queue.drain(clock, horizon, self._processed, self._max_events)
            if until_ms is not None and until_ms > clock.now_ms:
                clock.advance_to(until_ms)
        finally:
            # The queue records its progress even when an event action (or
            # the storm guard) raises mid-drain, keeping processed_events —
            # and the max_events budget on a retried run() — exact.
            self._processed = queue.last_drain_processed
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self.clock.reset()
        self._processed = 0
