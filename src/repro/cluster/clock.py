"""Simulated wall-clock for the discrete-event cluster.

All times are floating-point milliseconds since simulation start, matching the
units used by the latency distributions and the analytical models.
"""

from __future__ import annotations

from repro.exceptions import SimulationError

__all__ = ["SimulationClock"]


class SimulationClock:
    """A monotonically non-decreasing simulated clock.

    ``now_ms`` is a plain attribute rather than a property: cluster
    components read the current time on every message, and at paper-scale
    event counts the property-call overhead is measurable.  Mutation should
    still go through :meth:`advance_to`, which enforces monotonicity.
    """

    __slots__ = ("now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise SimulationError(f"clock cannot start at a negative time, got {start_ms}")
        #: Current simulated time in milliseconds.
        self.now_ms = float(start_ms)

    def advance_to(self, time_ms: float) -> None:
        """Move the clock forward to ``time_ms``.

        Raises :class:`SimulationError` on attempts to move backwards, which
        would indicate a mis-ordered event queue.
        """
        if time_ms < self.now_ms:
            raise SimulationError(
                f"clock cannot move backwards (now={self.now_ms}, requested={time_ms})"
            )
        self.now_ms = float(time_ms)

    def reset(self, start_ms: float = 0.0) -> None:
        """Reset the clock (used when reusing a simulator across experiments)."""
        if start_ms < 0:
            raise SimulationError(f"clock cannot be reset to a negative time, got {start_ms}")
        self.now_ms = float(start_ms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SimulationClock now={self.now_ms:.3f}ms>"
