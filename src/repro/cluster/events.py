"""Event records and the priority queue driving the discrete-event simulator.

Events are ordered by scheduled time; ties are broken by an insertion sequence
number so simulation runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time_ms:
        Simulated time at which the event fires.
    sequence:
        Monotonic tie-breaker assigned by the queue.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used in error messages and traces.
    cancelled:
        Cancelled events remain in the heap but are skipped when popped.
    """

    time_ms: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the simulator skips it."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time_ms``."""
        if time_ms < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time_ms}")
        event = Event(
            time_ms=float(time_ms),
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ms

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
