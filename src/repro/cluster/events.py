"""Event records and the priority queue driving the discrete-event simulator.

Events are ordered by scheduled time; ties are broken by an insertion sequence
number so simulation runs are fully deterministic for a fixed seed.

This module is the innermost loop of the cluster substrate: a §5.2
paper-scale validation run pushes and pops millions of events, so the
representation is deliberately lean.  The heap holds ``(time_ms, sequence,
event)`` tuples — tuple comparison happens entirely in C, so no Python
``__lt__`` runs during sifts — and :class:`Event` is a ``__slots__`` class
carrying only the fields the simulator needs.  Cancellation is O(1): the
event flips a flag and tells its queue, which maintains exact live/cancelled
counters (making ``len(queue)`` O(1)) and compacts the heap when cancelled
entries dominate, keeping memory bounded on timeout-heavy workloads where
every operation schedules a timeout it almost always cancels.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable

from repro.exceptions import SimulationError

__all__ = ["Event", "EventQueue", "CalendarQueue"]

#: Compact the heap once at least this many cancelled events are buried in it
#: (and they outnumber the live ones).  Chosen large enough that small runs
#: never compact and big runs amortise the rebuild to O(1) per cancellation.
COMPACTION_MIN_CANCELLED = 1024


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time_ms:
        Simulated time at which the event fires.
    sequence:
        Monotonic tie-breaker assigned by the queue.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used in error messages and traces.  Hot
        paths leave it empty (see ``event_labels`` on the cluster) so untraced
        runs allocate no per-event strings.
    cancelled:
        Cancelled events remain in the heap but are skipped when popped.
    """

    __slots__ = ("time_ms", "sequence", "action", "label", "cancelled", "_queue")

    def __init__(
        self,
        time_ms: float,
        sequence: int,
        action: Callable[[], None],
        label: str = "",
        queue: "EventQueue | None" = None,
    ) -> None:
        self.time_ms = time_ms
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark this event so the simulator skips it (O(1), exact accounting)."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Kept for API compatibility with the earlier ordered-dataclass Event;
        # the queue itself compares (time_ms, sequence) tuples, not events.
        return (self.time_ms, self.sequence) < (other.time_ms, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        tag = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time_ms:.3f}ms seq={self.sequence}{tag} {state}>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The live-event count is maintained incrementally on push/pop/cancel, so
    ``len(queue)`` is O(1) instead of a scan.  Cancelled events stay in the
    heap until popped or until a compaction pass rebuilds the heap without
    them (triggered when they both exceed :data:`COMPACTION_MIN_CANCELLED`
    and outnumber live events — a deterministic rule, so runs stay
    reproducible).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._live = 0
        self._cancelled_pending = 0
        #: Processed-event count as of the end of the last :meth:`drain` call,
        #: maintained even when an event action raises — the simulator reads
        #: it in a ``finally`` so ``processed_events`` (and with it the
        #: event-storm budget) stays exact across failed runs.
        self.last_drain_processed = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events — O(1)."""
        return self._live

    def push(self, time_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time_ms``.

        Returns the :class:`Event`, which supports :meth:`Event.cancel`.  Hot
        paths that never cancel should prefer :meth:`push_action`, which
        skips the Event allocation entirely.
        """
        if time_ms < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time_ms}")
        time_ms = float(time_ms)
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time_ms, sequence, action, label, self)
        heapq.heappush(self._heap, (time_ms, sequence, event))
        self._live += 1
        return event

    def push_action(self, time_ms: float, action: Callable[[], None]) -> None:
        """Schedule an *uncancellable* ``action`` — no :class:`Event` is allocated.

        The heap entry stores the bare callable; events that never need
        cancellation skip the per-event object entirely.
        """
        if time_ms < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time_ms}")
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._heap, (float(time_ms), sequence, action))
        self._live += 1

    def push_call(self, time_ms: float, *call: object) -> None:
        """Schedule an *uncancellable* pre-bound call ``method(*args)``.

        ``call`` is ``(method, arg1, ..., argN)`` with N <= 3.  The heap entry
        is the flat tuple ``(time_ms, sequence, method, arg1, ...)`` — no
        closure is created at schedule time and no Python frame is spent
        unwrapping one at dispatch time, which is what makes this the
        message-delivery fast path (millions of sends per paper-scale run).
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._heap, (time_ms, sequence) + call)
        self._live += 1

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None`` if empty.

        Entries scheduled via :meth:`push_action`/:meth:`push_call` are
        wrapped in a detached :class:`Event` so the return type stays uniform
        (the simulator's run loop uses the raw-entry API below and never pays
        for this).
        """
        entry = self._pop_raw(float("inf"))
        if entry is None:
            return None
        item = entry[2]
        if item.__class__ is Event:
            return item
        if len(entry) == 3:
            return Event(entry[0], -1, item)
        return Event(entry[0], -1, lambda e=entry: e[2](*e[3:]))

    def _pop_raw(self, until_ms: float) -> "tuple | None":
        """Fused peek+pop of the earliest live heap entry with ``time <= until_ms``.

        Returns the raw heap tuple (see :meth:`push_call` for the layout) so
        the simulator's run loop can dispatch without intermediate
        allocations; cancelled events are skipped and accounted.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            item = entry[2]
            if item.__class__ is Event:
                if item.cancelled:
                    heapq.heappop(heap)
                    self._cancelled_pending -= 1
                    continue
                if entry[0] > until_ms:
                    return None
                heapq.heappop(heap)
                # Detach so a late cancel() (e.g. of an already-fired
                # timeout) cannot corrupt the live count.
                item._queue = None
                self._live -= 1
                return entry
            if entry[0] > until_ms:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return entry
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next non-cancelled event without removing it."""
        heap = self._heap
        while heap and heap[0][2].__class__ is Event and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        # Detach surviving events so cancelling one later cannot decrement
        # the counters of a queue it no longer belongs to.
        for _, _, item in self._heap:
            if item.__class__ is Event:
                item._queue = None
        self._heap.clear()
        self._live = 0
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Cancellation accounting.
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` exactly once per pending event."""
        self._live -= 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= COMPACTION_MIN_CANCELLED
            and self._cancelled_pending > self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (preserves ordering).

        Mutates the heap list *in place* (slice assignment) because
        :meth:`drain` holds a local reference to it while events — whose
        actions may cancel other events and trigger compaction — are running.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # The drain loop.
    # ------------------------------------------------------------------
    def drain(
        self,
        clock,
        horizon: float,
        processed: int,
        max_events: int,
    ) -> int:
        """Pop and dispatch every live entry with ``time <= horizon``.

        This is the simulator's inner loop, hosted here so the heap, the
        heappop builtin, and the clock are locals — at millions of events the
        saved attribute loads and call frames are a measurable share of the
        run.  Returns the updated processed-event count; raises
        :class:`SimulationError` past ``max_events``.  ``clock`` is a
        :class:`~repro.cluster.clock.SimulationClock`; its ``now_ms`` is
        assigned directly (heap order guarantees monotonicity, which is also
        asserted).
        """
        heap = self._heap
        pop = heapq.heappop
        now = clock.now_ms
        try:
            while heap:
                entry = heap[0]
                item = entry[2]
                if item.__class__ is Event:
                    if item.cancelled:
                        pop(heap)
                        self._cancelled_pending -= 1
                        continue
                    if entry[0] > horizon:
                        break
                    pop(heap)
                    item._queue = None
                else:
                    if entry[0] > horizon:
                        break
                    pop(heap)
                self._live -= 1
                time_ms = entry[0]
                if time_ms != now:
                    if time_ms < now:
                        raise SimulationError(
                            f"clock cannot move backwards (now={now}, "
                            f"requested={time_ms})"
                        )
                    now = time_ms
                    clock.now_ms = time_ms
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "possible event storm"
                    )
                length = len(entry)
                if length == 5:
                    entry[2](entry[3], entry[4])
                elif length == 6:
                    entry[2](entry[3], entry[4], entry[5])
                elif length == 4:
                    entry[2](entry[3])
                elif item.__class__ is Event:
                    item.action()
                else:
                    item()
        finally:
            self.last_drain_processed = processed
        return processed


#: Calendar-queue sizing bounds: never fewer than 8 buckets (tiny queues run
#: fine in one bucket anyway) and never more than 2^20 (one million buckets is
#: already far past any realistic pending-event count here).
CALENDAR_MIN_BUCKETS = 8
CALENDAR_MAX_BUCKETS = 1 << 20


class CalendarQueue:
    """A calendar (bucket) queue with the exact ordering contract of :class:`EventQueue`.

    Pending entries live in ``nbuckets`` sorted buckets; an entry at time ``t``
    is filed under bucket ``int(t / width) % nbuckets``, i.e. the calendar has
    "days" of ``width`` ms and wraps every ``nbuckets * width`` ms (one
    "year").  Push and pop are amortised O(1): a push is an insort into a
    bucket holding O(1) entries on average, and a pop scans at most one year
    of bucket heads starting from the bucket of the last popped time.

    The scan is exact, not heuristic: within the current year, each bucket is
    only eligible for its own day window — two entries in the same bucket
    whose times differ land a full year apart, so the first in-window head
    found walking forward is the global minimum.  If a whole year is empty the
    queue falls back to a direct min over bucket heads and jumps the cursor
    there (this is what keeps sparse queues O(nbuckets) per pop instead of
    unbounded).

    Ordering is pinned to the heap engine's tie-break semantics: entries are
    the same ``(time_ms, sequence, ...)`` tuples, equal times always map to
    the same bucket, and insort keeps each bucket sorted by that tuple — so
    the pop order is bit-for-bit the heap's pop order, and a cluster run on
    this queue reproduces the heap engine's traces exactly.

    The bucket count doubles when entries exceed two per bucket and halves
    when they fall under a quarter per bucket; on every rebuild the bucket
    width is refit to twice the median gap between distinct pending times.
    Both rules are deterministic functions of the pending set, so runs stay
    reproducible.
    """

    def __init__(self, width_ms: float = 1.0) -> None:
        if width_ms <= 0:
            raise SimulationError(f"calendar bucket width must be positive, got {width_ms}")
        self._width = float(width_ms)
        self._nbuckets = CALENDAR_MIN_BUCKETS
        self._buckets: list[list[tuple]] = [[] for _ in range(self._nbuckets)]
        self._sequence = 0
        self._count = 0  # entries filed in buckets, including cancelled ones
        self._live = 0
        self._cancelled_pending = 0
        self._cursor = 0  # bucket serial (absolute day number) of the last pop
        #: See :attr:`EventQueue.last_drain_processed`.
        self.last_drain_processed = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events — O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # Filing.
    # ------------------------------------------------------------------
    def _insert(self, entry: tuple) -> None:
        serial = int(entry[0] / self._width)
        insort(self._buckets[serial % self._nbuckets], entry)
        if serial < self._cursor:
            # A push earlier than the last pop (the heap would let the drain
            # loop discover it and raise); keep min-order exact regardless.
            self._cursor = serial
        self._count += 1
        self._live += 1
        if self._count > (self._nbuckets << 1) and self._nbuckets < CALENDAR_MAX_BUCKETS:
            self._rebuild(self._nbuckets << 1)

    def push(self, time_ms: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at ``time_ms``; returns a cancellable :class:`Event`."""
        if time_ms < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time_ms}")
        time_ms = float(time_ms)
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time_ms, sequence, action, label, self)
        self._insert((time_ms, sequence, event))
        return event

    def push_action(self, time_ms: float, action: Callable[[], None]) -> None:
        """Schedule an *uncancellable* ``action`` — no :class:`Event` is allocated."""
        if time_ms < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time_ms}")
        sequence = self._sequence
        self._sequence = sequence + 1
        self._insert((float(time_ms), sequence, action))

    def push_call(self, time_ms: float, *call: object) -> None:
        """Schedule an *uncancellable* pre-bound call ``method(*args)`` (N <= 3 args)."""
        sequence = self._sequence
        self._sequence = sequence + 1
        self._insert((time_ms, sequence) + call)

    # ------------------------------------------------------------------
    # Locating the minimum.
    # ------------------------------------------------------------------
    def _purge_head(self, bucket: list[tuple]) -> None:
        while bucket:
            item = bucket[0][2]
            if item.__class__ is Event and item.cancelled:
                del bucket[0]
                self._count -= 1
                self._cancelled_pending -= 1
            else:
                break

    def _locate(self) -> "list[tuple] | None":
        """The bucket whose head is the earliest live entry, or ``None`` if empty.

        Advances :attr:`_cursor` to that entry's day, so successive pops keep
        walking forward.
        """
        if self._count:
            width = self._width
            nbuckets = self._nbuckets
            buckets = self._buckets
            serial = self._cursor
            top = (serial + 1) * width
            for _ in range(nbuckets):
                bucket = buckets[serial % nbuckets]
                self._purge_head(bucket)
                if bucket and bucket[0][0] < top:
                    self._cursor = serial
                    return bucket
                serial += 1
                top = (serial + 1) * width
        if not self._count:
            return None
        # The whole current year is empty: jump straight to the earliest head.
        best = None
        best_time = 0.0
        for bucket in self._buckets:
            self._purge_head(bucket)
            if bucket and (best is None or bucket[0][0] < best_time):
                best = bucket
                best_time = bucket[0][0]
        if best is None:
            return None
        self._cursor = int(best_time / self._width)
        return best

    def peek_time(self) -> float | None:
        """Firing time of the next non-cancelled event, without removing it."""
        bucket = self._locate()
        return bucket[0][0] if bucket is not None else None

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event (see :meth:`EventQueue.pop`)."""
        entry = self._pop_raw(float("inf"))
        if entry is None:
            return None
        item = entry[2]
        if item.__class__ is Event:
            return item
        if len(entry) == 3:
            return Event(entry[0], -1, item)
        return Event(entry[0], -1, lambda e=entry: e[2](*e[3:]))

    def _pop_raw(self, until_ms: float) -> "tuple | None":
        """Fused peek+pop of the earliest live entry with ``time <= until_ms``."""
        bucket = self._locate()
        if bucket is None:
            return None
        entry = bucket[0]
        if entry[0] > until_ms:
            return None
        del bucket[0]
        self._count -= 1
        self._live -= 1
        item = entry[2]
        if item.__class__ is Event:
            item._queue = None
        if (
            self._nbuckets > CALENDAR_MIN_BUCKETS
            and self._count < (self._nbuckets >> 2)
        ):
            self._rebuild(self._nbuckets >> 1)
        return entry

    def clear(self) -> None:
        """Drop every pending event."""
        for bucket in self._buckets:
            for entry in bucket:
                if entry[2].__class__ is Event:
                    entry[2]._queue = None
            bucket.clear()
        self._count = 0
        self._live = 0
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Cancellation accounting + resize.
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` exactly once per pending event."""
        self._live -= 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= COMPACTION_MIN_CANCELLED
            and self._cancelled_pending > self._live
        ):
            self._rebuild(self._nbuckets)

    def _rebuild(self, nbuckets: int) -> None:
        """Refile every live entry into ``nbuckets`` buckets with a refit width.

        Cancelled events are dropped (this doubles as the compaction pass).
        The new width is twice the median gap between distinct pending times —
        a deterministic statistic of the pending set — so bucket occupancy
        tracks the workload's event spacing as it drifts.
        """
        entries: list[tuple] = []
        for bucket in self._buckets:
            for entry in bucket:
                item = entry[2]
                if item.__class__ is Event and item.cancelled:
                    self._cancelled_pending -= 1
                else:
                    entries.append(entry)
        entries.sort()
        self._count = len(entries)
        times = sorted({entry[0] for entry in entries})
        if len(times) >= 2:
            gaps = sorted(b - a for a, b in zip(times, times[1:]))
            self._width = 2.0 * gaps[len(gaps) // 2]
        width = self._width
        self._nbuckets = nbuckets
        buckets = [[] for _ in range(nbuckets)]
        self._buckets = buckets
        for entry in entries:
            buckets[int(entry[0] / width) % nbuckets].append(entry)
        if entries:
            self._cursor = int(entries[0][0] / width)

    # ------------------------------------------------------------------
    # The drain loop.
    # ------------------------------------------------------------------
    def drain(
        self,
        clock,
        horizon: float,
        processed: int,
        max_events: int,
    ) -> int:
        """Pop and dispatch every live entry with ``time <= horizon``.

        Identical dispatch, monotonicity, and event-storm semantics to
        :meth:`EventQueue.drain`; the only difference is where the next entry
        comes from.
        """
        now = clock.now_ms
        try:
            while True:
                entry = self._pop_raw(horizon)
                if entry is None:
                    break
                time_ms = entry[0]
                if time_ms != now:
                    if time_ms < now:
                        raise SimulationError(
                            f"clock cannot move backwards (now={now}, "
                            f"requested={time_ms})"
                        )
                    now = time_ms
                    clock.now_ms = time_ms
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "possible event storm"
                    )
                length = len(entry)
                if length == 5:
                    entry[2](entry[3], entry[4])
                elif length == 6:
                    entry[2](entry[3], entry[4], entry[5])
                elif length == 4:
                    entry[2](entry[3])
                else:
                    item = entry[2]
                    if item.__class__ is Event:
                        item.action()
                    else:
                        item()
        finally:
            self.last_drain_processed = processed
        return processed
