"""The Dynamo-style cluster facade.

:class:`DynamoCluster` wires together the simulator, membership, network,
coordinators, tracing, failure injection, and optional anti-entropy into one
object with a small API:

* synchronous ``write``/``read`` that advance simulated time until the
  operation finishes (convenient for examples and tests);
* ``schedule_write``/``schedule_read`` that enqueue operations at future
  simulated times (used by workload drivers and the validation experiments);
* ``run`` to drain the event queue.

This is the substitute for the instrumented Cassandra deployment used in the
paper's §5.2 validation: the same WARS latency distributions drive both this
simulator and the analytical Monte Carlo model, so measured and predicted
staleness can be compared directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.antientropy import MerkleAntiEntropy
from repro.cluster.coordinator import Coordinator, ReadHandle, WriteHandle
from repro.cluster.events import CalendarQueue
from repro.cluster.failures import FailureInjector
from repro.cluster.membership import Membership
from repro.cluster.network import Network
from repro.cluster.node import StorageNode
from repro.cluster.sampling import DEFAULT_DRAW_BATCH_SIZE
from repro.cluster.simulator import Simulator
from repro.cluster.staleness_detector import StalenessDetector
from repro.cluster.tracelog import ColumnarTraceLog
from repro.cluster.tracing import TraceLog
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError, SimulationError
from repro.faults.plan import FaultPlan
from repro.latency.production import WARSDistributions

__all__ = ["DynamoCluster"]


class DynamoCluster:
    """An in-process, discrete-event Dynamo-style replicated key-value store.

    Parameters
    ----------
    config:
        The (N, R, W) replication configuration.
    distributions:
        One-way message latency distributions (the WARS model inputs).
    node_count:
        Number of physical nodes; defaults to ``config.n`` (the paper's
        three-server validation cluster shape).  Must be at least ``config.n``.
    coordinator_count:
        Number of coordinator endpoints; operations round-robin across them.
    read_repair / hinted_handoff:
        Optional anti-entropy features (both off by default, matching the
        paper's conservative model).
    sloppy_quorum:
        When a home replica is down, redirect its write to the next healthy
        node on the ring and count that acknowledgement toward ``W`` (Dynamo's
        hinted-handoff write availability).  Off by default.
    read_fanout_all:
        ``True`` sends reads to all N replicas (Dynamo/Cassandra); ``False``
        sends to only R (Voldemort, §2.3).
    loss_probability:
        Independent per-message drop probability.
    engine:
        ``"batched"`` (default) uses the overhauled hot path (tuple-heap
        events, batched draw buffers); ``"calendar"`` is the same hot path on
        the O(1)-amortised :class:`~repro.cluster.events.CalendarQueue`
        (bit-for-bit identical traces — the queues share one ordering
        contract); ``"reference"`` uses the pinned pre-overhaul engine
        (:mod:`repro.cluster.reference`) — same protocol, same determinism
        guarantees, original per-message costs — which benchmarks use as
        their baseline.
    draw_batch_size:
        Message latencies drawn per network-buffer refill (see
        :mod:`repro.cluster.sampling`); ``1`` reproduces the legacy
        one-numpy-call-per-message seed stream.  Ignored by the reference
        engine, which always draws per message.
    event_labels:
        Attach human-readable labels to every scheduled event.  Off by
        default: labels are debugging sugar and cost an f-string per message
        on the hot path.
    trace_backend:
        ``"columnar"`` (default) records traces into the struct-of-arrays
        :class:`~repro.cluster.tracelog.ColumnarTraceLog`; ``"object"`` keeps
        the per-operation dataclass :class:`~repro.cluster.tracing.TraceLog`.
        Both backends produce identical analysis results — the object log is
        retained as the equivalence oracle.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injecting gray
        failures and correlated latency bursts by modulating network delay
        draws (see :mod:`repro.faults`).  Draw accounting is unchanged, so
        sharded runs stay bit-for-bit deterministic.  Not supported by the
        pinned reference engine.
    rng:
        Seed or generator controlling every random choice in the simulation.
    """

    def __init__(
        self,
        config: ReplicaConfig,
        distributions: WARSDistributions,
        node_count: int | None = None,
        coordinator_count: int = 1,
        read_repair: bool = False,
        hinted_handoff: bool = False,
        sloppy_quorum: bool = False,
        read_fanout_all: bool = True,
        loss_probability: float = 0.0,
        timeout_ms: float = 60_000.0,
        virtual_nodes: int = 64,
        engine: str = "batched",
        draw_batch_size: int = DEFAULT_DRAW_BATCH_SIZE,
        event_labels: bool = False,
        trace_backend: str = "columnar",
        fault_plan: FaultPlan | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if node_count is None:
            node_count = config.n
        if node_count < config.n:
            raise ConfigurationError(
                f"node count {node_count} is smaller than the replication factor {config.n}"
            )
        if coordinator_count < 1:
            raise ConfigurationError(
                f"coordinator count must be >= 1, got {coordinator_count}"
            )

        if engine not in ("batched", "calendar", "reference"):
            raise ConfigurationError(
                f"unknown simulation engine {engine!r}; "
                "choose 'batched', 'calendar', or 'reference'"
            )
        if trace_backend not in ("columnar", "object"):
            raise ConfigurationError(
                f"unknown trace backend {trace_backend!r}; choose 'columnar' or 'object'"
            )
        if fault_plan is not None and engine == "reference":
            raise ConfigurationError(
                "the pinned reference engine does not support fault plans; "
                "use engine='batched' or engine='calendar'"
            )
        self.config = config
        self.distributions = distributions
        self.engine = engine
        self.trace_backend = trace_backend
        if engine == "reference":
            from repro.cluster.reference import ReferenceNetwork, ReferenceSimulator

            self.simulator = ReferenceSimulator(rng=rng)
            network_cls = ReferenceNetwork
        elif engine == "calendar":
            self.simulator = Simulator(rng=rng, queue=CalendarQueue())
            network_cls = Network
        else:
            self.simulator = Simulator(rng=rng)
            network_cls = Network
        node_ids = [f"node-{index}" for index in range(node_count)]
        self.membership = Membership(node_ids, virtual_nodes=virtual_nodes)
        replica_slots = {node_id: index for index, node_id in enumerate(node_ids)}
        network_kwargs: dict = dict(
            distributions=distributions,
            rng=self.simulator.rng,
            replica_slots=replica_slots,
            loss_probability=loss_probability,
            draw_batch_size=draw_batch_size,
        )
        if fault_plan is not None:
            # The runtime reads simulated time through the shared clock
            # object; the reference engine (no clock of this shape) is
            # rejected above.
            network_kwargs.update(fault_plan=fault_plan, clock=self.simulator.clock)
        self.network = network_cls(**network_kwargs)
        self._event_labels = event_labels
        self.trace_log = ColumnarTraceLog() if trace_backend == "columnar" else TraceLog()
        self.coordinators = [
            Coordinator(
                coordinator_id=f"coordinator-{index}",
                simulator=self.simulator,
                membership=self.membership,
                network=self.network,
                config=config,
                trace_log=self.trace_log,
                read_repair=read_repair,
                hinted_handoff=hinted_handoff,
                sloppy_quorum=sloppy_quorum,
                timeout_ms=timeout_ms,
                read_fanout_all=read_fanout_all,
                event_labels=event_labels,
            )
            for index in range(coordinator_count)
        ]
        self._single_coordinator = (
            self.coordinators[0] if coordinator_count == 1 else None
        )
        self.failure_injector = FailureInjector(self.simulator, self.membership)
        self.staleness_detector = StalenessDetector(self.trace_log)
        self._anti_entropy: Optional[MerkleAntiEntropy] = None
        self._next_coordinator = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Sequence[StorageNode]:
        """The cluster's storage nodes."""
        return list(self.membership.nodes.values())

    @property
    def now_ms(self) -> float:
        """Current simulated time."""
        return self.simulator.now_ms

    def node(self, node_id: str) -> StorageNode:
        """Look up one storage node."""
        return self.membership.node(node_id)

    def replicas_for(self, key: str) -> list[StorageNode]:
        """The preference list (N replicas) for ``key``."""
        return self.membership.preference_list(key, self.config.n)

    # ------------------------------------------------------------------
    # Coordinator selection.
    # ------------------------------------------------------------------
    def _pick_coordinator(self, coordinator: Coordinator | None = None) -> Coordinator:
        if coordinator is not None:
            return coordinator
        single = self._single_coordinator
        if single is not None:
            return single
        chosen = self.coordinators[self._next_coordinator % len(self.coordinators)]
        self._next_coordinator += 1
        return chosen

    # ------------------------------------------------------------------
    # Synchronous operations (advance simulated time until completion).
    # ------------------------------------------------------------------
    def write(
        self, key: str, value: object, coordinator: Coordinator | None = None
    ) -> WriteHandle:
        """Perform a write and advance the simulation until it commits or times out."""
        handle = self._pick_coordinator(coordinator).write(key, value)
        self._run_until_finished(handle)
        return handle

    def read(self, key: str, coordinator: Coordinator | None = None) -> ReadHandle:
        """Perform a read and advance the simulation until it completes or times out."""
        handle = self._pick_coordinator(coordinator).read(key)
        self._run_until_finished(handle)
        return handle

    def _run_until_finished(self, handle: WriteHandle | ReadHandle) -> None:
        steps = 0
        while not handle.finished:
            if not self.simulator.step():
                raise SimulationError(
                    "event queue drained before the operation finished; "
                    "this indicates a scheduling bug"
                )
            steps += 1
            if steps > 10_000_000:  # pragma: no cover - defensive guard
                raise SimulationError("operation did not finish within 10M events")

    # ------------------------------------------------------------------
    # Scheduled (asynchronous) operations for workload drivers.
    # ------------------------------------------------------------------
    def schedule_write(
        self,
        key: str,
        value: object,
        at_ms: float,
        coordinator: Coordinator | None = None,
    ) -> None:
        """Enqueue a write to start at simulated time ``at_ms``; its trace is recorded."""
        chosen = self._pick_coordinator(coordinator)
        if self._event_labels:
            self.simulator.schedule_at(
                at_ms, lambda: chosen.write(key, value), label=f"scheduled-write:{key}"
            )
        else:
            if at_ms < self.simulator.clock.now_ms:
                raise SimulationError(
                    f"cannot schedule an event in the past "
                    f"(now={self.simulator.clock.now_ms}, at={at_ms})"
                )
            self.simulator.queue.push_call(float(at_ms), chosen.write, key, value)

    def schedule_read(
        self, key: str, at_ms: float, coordinator: Coordinator | None = None
    ) -> None:
        """Enqueue a read to start at simulated time ``at_ms``; its trace is recorded."""
        chosen = self._pick_coordinator(coordinator)
        if self._event_labels:
            self.simulator.schedule_at(
                at_ms, lambda: chosen.read(key), label=f"scheduled-read:{key}"
            )
        else:
            if at_ms < self.simulator.clock.now_ms:
                raise SimulationError(
                    f"cannot schedule an event in the past "
                    f"(now={self.simulator.clock.now_ms}, at={at_ms})"
                )
            self.simulator.queue.push_call(float(at_ms), chosen.read, key)

    def run(self, until_ms: float | None = None) -> None:
        """Drain the event queue (optionally up to a simulated-time horizon)."""
        self.simulator.run(until_ms)

    # ------------------------------------------------------------------
    # Optional subsystems.
    # ------------------------------------------------------------------
    def enable_merkle_anti_entropy(
        self, interval_ms: float = 1_000.0, pairs_per_round: int = 1
    ) -> MerkleAntiEntropy:
        """Turn on periodic Merkle-tree synchronisation and return its controller."""
        if self._anti_entropy is None:
            self._anti_entropy = MerkleAntiEntropy(
                simulator=self.simulator,
                membership=self.membership,
                network=self.network,
                interval_ms=interval_ms,
                pairs_per_round=pairs_per_round,
            )
        self._anti_entropy.start()
        return self._anti_entropy

    @property
    def anti_entropy(self) -> Optional[MerkleAntiEntropy]:
        """The Merkle anti-entropy controller, if enabled."""
        return self._anti_entropy

    def replay_hints(self) -> int:
        """Ask every coordinator to replay hints for replicas that have recovered."""
        replayed = 0
        for coordinator in self.coordinators:
            for node in self.membership.alive_nodes():
                replayed += coordinator.replay_hints(node)
        return replayed
