"""Active anti-entropy: periodic Merkle-tree exchange between replicas.

The paper's conservative model (§4.2) assumes only the quorum-expansion that
WARS already captures — no read repair and no gossip.  Real deployments do run
extra anti-entropy (Dynamo exchanges Merkle trees continuously; Cassandra only
on operator request via ``nodetool repair``).  :class:`MerkleAntiEntropy`
implements the exchange so ablation benchmarks can measure how much it tightens
t-visibility beyond the conservative bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.membership import Membership
from repro.cluster.merkle import diff_buckets
from repro.cluster.network import Network
from repro.cluster.simulator import Simulator
from repro.exceptions import ConfigurationError

__all__ = ["MerkleAntiEntropy", "AntiEntropyStats"]


@dataclass
class AntiEntropyStats:
    """Counters describing anti-entropy activity over a run."""

    rounds: int = 0
    pairs_synced: int = 0
    keys_transferred: int = 0


class MerkleAntiEntropy:
    """Periodic pairwise Merkle synchronisation between random replicas.

    Each round picks ``pairs_per_round`` random ordered pairs of alive nodes,
    compares their Merkle trees, and copies newer versions in both directions
    for the keys in differing buckets.  The transfer itself is modelled with
    the write-leg latency per key, keeping the time dynamics comparable with
    regular writes.
    """

    def __init__(
        self,
        simulator: Simulator,
        membership: Membership,
        network: Network,
        interval_ms: float = 1_000.0,
        pairs_per_round: int = 1,
        bucket_count: int = 64,
    ) -> None:
        if interval_ms <= 0:
            raise ConfigurationError(f"anti-entropy interval must be positive, got {interval_ms}")
        if pairs_per_round < 1:
            raise ConfigurationError(
                f"pairs per round must be >= 1, got {pairs_per_round}"
            )
        self._simulator = simulator
        self._membership = membership
        self._network = network
        self._interval_ms = interval_ms
        self._pairs_per_round = pairs_per_round
        self._bucket_count = bucket_count
        self._running = False
        self.stats = AntiEntropyStats()

    def start(self) -> None:
        """Begin periodic synchronisation rounds."""
        if self._running:
            return
        self._running = True
        self._simulator.schedule(self._interval_ms, self._run_round, label="anti-entropy")

    def stop(self) -> None:
        """Stop scheduling further rounds (the current round still completes)."""
        self._running = False

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _run_round(self) -> None:
        if not self._running:
            return
        alive = self._membership.alive_nodes()
        if len(alive) >= 2:
            self.stats.rounds += 1
            rng = self._simulator.rng
            for _ in range(self._pairs_per_round):
                first, second = rng.choice(len(alive), size=2, replace=False)
                self._sync_pair(alive[int(first)], alive[int(second)])
        self._simulator.schedule(self._interval_ms, self._run_round, label="anti-entropy")

    def _sync_pair(self, node_a, node_b) -> None:
        """Compare Merkle trees and ship newer versions in both directions."""
        tree_a = node_a.merkle_tree(self._bucket_count)
        tree_b = node_b.merkle_tree(self._bucket_count)
        differing = tree_a.differing_buckets(tree_b)
        if not differing:
            return
        self.stats.pairs_synced += 1
        keys = set(
            diff_buckets(node_a.snapshot_versions(), differing, self._bucket_count)
        ) | set(diff_buckets(node_b.snapshot_versions(), differing, self._bucket_count))
        for key in sorted(keys):
            value_a = node_a.stored_value(key)
            value_b = node_b.stored_value(key)
            if value_a is not None and (value_b is None or value_a.supersedes(value_b)):
                self._transfer(node_b, value_a)
            elif value_b is not None and (value_a is None or value_b.supersedes(value_a)):
                self._transfer(node_a, value_b)

    def _transfer(self, destination, payload) -> None:
        delay = self._network.write_delay(destination.node_id)
        self._simulator.schedule(
            delay,
            lambda: destination.apply_write(payload, self._simulator.now_ms),
            label=f"merkle-transfer:{destination.node_id}",
        )
        self.stats.keys_transferred += 1
