"""Struct-of-arrays trace storage: the columnar twin of :mod:`repro.cluster.tracing`.

The object ``TraceLog`` spends a dataclass, two dicts, and a set on every
operation; at 10^5+ writes per validation cell that is per-event allocator and
GC churn the analysis layer then has to undo (re-sorting, re-grouping) before
it can answer a single staleness query.  ``ColumnarTraceLog`` stores the same
information as preallocated, growable numpy columns:

* one row per write / read with scalar columns (``started_ms``,
  ``committed_ms``, interned key/coordinator ids, version timestamp + writer
  ids), and
* flat ``(row, node, time)`` triplet columns for the per-replica events
  (write arrivals, write acks, read responses) plus ``(row, node, version)``
  triplets for quorum/late read responses and ``(row, node)`` pairs for drops.

Recording happens through a narrow scalar API (``begin_write`` /
``note_write_*`` / ``begin_read`` / ``note_read_*``) shared with the object
backend, so the coordinator never builds per-operation containers.  The
familiar ``WriteTrace``/``ReadTrace`` attribute surface survives as lazy row
views (:class:`ColumnarWriteTrace` / :class:`ColumnarReadTrace`) materialised
only when somebody asks.

``ColumnarTraceLog.merge`` concatenates logs column-wise in block order —
the same contract the sharded sweep engine relies on everywhere else — so a
sharded run's merged log is bit-for-bit the serial log.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.cluster.tracing import ReadTrace, TraceLog, WriteTrace
from repro.cluster.versioning import Version

__all__ = [
    "ColumnarTraceLog",
    "ColumnarWriteTrace",
    "ColumnarReadTrace",
]

_NO_VERSION = -1  # sentinel for "replica answered with no value" / "read returned None"


class _Column:
    """One append-optimised column: a Python list with a cached ndarray view.

    Scalar appends and in-place updates sit on the recording hot path — every
    simulated message touches one — so storage is a plain list (C-speed
    ``append``/``__setitem__``, no per-scalar numpy boxing).  The analysis
    layer sees numpy through :meth:`view`, materialised once per log state and
    invalidated by any mutation, so a 50k-write analysis pass pays exactly one
    list→array conversion per column.
    """

    __slots__ = ("values", "_dtype", "_view")

    def __init__(self, dtype: str) -> None:
        self.values: list = []
        self._dtype = dtype
        self._view: "np.ndarray | None" = None

    @property
    def size(self) -> int:
        """Number of recorded scalars."""
        return len(self.values)

    def append(self, value) -> None:
        """Append one scalar."""
        self.values.append(value)
        self._view = None

    def set(self, index: int, value) -> None:
        """Overwrite one scalar in place (commit times, timeout flags, ...)."""
        self.values[index] = value
        self._view = None

    def view(self) -> np.ndarray:
        """The column as an ndarray, cached until the next mutation."""
        view = self._view
        if view is None:
            self._view = view = np.asarray(self.values, dtype=self._dtype)
        return view

    def extend(self, values) -> None:
        """Append a whole array or list (used by :meth:`ColumnarTraceLog.merge`)."""
        if isinstance(values, np.ndarray):
            values = values.tolist()
        self.values.extend(values)
        self._view = None

    def clear(self) -> None:
        """Reset to empty."""
        self.values.clear()
        self._view = None


class _EventColumns:
    """Flat (row, node, value) triplet columns for per-replica events."""

    __slots__ = ("row", "node", "value")

    def __init__(self, value_dtype: str = "float64") -> None:
        self.row = _Column("int64")
        self.node = _Column("int64")
        self.value = _Column(value_dtype)

    def append(self, row: int, node: int, value) -> None:
        """Append one (row, node, value) event."""
        self.row.append(row)
        self.node.append(node)
        self.value.append(value)

    def clear(self) -> None:
        """Reset all three columns."""
        self.row.clear()
        self.node.clear()
        self.value.clear()


class _VersionColumns:
    """Flat (row, node, version-ts, version-writer) columns for read responses."""

    __slots__ = ("row", "node", "ts", "writer")

    def __init__(self) -> None:
        self.row = _Column("int64")
        self.node = _Column("int64")
        self.ts = _Column("int64")
        self.writer = _Column("int64")

    def append(self, row: int, node: int, ts: int, writer: int) -> None:
        """Append one (row, node, version) event."""
        self.row.append(row)
        self.node.append(node)
        self.ts.append(ts)
        self.writer.append(writer)

    def clear(self) -> None:
        """Reset all four columns."""
        self.row.clear()
        self.node.clear()
        self.ts.clear()
        self.writer.clear()


class _RowIndex:
    """row → triplet positions lookup built once per (log state, triplet set)."""

    __slots__ = ("order", "sorted_rows")

    def __init__(self, rows: np.ndarray) -> None:
        self.order = np.argsort(rows, kind="stable")
        self.sorted_rows = rows[self.order]

    def positions(self, row: int) -> np.ndarray:
        """Positions of ``row``'s events, in recording order."""
        lo = np.searchsorted(self.sorted_rows, row, side="left")
        hi = np.searchsorted(self.sorted_rows, row, side="right")
        return self.order[lo:hi]


class ColumnarWriteTrace:
    """Lazy row view over a :class:`ColumnarTraceLog` write, WriteTrace-shaped."""

    __slots__ = ("_log", "_row")

    def __init__(self, log: "ColumnarTraceLog", row: int) -> None:
        self._log = log
        self._row = row

    @property
    def operation_id(self) -> int:
        """The operation id assigned by the coordinator."""
        return int(self._log._w_op.values[self._row])

    @property
    def key(self) -> str:
        """The written key."""
        return self._log._strings[self._log._w_key.values[self._row]]

    @property
    def version(self) -> Version:
        """The version this write created."""
        log = self._log
        return Version(
            int(log._w_ver_ts.values[self._row]),
            log._strings[log._w_ver_writer.values[self._row]],
        )

    @property
    def coordinator(self) -> str:
        """Node id of the coordinating node."""
        return self._log._strings[self._log._w_coord.values[self._row]]

    @property
    def started_ms(self) -> float:
        """Simulation time the write was issued."""
        return float(self._log._w_started.values[self._row])

    @property
    def committed_ms(self) -> Optional[float]:
        """Commit time, or ``None`` for uncommitted writes."""
        value = self._log._w_committed.values[self._row]
        return None if math.isnan(value) else float(value)

    @property
    def replica_arrivals_ms(self) -> dict[str, float]:
        """Per-replica arrival time of the write message (the W leg), by node id."""
        return self._log._event_dict(self._log._w_arrivals, "w_arrivals", self._row)

    @property
    def ack_arrivals_ms(self) -> dict[str, float]:
        """Per-replica acknowledgement arrival time at the coordinator (W + A legs)."""
        return self._log._event_dict(self._log._w_acks, "w_acks", self._row)

    @property
    def dropped_replicas(self) -> set[str]:
        """Replicas whose write message was dropped (failure or partition)."""
        log = self._log
        index = log._row_index(log._w_drops, "w_drops")
        strings = log._strings
        node = log._w_drops.node.values
        return {strings[node[p]] for p in index.positions(self._row)}

    @property
    def committed(self) -> bool:
        """True when the coordinator received its write quorum."""
        return not math.isnan(self._log._w_committed.values[self._row])

    @property
    def commit_latency_ms(self) -> Optional[float]:
        """Commit (write operation) latency, or ``None`` for uncommitted writes."""
        committed = self.committed_ms
        if committed is None:
            return None
        return committed - self.started_ms

    def arrival_offsets_from_commit(self) -> dict[str, float]:
        """Per-replica arrival time relative to commit (negative = before commit)."""
        committed = self.committed_ms
        if committed is None:
            return {}
        return {
            replica: arrival - committed
            for replica, arrival in self.replica_arrivals_ms.items()
        }


class ColumnarReadTrace:
    """Lazy row view over a :class:`ColumnarTraceLog` read, ReadTrace-shaped."""

    __slots__ = ("_log", "_row")

    def __init__(self, log: "ColumnarTraceLog", row: int) -> None:
        self._log = log
        self._row = row

    @property
    def operation_id(self) -> int:
        """The operation id assigned by the coordinator."""
        return int(self._log._r_op.values[self._row])

    @property
    def key(self) -> str:
        """The read key."""
        return self._log._strings[self._log._r_key.values[self._row]]

    @property
    def coordinator(self) -> str:
        """Node id of the coordinating node."""
        return self._log._strings[self._log._r_coord.values[self._row]]

    @property
    def started_ms(self) -> float:
        """Simulation time the read was issued."""
        return float(self._log._r_started.values[self._row])

    @property
    def quorum_responses(self) -> dict[str, Optional[Version]]:
        """The first R responses (node id → version, None when replica was empty)."""
        return self._log._version_dict(self._log._r_quorum, "r_quorum", self._row)

    @property
    def late_responses(self) -> dict[str, Optional[Version]]:
        """Responses that arrived after the operation already returned."""
        return self._log._version_dict(self._log._r_late, "r_late", self._row)

    @property
    def response_arrivals_ms(self) -> dict[str, float]:
        """Per-replica response arrival time at the coordinator (R + S legs)."""
        return self._log._event_dict(self._log._r_responses, "r_responses", self._row)

    @property
    def returned_version(self) -> Optional[Version]:
        """Version the coordinator returned to the client (None = key not found)."""
        log = self._log
        ts = log._r_ret_ts.values[self._row]
        if ts == _NO_VERSION:
            return None
        return Version(int(ts), log._strings[log._r_ret_writer.values[self._row]])

    @property
    def completed_ms(self) -> Optional[float]:
        """Completion time, or ``None`` when the read never assembled a quorum."""
        value = self._log._r_completed.values[self._row]
        return None if math.isnan(value) else float(value)

    @property
    def timed_out(self) -> bool:
        """True when the read gave up before assembling R responses."""
        return bool(self._log._r_timeout.values[self._row])

    @property
    def repairs_issued(self) -> int:
        """Number of read-repair pushes this read triggered (0 when disabled)."""
        return int(self._log._r_repairs.values[self._row])

    @property
    def completed(self) -> bool:
        """True when the coordinator assembled a read quorum before timing out."""
        return not math.isnan(self._log._r_completed.values[self._row]) and not self.timed_out

    @property
    def latency_ms(self) -> Optional[float]:
        """Read operation latency, or ``None`` for timed-out reads."""
        completed = self.completed_ms
        if completed is None:
            return None
        return completed - self.started_ms


class ColumnarTraceLog:
    """Struct-of-arrays trace store with the same query surface as ``TraceLog``.

    The recording API is narrow and scalar-only; views and queries reconstruct
    the object shapes lazily.  All query indexes are cached and invalidated by
    a mutation counter, so repeated analysis passes touch numpy only once.
    """

    __slots__ = (
        "_strings",
        "_string_ids",
        "_w_op",
        "_w_key",
        "_w_ver_ts",
        "_w_ver_writer",
        "_w_coord",
        "_w_started",
        "_w_committed",
        "_w_arrivals",
        "_w_acks",
        "_w_drops",
        "_r_op",
        "_r_key",
        "_r_coord",
        "_r_started",
        "_r_completed",
        "_r_timeout",
        "_r_ret_ts",
        "_r_ret_writer",
        "_r_repairs",
        "_r_responses",
        "_r_quorum",
        "_r_late",
        "_mutations",
        "_cache_token",
        "_cache",
    )

    def __init__(self) -> None:
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        # Write rows.
        self._w_op = _Column("int64")
        self._w_key = _Column("int64")
        self._w_ver_ts = _Column("int64")
        self._w_ver_writer = _Column("int64")
        self._w_coord = _Column("int64")
        self._w_started = _Column("float64")
        self._w_committed = _Column("float64")
        # Write per-replica events.
        self._w_arrivals = _EventColumns()
        self._w_acks = _EventColumns()
        self._w_drops = _EventColumns("int64")  # value column unused (always 0)
        # Read rows.
        self._r_op = _Column("int64")
        self._r_key = _Column("int64")
        self._r_coord = _Column("int64")
        self._r_started = _Column("float64")
        self._r_completed = _Column("float64")
        self._r_timeout = _Column("int64")
        self._r_ret_ts = _Column("int64")
        self._r_ret_writer = _Column("int64")
        self._r_repairs = _Column("int64")
        # Read per-replica events.
        self._r_responses = _EventColumns()
        self._r_quorum = _VersionColumns()
        self._r_late = _VersionColumns()
        self._mutations = 0
        self._cache_token = -1
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # String interning.
    # ------------------------------------------------------------------
    def intern(self, value: str) -> int:
        """Intern a string (key / node id / writer), returning its table id."""
        ids = self._string_ids
        found = ids.get(value)
        if found is None:
            found = len(self._strings)
            self._strings.append(value)
            ids[value] = found
        return found

    def string_table(self) -> list[str]:
        """The interned string table (id → string), shared by all columns."""
        return self._strings

    def interned_id(self, value: str) -> Optional[int]:
        """The table id of ``value``, or ``None`` if it was never recorded."""
        return self._string_ids.get(value)

    # ------------------------------------------------------------------
    # Narrow recording API — write lifecycle.
    # ------------------------------------------------------------------
    def begin_write(
        self,
        operation_id: int,
        key: str,
        version: Version,
        coordinator: str,
        started_ms: float,
    ) -> int:
        """Open a write row; returns the row reference used by ``note_write_*``."""
        row = self._w_op.size
        self._w_op.append(operation_id)
        self._w_key.append(self.intern(key))
        self._w_ver_ts.append(version.timestamp)
        self._w_ver_writer.append(self.intern(version.writer))
        self._w_coord.append(self.intern(coordinator))
        self._w_started.append(started_ms)
        self._w_committed.append(math.nan)
        self._mutations += 1
        return row

    def note_write_arrival(self, ref: int, node_id: str, time_ms: float) -> None:
        """Record the write message reaching a replica (the W leg)."""
        self._w_arrivals.append(ref, self.intern(node_id), time_ms)
        self._mutations += 1

    def note_write_ack(self, ref: int, node_id: str, time_ms: float) -> None:
        """Record a replica acknowledgement reaching the coordinator (W + A legs)."""
        self._w_acks.append(ref, self.intern(node_id), time_ms)
        self._mutations += 1

    def note_write_commit(self, ref: int, time_ms: float) -> None:
        """Record the coordinator assembling its write quorum."""
        self._w_committed.set(ref, time_ms)
        self._mutations += 1

    def note_write_drop(self, ref: int, node_id: str) -> None:
        """Record a write message dropped on the way to a replica."""
        self._w_drops.append(ref, self.intern(node_id), 0)
        self._mutations += 1

    def write_view(self, ref: int) -> ColumnarWriteTrace:
        """A lazy ``WriteTrace``-shaped view of a write row."""
        return ColumnarWriteTrace(self, ref)

    # ------------------------------------------------------------------
    # Narrow recording API — read lifecycle.
    # ------------------------------------------------------------------
    def begin_read(
        self, operation_id: int, key: str, coordinator: str, started_ms: float
    ) -> int:
        """Open a read row; returns the row reference used by ``note_read_*``."""
        row = self._r_op.size
        self._r_op.append(operation_id)
        self._r_key.append(self.intern(key))
        self._r_coord.append(self.intern(coordinator))
        self._r_started.append(started_ms)
        self._r_completed.append(math.nan)
        self._r_timeout.append(0)
        self._r_ret_ts.append(_NO_VERSION)
        self._r_ret_writer.append(_NO_VERSION)
        self._r_repairs.append(0)
        self._mutations += 1
        return row

    def note_read_response(self, ref: int, node_id: str, time_ms: float) -> None:
        """Record a replica response reaching the coordinator (R + S legs)."""
        self._r_responses.append(ref, self.intern(node_id), time_ms)
        self._mutations += 1

    def note_read_quorum(self, ref: int, node_id: str, version: Optional[Version]) -> None:
        """Record a response counted among the first R."""
        if version is None:
            self._r_quorum.append(ref, self.intern(node_id), _NO_VERSION, _NO_VERSION)
        else:
            self._r_quorum.append(
                ref, self.intern(node_id), version.timestamp, self.intern(version.writer)
            )
        self._mutations += 1

    def note_read_late(self, ref: int, node_id: str, version: Optional[Version]) -> None:
        """Record a response that arrived after the read already returned."""
        if version is None:
            self._r_late.append(ref, self.intern(node_id), _NO_VERSION, _NO_VERSION)
        else:
            self._r_late.append(
                ref, self.intern(node_id), version.timestamp, self.intern(version.writer)
            )
        self._mutations += 1

    def note_read_complete(
        self, ref: int, version: Optional[Version], time_ms: float
    ) -> None:
        """Record the read returning ``version`` to the client at ``time_ms``."""
        self._r_completed.set(ref, time_ms)
        if version is not None:
            self._r_ret_ts.set(ref, version.timestamp)
            self._r_ret_writer.set(ref, self.intern(version.writer))
        self._mutations += 1

    def note_read_timeout(self, ref: int) -> None:
        """Record the read giving up before assembling R responses."""
        self._r_timeout.set(ref, 1)
        self._mutations += 1

    def note_read_repair(self, ref: int) -> None:
        """Record one read-repair push triggered by this read."""
        self._r_repairs.set(ref, self._r_repairs.values[ref] + 1)
        self._mutations += 1

    def read_view(self, ref: int) -> ColumnarReadTrace:
        """A lazy ``ReadTrace``-shaped view of a read row."""
        return ColumnarReadTrace(self, ref)

    # ------------------------------------------------------------------
    # Object-trace ingestion (conversion from the object backend).
    # ------------------------------------------------------------------
    def record_write(self, trace: WriteTrace) -> None:
        """Ingest a fully-built object ``WriteTrace`` (conversion/back-compat)."""
        ref = self.begin_write(
            trace.operation_id, trace.key, trace.version, trace.coordinator, trace.started_ms
        )
        for node_id, time_ms in trace.replica_arrivals_ms.items():
            self.note_write_arrival(ref, node_id, time_ms)
        for node_id, time_ms in trace.ack_arrivals_ms.items():
            self.note_write_ack(ref, node_id, time_ms)
        for node_id in sorted(trace.dropped_replicas):
            self.note_write_drop(ref, node_id)
        if trace.committed_ms is not None:
            self.note_write_commit(ref, trace.committed_ms)

    def record_read(self, trace: ReadTrace) -> None:
        """Ingest a fully-built object ``ReadTrace`` (conversion/back-compat)."""
        ref = self.begin_read(
            trace.operation_id, trace.key, trace.coordinator, trace.started_ms
        )
        for node_id, time_ms in trace.response_arrivals_ms.items():
            self.note_read_response(ref, node_id, time_ms)
        for node_id, version in trace.quorum_responses.items():
            self.note_read_quorum(ref, node_id, version)
        for node_id, version in trace.late_responses.items():
            self.note_read_late(ref, node_id, version)
        if trace.completed_ms is not None or trace.returned_version is not None:
            completed = trace.completed_ms
            self.note_read_complete(
                ref, trace.returned_version, math.nan if completed is None else completed
            )
        if trace.timed_out:
            self.note_read_timeout(ref)
        for _ in range(trace.repairs_issued):
            self.note_read_repair(ref)

    @classmethod
    def from_object_log(cls, log: TraceLog) -> "ColumnarTraceLog":
        """Convert an object ``TraceLog`` into a columnar one, in record order."""
        columnar = cls()
        for trace in log.writes:
            columnar.record_write(trace)
        for trace in log.reads:
            columnar.record_read(trace)
        return columnar

    def to_object_log(self) -> TraceLog:
        """Materialise an object ``TraceLog`` with equal traces, in record order."""
        log = TraceLog()
        for view in self.writes:
            log.record_write(
                WriteTrace(
                    operation_id=view.operation_id,
                    key=view.key,
                    version=view.version,
                    coordinator=view.coordinator,
                    started_ms=view.started_ms,
                    replica_arrivals_ms=view.replica_arrivals_ms,
                    ack_arrivals_ms=view.ack_arrivals_ms,
                    committed_ms=view.committed_ms,
                    dropped_replicas=view.dropped_replicas,
                )
            )
        for view in self.reads:
            log.record_read(
                ReadTrace(
                    operation_id=view.operation_id,
                    key=view.key,
                    coordinator=view.coordinator,
                    started_ms=view.started_ms,
                    quorum_responses=view.quorum_responses,
                    late_responses=view.late_responses,
                    response_arrivals_ms=view.response_arrivals_ms,
                    returned_version=view.returned_version,
                    completed_ms=view.completed_ms,
                    timed_out=view.timed_out,
                    repairs_issued=view.repairs_issued,
                )
            )
        return log

    # ------------------------------------------------------------------
    # Row-view sequences (back-compat with ``TraceLog.writes`` / ``.reads``).
    # ------------------------------------------------------------------
    @property
    def writes(self) -> list[ColumnarWriteTrace]:
        """Lazy views of every write row, in record order."""
        return [ColumnarWriteTrace(self, row) for row in range(self._w_op.size)]

    @property
    def reads(self) -> list[ColumnarReadTrace]:
        """Lazy views of every read row, in record order."""
        return [ColumnarReadTrace(self, row) for row in range(self._r_op.size)]

    @property
    def write_count(self) -> int:
        """Number of write rows recorded."""
        return self._w_op.size

    @property
    def read_count(self) -> int:
        """Number of read rows recorded."""
        return self._r_op.size

    # ------------------------------------------------------------------
    # Column accessors for the vectorized analysis layer.
    # ------------------------------------------------------------------
    def write_columns(self) -> dict[str, np.ndarray]:
        """Zero-copy views of the scalar write columns, keyed by name."""
        return {
            "operation_id": self._w_op.view(),
            "key": self._w_key.view(),
            "version_ts": self._w_ver_ts.view(),
            "version_writer": self._w_ver_writer.view(),
            "coordinator": self._w_coord.view(),
            "started_ms": self._w_started.view(),
            "committed_ms": self._w_committed.view(),
        }

    def read_columns(self) -> dict[str, np.ndarray]:
        """Zero-copy views of the scalar read columns, keyed by name."""
        return {
            "operation_id": self._r_op.view(),
            "key": self._r_key.view(),
            "coordinator": self._r_coord.view(),
            "started_ms": self._r_started.view(),
            "completed_ms": self._r_completed.view(),
            "timed_out": self._r_timeout.view(),
            "returned_ts": self._r_ret_ts.view(),
            "returned_writer": self._r_ret_writer.view(),
            "repairs": self._r_repairs.view(),
        }

    def writer_sort_ranks(self) -> np.ndarray:
        """Rank of each interned string under lexicographic string order.

        Interning order is arrival order, which is *not* lexicographic (e.g.
        ``"coordinator-10" < "coordinator-2"``), so version comparisons over
        encoded columns must rank writers by sorted string value.  Cached per
        log state.
        """
        cache = self._query_cache()
        ranks = cache.get("writer_ranks")
        if ranks is None:
            order = sorted(range(len(self._strings)), key=self._strings.__getitem__)
            ranks = np.empty(len(order), dtype=np.int64)
            ranks[np.asarray(order, dtype=np.int64)] = np.arange(len(order), dtype=np.int64)
            cache["writer_ranks"] = ranks
        return ranks

    # ------------------------------------------------------------------
    # Cached query indexes.
    # ------------------------------------------------------------------
    def _query_cache(self) -> dict:
        if self._cache_token != self._mutations:
            self._cache = {}
            self._cache_token = self._mutations
        return self._cache

    def _row_index(self, columns, name: str) -> _RowIndex:
        cache = self._query_cache()
        index = cache.get(name)
        if index is None:
            index = _RowIndex(columns.row.view())
            cache[name] = index
        return index

    def _event_dict(self, columns: _EventColumns, name: str, row: int) -> dict[str, float]:
        index = self._row_index(columns, name)
        strings = self._strings
        node = columns.node.values
        value = columns.value.values
        return {strings[node[p]]: float(value[p]) for p in index.positions(row)}

    def _version_dict(
        self, columns: _VersionColumns, name: str, row: int
    ) -> dict[str, Optional[Version]]:
        index = self._row_index(columns, name)
        strings = self._strings
        node = columns.node.values
        ts = columns.ts.values
        writer = columns.writer.values
        result: dict[str, Optional[Version]] = {}
        for p in index.positions(row):
            stamp = ts[p]
            result[strings[node[p]]] = (
                None if stamp == _NO_VERSION else Version(int(stamp), strings[writer[p]])
            )
        return result

    def _committed_order(self, key: str | None) -> np.ndarray:
        """Committed write rows sorted by commit time (stable), cached."""
        cache = self._query_cache()
        cached = cache.get(("committed", key))
        if cached is None:
            committed = self._w_committed.view()
            mask = ~np.isnan(committed)
            if key is not None:
                key_id = self._string_ids.get(key)
                if key_id is None:
                    mask = np.zeros_like(mask)
                else:
                    mask = mask & (self._w_key.view() == key_id)
            rows = np.flatnonzero(mask)
            cached = rows[np.argsort(committed[rows], kind="stable")]
            cache[("committed", key)] = cached
        return cached

    def _completed_order(self, key: str | None) -> np.ndarray:
        """Completed read rows sorted by start time (stable), cached."""
        cache = self._query_cache()
        cached = cache.get(("completed", key))
        if cached is None:
            completed = self._r_completed.view()
            mask = ~np.isnan(completed) & (self._r_timeout.view() == 0)
            if key is not None:
                key_id = self._string_ids.get(key)
                if key_id is None:
                    mask = np.zeros_like(mask)
                else:
                    mask = mask & (self._r_key.view() == key_id)
            rows = np.flatnonzero(mask)
            cached = rows[np.argsort(self._r_started.view()[rows], kind="stable")]
            cache[("completed", key)] = cached
        return cached

    def _key_commit_index(self, key: str):
        """(commit times, prefix-max Versions, version → commit time) for one key."""
        cache = self._query_cache()
        cached = cache.get(("key_index", key))
        if cached is None:
            rows = self._committed_order(key)
            times = self._w_committed.view()[rows]
            ts = self._w_ver_ts.view()[rows]
            writer = self._w_ver_writer.view()[rows]
            prefix_max: list[Version] = []
            best: Optional[Version] = None
            strings = self._strings
            for position in range(rows.shape[0]):
                candidate = Version(int(ts[position]), strings[writer[position]])
                if best is None or candidate > best:
                    best = candidate
                prefix_max.append(best)
            version_times = {
                (int(ts[position]), int(writer[position])): float(times[position])
                for position in range(rows.shape[0])
            }
            cached = (times, prefix_max, version_times)
            cache[("key_index", key)] = cached
        return cached

    # ------------------------------------------------------------------
    # Queries used by the analysis package (TraceLog-compatible surface).
    # ------------------------------------------------------------------
    def committed_write_rows(self, key: str | None = None) -> np.ndarray:
        """Committed write row ids in commit-time order (the analysis column order)."""
        return self._committed_order(key)

    def completed_read_rows(self, key: str | None = None) -> np.ndarray:
        """Completed read row ids in start-time order (the analysis column order)."""
        return self._completed_order(key)

    def committed_writes(self, key: str | None = None) -> list[ColumnarWriteTrace]:
        """All committed writes, optionally restricted to one key, in commit order."""
        return [ColumnarWriteTrace(self, int(row)) for row in self._committed_order(key)]

    def completed_reads(self, key: str | None = None) -> list[ColumnarReadTrace]:
        """All completed reads, optionally restricted to one key, in start order."""
        return [ColumnarReadTrace(self, int(row)) for row in self._completed_order(key)]

    def latest_committed_version_before(self, key: str, time_ms: float) -> Optional[Version]:
        """The newest version of ``key`` whose commit time is <= ``time_ms``."""
        times, prefix_max, _ = self._key_commit_index(key)
        position = int(np.searchsorted(times, time_ms, side="right"))
        if position == 0:
            return None
        return prefix_max[position - 1]

    def commit_time_of(self, key: str, version: Version) -> Optional[float]:
        """Commit time of a specific version, or ``None`` if it never committed."""
        _, _, version_times = self._key_commit_index(key)
        writer_id = self._string_ids.get(version.writer)
        if writer_id is None:
            return None
        return version_times.get((version.timestamp, writer_id))

    def clear(self) -> None:
        """Drop all recorded traces (string table included)."""
        for name in self.__slots__:
            if name.startswith(("_w_", "_r_")):
                getattr(self, name).clear()
        self._strings = []
        self._string_ids = {}
        self._mutations += 1

    # ------------------------------------------------------------------
    # Block merge (sharded runs).
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, logs: Sequence["ColumnarTraceLog"]) -> "ColumnarTraceLog":
        """Concatenate logs column-wise in block order.

        String ids and triplet row references are remapped, so merging the
        per-block logs of a sharded run reproduces the serial log's query
        results exactly (same rows, same order, same strings).
        """
        merged = cls()
        for log in logs:
            remap = np.asarray(
                [merged.intern(value) for value in log._strings], dtype=np.int64
            )
            write_offset = merged._w_op.size
            read_offset = merged._r_op.size
            merged._w_op.extend(log._w_op.view())
            merged._w_key.extend(remap[log._w_key.view()] if log._w_key.size else log._w_key.view())
            merged._w_ver_ts.extend(log._w_ver_ts.view())
            merged._w_ver_writer.extend(
                remap[log._w_ver_writer.view()] if log._w_ver_writer.size else log._w_ver_writer.view()
            )
            merged._w_coord.extend(
                remap[log._w_coord.view()] if log._w_coord.size else log._w_coord.view()
            )
            merged._w_started.extend(log._w_started.view())
            merged._w_committed.extend(log._w_committed.view())
            for source, target in (
                (log._w_arrivals, merged._w_arrivals),
                (log._w_acks, merged._w_acks),
                (log._w_drops, merged._w_drops),
            ):
                target.row.extend(source.row.view() + write_offset)
                target.node.extend(
                    remap[source.node.view()] if source.node.size else source.node.view()
                )
                target.value.extend(source.value.view())
            merged._r_op.extend(log._r_op.view())
            merged._r_key.extend(remap[log._r_key.view()] if log._r_key.size else log._r_key.view())
            merged._r_coord.extend(
                remap[log._r_coord.view()] if log._r_coord.size else log._r_coord.view()
            )
            merged._r_started.extend(log._r_started.view())
            merged._r_completed.extend(log._r_completed.view())
            merged._r_timeout.extend(log._r_timeout.view())
            ret_writer = log._r_ret_writer.view()
            if ret_writer.size:
                remapped_writer = np.where(
                    ret_writer == _NO_VERSION, np.int64(_NO_VERSION), remap[ret_writer]
                )
            else:
                remapped_writer = ret_writer
            merged._r_ret_ts.extend(log._r_ret_ts.view())
            merged._r_ret_writer.extend(remapped_writer)
            merged._r_repairs.extend(log._r_repairs.view())
            merged._r_responses.row.extend(log._r_responses.row.view() + read_offset)
            merged._r_responses.node.extend(
                remap[log._r_responses.node.view()]
                if log._r_responses.node.size
                else log._r_responses.node.view()
            )
            merged._r_responses.value.extend(log._r_responses.value.view())
            for source, target in (
                (log._r_quorum, merged._r_quorum),
                (log._r_late, merged._r_late),
            ):
                target.row.extend(source.row.view() + read_offset)
                target.node.extend(
                    remap[source.node.view()] if source.node.size else source.node.view()
                )
                ts_values = source.ts.view()
                writer_values = source.writer.view()
                if writer_values.size:
                    writer_values = np.where(
                        writer_values == _NO_VERSION,
                        np.int64(_NO_VERSION),
                        remap[writer_values],
                    )
                target.ts.extend(ts_values)
                target.writer.extend(writer_values)
            merged._mutations += 1
        return merged
