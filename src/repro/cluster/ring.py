"""Consistent-hash ring and replica placement.

Dynamo-style stores map each key onto a preference list of ``N`` distinct
physical nodes by walking a consistent-hash ring of virtual nodes (§2.2).
The ring here uses a deterministic (seed-free) hash so placement is stable
across runs and processes, and supports node addition/removal so the
membership and failure-injection machinery can reuse it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["ConsistentHashRing"]


def _stable_hash(text: str) -> int:
    """A deterministic 64-bit hash (Python's ``hash`` is salted per process)."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Consistent hashing with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial physical node identifiers.
    virtual_nodes:
        Number of ring positions ("tokens") per physical node.  More tokens
        smooth out key-ownership imbalance.
    """

    def __init__(self, nodes: Iterable[str] = (), virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ConfigurationError(f"virtual node count must be >= 1, got {virtual_nodes}")
        self._virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, str]] = []
        self._tokens: list[int] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership.
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[str]:
        """The physical nodes currently on the ring."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        """Add a physical node (and its virtual tokens) to the ring."""
        if not node:
            raise ConfigurationError("node identifier must be non-empty")
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for token_index in range(self._virtual_nodes):
            token = _stable_hash(f"{node}#{token_index}")
            position = bisect.bisect(self._tokens, token)
            self._tokens.insert(position, token)
            self._ring.insert(position, (token, node))

    def remove_node(self, node: str) -> None:
        """Remove a physical node and all of its tokens."""
        if node not in self._nodes:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [(token, owner) for token, owner in self._ring if owner != node]
        self._ring = keep
        self._tokens = [token for token, _ in keep]

    # ------------------------------------------------------------------
    # Placement.
    # ------------------------------------------------------------------
    def primary(self, key: str) -> str:
        """Return the first node clockwise from the key's position."""
        return self.preference_list(key, 1)[0]

    def preference_list(self, key: str, n: int) -> list[str]:
        """Return the ``n`` distinct physical nodes responsible for ``key``.

        Walks the ring clockwise from the key's hash, skipping virtual nodes
        belonging to already-selected physical nodes — the standard Dynamo
        preference-list construction.
        """
        if n < 1:
            raise ConfigurationError(f"preference list size must be >= 1, got {n}")
        if n > len(self._nodes):
            raise ConfigurationError(
                f"preference list of {n} requested but only {len(self._nodes)} nodes exist"
            )
        key_token = _stable_hash(key)
        start = bisect.bisect(self._tokens, key_token) % len(self._ring)
        selected: list[str] = []
        seen: set[str] = set()
        index = start
        while len(selected) < n:
            _, owner = self._ring[index]
            if owner not in seen:
                seen.add(owner)
                selected.append(owner)
            index = (index + 1) % len(self._ring)
        return selected

    def ownership_fractions(self, sample_keys: Sequence[str]) -> dict[str, float]:
        """Fraction of sample keys whose primary replica is each node.

        A diagnostic used by tests to confirm virtual nodes balance ownership.
        """
        if not sample_keys:
            raise ConfigurationError("at least one sample key is required")
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for key in sample_keys:
            counts[self.primary(key)] += 1
        total = len(sample_keys)
        return {node: count / total for node, count in counts.items()}
