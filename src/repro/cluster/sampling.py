"""Batched random-draw buffers for the cluster simulator's hot path.

The pre-batching simulator paid one ``distribution.sample(1, rng)`` numpy
call per message leg — several microseconds of per-call overhead (array
allocation, validation) to produce a single float.  A
:class:`LatencyDrawBuffer` instead draws latencies in refillable batches and
serves them one at a time as plain Python floats, amortising the numpy call
over :data:`DEFAULT_DRAW_BATCH_SIZE` messages.

Determinism contract
--------------------
* For a fixed seed **and** a fixed batch size, runs are bit-for-bit
  reproducible: buffers refill at deterministic points (exactly when their
  ``batch_size``-th draw is requested), so the shared generator's stream is
  consumed identically across runs.
* Draws are consumed strictly in request order by the messages that actually
  need them.  Delivery decisions (loss, partitions) never touch a latency
  buffer — loss coin flips come from their own :class:`UniformDrawBuffer` —
  so a dropped message consumes *zero* latency draws and the next delivered
  message gets the value the dropped one would otherwise have taken.
* ``batch_size=1`` reproduces the pre-batching per-draw path exactly: each
  ``draw()`` issues one ``sample(1, rng)`` call at the same point in the
  stream the old scalar code did, which is what anchors the statistical
  equivalence tests against the legacy seed discipline.

Changing the batch size (or turning batching on) reorders which message
receives which value — the streams are *statistically* equivalent, not
identical, mirroring the kernel-backend methodology of ``repro.kernels``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.latency.base import LatencyDistribution

__all__ = ["DEFAULT_DRAW_BATCH_SIZE", "LatencyDrawBuffer", "UniformDrawBuffer"]

#: Default number of latencies drawn per refill.  Large enough to amortise
#: numpy's per-call overhead to noise, small enough that even short runs
#: waste at most a few thousand draws per distribution.
DEFAULT_DRAW_BATCH_SIZE = 4096


class LatencyDrawBuffer:
    """Serves scalar draws from a latency distribution in refillable batches.

    Parameters
    ----------
    distribution:
        The :class:`~repro.latency.base.LatencyDistribution` to draw from.
    rng:
        Shared generator; refills consume ``batch_size`` values from it at
        deterministic points.
    batch_size:
        Draws per refill; ``1`` reproduces the legacy per-draw stream.
    """

    __slots__ = ("distribution", "rng", "batch_size", "refills", "_values")

    def __init__(
        self,
        distribution: LatencyDistribution,
        rng: np.random.Generator,
        batch_size: int = DEFAULT_DRAW_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"draw batch size must be a positive integer, got {batch_size}"
            )
        self.distribution = distribution
        self.rng = rng
        self.batch_size = int(batch_size)
        #: Number of refills so far (instrumentation for tests/benchmarks).
        self.refills = 0
        self._values: list[float] = []

    def draw(self) -> float:
        """Return the next latency draw (a plain Python float)."""
        try:
            return self._values.pop()
        except IndexError:
            # The buffer stores the batch *reversed* so list.pop() — an O(1)
            # C operation with no index bookkeeping — serves draws in the
            # original sample order; tolist() converts once to Python floats.
            samples = self.distribution.sample(self.batch_size, self.rng)
            self._values = np.asarray(samples, dtype=float)[::-1].tolist()
            self.refills += 1
            return self._values.pop()

    @property
    def pending(self) -> int:
        """Buffered draws not yet served (0 before the first refill)."""
        return len(self._values)


class UniformDrawBuffer:
    """Batched uniform(0, 1) draws for message-loss coin flips.

    Kept separate from the latency buffers so delivery decisions and latency
    draws never compete for the same buffered values: a dropped message
    consumes exactly one loss draw and zero latency draws.
    """

    __slots__ = ("rng", "batch_size", "refills", "_values")

    def __init__(
        self, rng: np.random.Generator, batch_size: int = DEFAULT_DRAW_BATCH_SIZE
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"draw batch size must be a positive integer, got {batch_size}"
            )
        self.rng = rng
        self.batch_size = int(batch_size)
        self.refills = 0
        self._values: list[float] = []

    def draw(self) -> float:
        """Return the next uniform(0, 1) draw."""
        try:
            return self._values.pop()
        except IndexError:
            self._values = self.rng.random(self.batch_size)[::-1].tolist()
            self.refills += 1
            return self._values.pop()
