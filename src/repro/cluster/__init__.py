"""Dynamo-style data-store substrate: a discrete-event replicated key-value store.

This is the stand-in for the instrumented Cassandra cluster used in the
paper's §5.2 validation.  Coordinators forward every operation to all N
replicas of a key, commit writes after W acknowledgements, answer reads from
the first R responses, and record WARS-grade traces for staleness analysis.
Optional subsystems (read repair, hinted handoff, Merkle anti-entropy, failure
injection) support the ablation experiments.
"""

from repro.cluster.antientropy import AntiEntropyStats, MerkleAntiEntropy
from repro.cluster.client import ClientSession, SessionStats, WorkloadRunner
from repro.cluster.coordinator import Coordinator, ReadHandle, WriteHandle
from repro.cluster.events import CalendarQueue, Event, EventQueue
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.membership import Membership
from repro.cluster.merkle import MerkleTree
from repro.cluster.network import Network
from repro.cluster.node import ApplyResult, StorageNode
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.sampling import (
    DEFAULT_DRAW_BATCH_SIZE,
    LatencyDrawBuffer,
    UniformDrawBuffer,
)
from repro.cluster.simulator import Simulator
from repro.cluster.staleness_detector import StalenessDetector, StalenessSignal
from repro.cluster.store import DynamoCluster
from repro.cluster.tracelog import (
    ColumnarReadTrace,
    ColumnarTraceLog,
    ColumnarWriteTrace,
)
from repro.cluster.tracing import ReadTrace, TraceLog, WriteTrace
from repro.cluster.versioning import (
    Causality,
    LamportClock,
    VectorClock,
    Version,
    VersionedValue,
)

__all__ = [
    "AntiEntropyStats",
    "MerkleAntiEntropy",
    "ClientSession",
    "SessionStats",
    "WorkloadRunner",
    "Coordinator",
    "ReadHandle",
    "WriteHandle",
    "CalendarQueue",
    "Event",
    "EventQueue",
    "FailureEvent",
    "FailureInjector",
    "Membership",
    "MerkleTree",
    "Network",
    "ApplyResult",
    "StorageNode",
    "ConsistentHashRing",
    "DEFAULT_DRAW_BATCH_SIZE",
    "LatencyDrawBuffer",
    "UniformDrawBuffer",
    "Simulator",
    "StalenessDetector",
    "StalenessSignal",
    "DynamoCluster",
    "ColumnarReadTrace",
    "ColumnarTraceLog",
    "ColumnarWriteTrace",
    "ReadTrace",
    "TraceLog",
    "WriteTrace",
    "Causality",
    "LamportClock",
    "VectorClock",
    "Version",
    "VersionedValue",
]
