"""Asynchronous staleness detection (paper §4.3).

Dynamo-style coordinators wait for ``R`` of ``N`` responses but the remaining
replicas still reply.  Comparing those late responses against the version the
coordinator already returned yields an *asynchronous* staleness signal:

* A late response with a **newer** version means either the read returned
  stale data, or there were in-flight / subsequently committed writes — i.e. a
  detector with false positives that needs no protocol changes.
* Filtering those candidates through a commit-order oracle (here, the trace
  log, playing the role of the centralised ordering service or consensus the
  paper suggests) removes the false positives and leaves only true staleness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.tracing import ReadTrace, TraceLog
from repro.cluster.versioning import Version

__all__ = ["StalenessSignal", "StalenessDetector"]


@dataclass(frozen=True)
class StalenessSignal:
    """A per-read staleness verdict from the asynchronous detector."""

    operation_id: int
    key: str
    returned_version: Optional[Version]
    newest_late_version: Optional[Version]
    #: Raw detector verdict (may be a false positive).
    flagged: bool
    #: Verdict after consulting the commit-order oracle (no false positives).
    confirmed_stale: bool


@dataclass
class StalenessDetector:
    """Evaluates completed reads against their late responses and the commit order."""

    trace_log: TraceLog
    signals: list[StalenessSignal] = field(default_factory=list)

    def inspect(self, read: ReadTrace) -> StalenessSignal:
        """Evaluate one completed read and record the resulting signal."""
        newest_late: Optional[Version] = None
        for version in read.late_responses.values():
            if version is not None and (newest_late is None or version > newest_late):
                newest_late = version

        flagged = (
            newest_late is not None
            and (read.returned_version is None or newest_late > read.returned_version)
        )

        # Oracle check: the read is *actually* stale only if a version newer
        # than the returned one had already committed when the read started.
        latest_committed = self.trace_log.latest_committed_version_before(
            read.key, read.started_ms
        )
        confirmed = (
            latest_committed is not None
            and (read.returned_version is None or latest_committed > read.returned_version)
        )

        signal = StalenessSignal(
            operation_id=read.operation_id,
            key=read.key,
            returned_version=read.returned_version,
            newest_late_version=newest_late,
            flagged=flagged,
            confirmed_stale=confirmed,
        )
        self.signals.append(signal)
        return signal

    def inspect_all(self, key: str | None = None) -> list[StalenessSignal]:
        """Evaluate every completed read in the trace log (optionally one key)."""
        return [self.inspect(read) for read in self.trace_log.completed_reads(key)]

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------
    @property
    def flagged_count(self) -> int:
        """Reads the raw detector flagged as possibly stale."""
        return sum(1 for signal in self.signals if signal.flagged)

    @property
    def confirmed_count(self) -> int:
        """Reads confirmed stale by the commit-order oracle."""
        return sum(1 for signal in self.signals if signal.confirmed_stale)

    @property
    def false_positive_count(self) -> int:
        """Reads flagged by the raw detector but not actually stale."""
        return sum(
            1 for signal in self.signals if signal.flagged and not signal.confirmed_stale
        )

    @property
    def false_negative_count(self) -> int:
        """Reads the raw detector missed but that were actually stale.

        These occur when the newer committed version had not yet reached any of
        the late-responding replicas (or there were no late responses at all).
        """
        return sum(
            1 for signal in self.signals if signal.confirmed_stale and not signal.flagged
        )
