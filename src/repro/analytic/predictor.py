"""Analytic WARS predictor: quorum latency and t-visibility without sampling.

Exact decomposition
-------------------
Write ``U_i = W_i + A_i`` (commit round trip), ``V_i = R_i + S_i`` (read
round trip) and ``M_i = W_i − R_i`` (freshness margin) for replica ``i``.  A
read started ``t`` ms after commit is stale exactly when every replica in the
read quorum (the ``R`` smallest ``V``) has ``M_j > wt + t``, where ``wt`` is
the ``W``-th smallest ``U`` over all ``N`` replicas.

Two observations make this tractable (proof in ``docs/architecture.md`` §7):

1. On the staleness event, every read-quorum replica has ``U_j > wt``, so the
   ``W`` acknowledgements defining ``wt`` all come from the ``N − R``
   replicas *outside* the read quorum.  Replacing ``wt`` by ``wt_c`` — the
   ``W``-th smallest ``U`` among those ``N − R`` replicas — changes nothing:

       P(stale at t) = ∫ G(u + t) dF_wtc(u),

   with the two factors independent because ``U`` involves only the write
   legs while quorum membership involves only the read legs.  When
   ``W > N − R`` (a strict quorum, ``R + W > N``) the event is impossible
   and the staleness probability is exactly zero.

2. ``G(s) = P(every read-quorum replica has M > s)`` is a classic order
   statistic of the i.i.d. pairs ``(V_i, M_i)``: conditioning on the
   ``R``-th smallest ``V``,

       G(s) = N·C(N−1, R−1) ∫ α_s(v)^{R−1} (1 − F_V(v))^{N−R} dα_s(v),

   where ``α_s(v) = P(V ≤ v, M > s) = Σ_r p_R(r)·F_S(v − r)·P(W > s + r)``
   (conditioning on the read-request leg ``r`` makes ``V`` and ``M``
   conditionally independent).  Tabulated over an ``(s, v)`` grid, α is one
   matrix product shared by *every* configuration of an environment; each
   ``(N, R)`` then needs only elementwise powers and a weighted row-sum.

Discretisation is the only approximation: every distribution is carried on a
tail-aware quantile ladder (:mod:`repro.analytic.grid`), and
:mod:`repro.analytic.validation` bounds the end-to-end error against the
Monte Carlo engine.  Replicas must be i.i.d. — per-replica (WAN) models are
rejected and remain Monte Carlo only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb
from typing import Mapping, Sequence

import numpy as np

from repro.analytic.grid import (
    DEFAULT_GRID_POINTS,
    DEFAULT_TAIL_MASS,
    LatencyGrid,
    convolve_grids,
)
from repro.analytic.orderstats import order_statistic_cdf
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError
from repro.latency.composite import PerReplicaLatency
from repro.latency.production import WARSDistributions

__all__ = [
    "AnalyticEnvironment",
    "AnalyticConfigResult",
    "AnalyticPredictor",
    "DEFAULT_TARGET_PROBABILITIES",
    "DEFAULT_SUMMARY_PERCENTILES",
]

#: Consistency targets summarised by :meth:`AnalyticPredictor.sweep`,
#: matching the Monte Carlo engine's defaults (99% and 99.9%).
DEFAULT_TARGET_PROBABILITIES: tuple[float, ...] = (0.99, 0.999)

#: Latency percentiles summarised by :meth:`AnalyticPredictor.sweep`.
DEFAULT_SUMMARY_PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)

#: Equal-mass quadrature atoms for ``wt_c`` on the fast sweep path.  Point
#: queries via :meth:`AnalyticConfigResult.consistency_probability` use the
#: full grid resolution instead.
_SWEEP_ATOMS: int = 32

#: Geometric seed points for inverting the staleness curve during a sweep.
_SEED_POINTS: int = 17

#: Bisection refinements after seeding a t-visibility bracket in a sweep.
_SWEEP_REFINEMENTS: int = 10

#: Bisection iterations for the exact (lazy) t-visibility query.
_EXACT_BISECTIONS: int = 60


def _cdf_cells(nodes: np.ndarray, cdf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Midpoint/mass cells of a CDF tabulated on ``nodes`` (masses sum to 1)."""
    mids = np.concatenate([[nodes[0]], 0.5 * (nodes[:-1] + nodes[1:]), [nodes[-1]]])
    masses = np.concatenate([[cdf[0]], np.diff(cdf), [1.0 - cdf[-1]]])
    keep = masses > 0.0
    return mids[keep], masses[keep]


def _pad_degenerate(values: np.ndarray) -> np.ndarray:
    """Ensure at least two strictly ordered nodes (constant legs collapse to one)."""
    if values.size >= 2:
        return values
    value = float(values[0])
    return np.array([value - max(abs(value), 1.0) * 1e-9, value])


@dataclass(frozen=True)
class AnalyticEnvironment:
    """Per-environment tables shared by every ``(N, R, W)`` configuration.

    Construction tabulates the four legs, convolves them into the commit
    (``U = W + A``) and read (``V = R + S``) round-trip distributions, and
    builds the α matrix of the module docstring.  All of that is independent
    of the quorum sizes, so one environment amortises over a whole
    replication-factor × quorum grid; per-``(N, R)`` freshness curves and
    per-quorum latency tables are cached lazily on first use.
    """

    distributions: WARSDistributions
    grid_points: int = DEFAULT_GRID_POINTS
    tail_mass: float = DEFAULT_TAIL_MASS
    #: Read-request-leg quadrature cells used for the α matrix.
    request_cells: int = 256
    #: Quadrature cells used when convolving leg pairs.
    quad_cells: int = 512

    def __post_init__(self) -> None:
        for letter, leg in self.distributions.components().items():
            if isinstance(leg, PerReplicaLatency):
                raise ConfigurationError(
                    f"the analytic predictor requires i.i.d. replicas, but the "
                    f"{letter} leg of {self.distributions.name!r} is per-replica "
                    f"(the paper's WAN scenario); use the Monte Carlo engine for "
                    f"per-replica models"
                )
        grids: dict[int, LatencyGrid] = {}

        def grid_of(leg) -> LatencyGrid:
            if id(leg) not in grids:
                grids[id(leg)] = LatencyGrid.from_distribution(
                    leg, self.grid_points, self.tail_mass
                )
            return grids[id(leg)]

        legs = self.distributions
        write_grid = grid_of(legs.w)
        ack_grid = grid_of(legs.a)
        request_grid = grid_of(legs.r)
        response_grid = grid_of(legs.s)

        commit_grid = convolve_grids(
            write_grid, ack_grid, self.grid_points, self.tail_mass, self.quad_cells
        )
        read_nodes = _pad_degenerate(
            convolve_grids(
                response_grid,
                request_grid,
                self.grid_points,
                self.tail_mass,
                self.quad_cells,
            ).values
        )

        # α[s, v] = P(V <= v, M > s) per replica, via quadrature over the
        # read-request leg: given R = r, V = r + S and M = W − r are
        # independent.  F_V reuses the same quadrature so the G integrand's
        # two factors share their discretisation error.
        request_mids, request_masses = request_grid.cells(self.request_cells)
        s_nodes = np.unique(
            np.concatenate([[0.0], write_grid.values[write_grid.values > 0.0]])
        )
        if s_nodes.size < 2:
            s_nodes = np.array([0.0, 1.0])
        blocked = request_masses[None, :] * write_grid.sf(
            s_nodes[:, None] + request_mids[None, :]
        )
        responded = response_grid.cdf(read_nodes[None, :] - request_mids[:, None])
        alpha = blocked @ responded
        read_cdf = request_masses @ responded

        u_nodes = _pad_degenerate(commit_grid.values)
        commit_cdf = commit_grid.probs if u_nodes.size == commit_grid.values.size else (
            commit_grid.cdf(u_nodes)
        )

        object.__setattr__(self, "_u_nodes", u_nodes)
        object.__setattr__(self, "_commit_cdf", np.asarray(commit_cdf, dtype=float))
        object.__setattr__(self, "_v_nodes", read_nodes)
        object.__setattr__(self, "_read_cdf", np.clip(read_cdf, 0.0, 1.0))
        object.__setattr__(self, "_s_nodes", s_nodes)
        object.__setattr__(self, "_mid_alpha", 0.5 * (alpha[:, 1:] + alpha[:, :-1]))
        object.__setattr__(self, "_d_alpha", np.diff(alpha, axis=1))
        object.__setattr__(
            self,
            "_mid_read_sf",
            np.clip(1.0 - 0.5 * (read_cdf[1:] + read_cdf[:-1]), 0.0, 1.0),
        )
        object.__setattr__(self, "_g_cache", {})
        object.__setattr__(self, "_latency_cache", {})

    # ------------------------------------------------------------------
    # Cached per-(N, R) / per-quorum tables.
    # ------------------------------------------------------------------
    def quorum_freshness(self, n: int, r: int) -> np.ndarray:
        """``G(s) = P(every read-quorum replica has W − R > s)`` on ``s_nodes``.

        The order-statistics integral of the module docstring, evaluated as a
        midpoint sum along the ``v`` axis of the precomputed α matrix.
        Cached per ``(n, r)``.
        """
        key = (n, r)
        cached = self._g_cache.get(key)
        if cached is not None:
            return cached
        if not 1 <= r <= n:
            raise ConfigurationError(f"read quorum must satisfy 1 <= R <= N, got {key}")
        integrand = self._d_alpha
        if r > 1:
            integrand = integrand * self._mid_alpha ** (r - 1)
        weights = self._mid_read_sf ** (n - r)
        freshness = (n * comb(n - 1, r - 1)) * (integrand @ weights)
        freshness = np.minimum.accumulate(np.clip(freshness, 0.0, 1.0))
        self._g_cache[key] = freshness
        return freshness

    def commit_blocker_cdf(self, config: ReplicaConfig) -> np.ndarray:
        """CDF of ``wt_c`` on ``u_nodes``: the ``W``-th fastest commit round trip
        among the ``N − R`` replicas outside the read quorum."""
        spare = config.n - config.r
        if config.w > spare:
            raise ConfigurationError(
                f"{config} is a strict quorum; its staleness probability is zero"
            )
        return order_statistic_cdf(self._commit_cdf, spare, config.w)

    def operation_latency_table(self, kind: str, n: int, k: int) -> np.ndarray:
        """CDF of the ``k``-th fastest of ``n`` commit ("write") or read round trips."""
        key = (kind, n, k)
        cached = self._latency_cache.get(key)
        if cached is not None:
            return cached
        if kind == "write":
            parent = self._commit_cdf
        elif kind == "read":
            parent = self._read_cdf
        else:
            raise ConfigurationError(f"latency kind must be 'write' or 'read', got {kind}")
        table = order_statistic_cdf(parent, n, k)
        self._latency_cache[key] = table
        return table

    def latency_percentiles(
        self, kind: str, n: int, k: int, percentiles: Sequence[float]
    ) -> dict[float, float]:
        """Operation-latency percentiles for one quorum, from the cached table."""
        table = self.operation_latency_table(kind, n, k)
        nodes = self._u_nodes if kind == "write" else self._v_nodes
        values = np.interp(np.asarray(percentiles, dtype=float) / 100.0, table, nodes)
        return {float(p): float(v) for p, v in zip(percentiles, values)}

    @property
    def max_staleness_horizon_ms(self) -> float:
        """Beyond this ``t`` the staleness probability is indistinguishable from 0."""
        return float(self._s_nodes[-1])


@dataclass(frozen=True)
class AnalyticConfigResult:
    """Analytic answers for one ``(N, R, W)`` configuration.

    Mirrors the query surface of the Monte Carlo
    :class:`repro.montecarlo.engine.ConfigSweepResult`: point queries are
    computed on demand at full grid resolution; ``curve``,
    ``t_visibility_ms`` and the latency mappings are populated eagerly when
    the result came from :meth:`AnalyticPredictor.sweep`.
    """

    config: ReplicaConfig
    environment: AnalyticEnvironment
    #: ``(t, P(consistent at t))`` pairs when produced by a sweep.
    curve: tuple[tuple[float, float], ...] | None = None
    #: Target probability -> t-visibility (ms) when produced by a sweep.
    t_visibility_ms: Mapping[float, float] | None = None
    #: Percentile -> read latency (ms) when produced by a sweep.
    read_latency_ms: Mapping[float, float] | None = None
    #: Percentile -> write latency (ms) when produced by a sweep.
    write_latency_ms: Mapping[float, float] | None = None

    # ------------------------------------------------------------------
    # Exact-path staleness machinery (full grid resolution).
    # ------------------------------------------------------------------
    def _staleness_cells(self) -> tuple[np.ndarray, np.ndarray]:
        try:
            return self._staleness_cells_cache  # type: ignore[attr-defined]
        except AttributeError:
            env = self.environment
            cells = _cdf_cells(env._u_nodes, env.commit_blocker_cdf(self.config))
            object.__setattr__(self, "_staleness_cells_cache", cells)
            return cells

    def staleness_probability(self, t_ms: float) -> float:
        """``P(read started t ms after commit is stale)``, exactly zero for
        strict quorums."""
        if t_ms < 0:
            raise ConfigurationError(f"time since commit must be non-negative, got {t_ms}")
        if self.config.is_strict:
            return 0.0
        env = self.environment
        mids, masses = self._staleness_cells()
        freshness = env.quorum_freshness(self.config.n, self.config.r)
        return float(
            masses @ np.interp(mids + t_ms, env._s_nodes, freshness, right=0.0)
        )

    def consistency_probability(self, t_ms: float) -> float:
        """``P(read started t ms after commit is consistent)``."""
        return 1.0 - self.staleness_probability(t_ms)

    def consistency_curve(self, times_ms: Sequence[float]) -> list[tuple[float, float]]:
        """``(t, P(consistent at t))`` for each requested time since commit."""
        times = np.asarray(list(times_ms), dtype=float)
        if np.any(times < 0):
            raise ConfigurationError("times since commit must be non-negative")
        if self.config.is_strict:
            return [(float(t), 1.0) for t in times]
        env = self.environment
        mids, masses = self._staleness_cells()
        freshness = env.quorum_freshness(self.config.n, self.config.r)
        stale = (
            np.interp(
                (mids[None, :] + times[:, None]).ravel(),
                env._s_nodes,
                freshness,
                right=0.0,
            ).reshape(times.size, mids.size)
            @ masses
        )
        return [(float(t), float(1.0 - p)) for t, p in zip(times, stale)]

    def t_visibility(self, target_probability: float) -> float:
        """Smallest ``t`` (ms) at which consistency reaches the target probability."""
        if not 0.0 < target_probability <= 1.0:
            raise ConfigurationError(
                f"target probability must be in (0, 1], got {target_probability}"
            )
        if self.config.is_strict:
            return 0.0
        epsilon = 1.0 - target_probability
        if self.staleness_probability(0.0) <= epsilon:
            return 0.0
        low, high = 0.0, self.environment.max_staleness_horizon_ms
        for _ in range(_EXACT_BISECTIONS):
            mid = 0.5 * (low + high)
            if self.staleness_probability(mid) > epsilon:
                low = mid
            else:
                high = mid
        return high

    def probability_never_stale(self) -> float:
        """``P(consistent immediately at commit)`` — the ``t = 0`` point."""
        return self.consistency_probability(0.0)

    def read_latency_percentile(self, percentile: float) -> float:
        """Read operation latency (ms) at the given percentile."""
        return self.environment.latency_percentiles(
            "read", self.config.n, self.config.r, (percentile,)
        )[float(percentile)]

    def write_latency_percentile(self, percentile: float) -> float:
        """Write (commit) latency (ms) at the given percentile."""
        return self.environment.latency_percentiles(
            "write", self.config.n, self.config.w, (percentile,)
        )[float(percentile)]


@dataclass(frozen=True)
class AnalyticPredictor:
    """Front end over :class:`AnalyticEnvironment` for sweeps and point queries.

    The environment tables are built lazily on first use and shared by every
    subsequent query, so a warm predictor answers a full multi-configuration
    sweep in about a millisecond and a single point query in microseconds.
    """

    distributions: WARSDistributions
    grid_points: int = DEFAULT_GRID_POINTS
    tail_mass: float = DEFAULT_TAIL_MASS
    request_cells: int = 256
    quad_cells: int = 512

    @property
    def environment(self) -> AnalyticEnvironment:
        """The lazily built, cached environment tables."""
        try:
            return self._environment_cache  # type: ignore[attr-defined]
        except AttributeError:
            environment = AnalyticEnvironment(
                distributions=self.distributions,
                grid_points=self.grid_points,
                tail_mass=self.tail_mass,
                request_cells=self.request_cells,
                quad_cells=self.quad_cells,
            )
            object.__setattr__(self, "_environment_cache", environment)
            return environment

    def result(self, config: ReplicaConfig) -> AnalyticConfigResult:
        """A lazily evaluated result for one configuration."""
        return AnalyticConfigResult(config=config, environment=self.environment)

    def rebind(self, distributions: WARSDistributions) -> "AnalyticPredictor":
        """A predictor over new distributions with this predictor's tuning.

        The serving layer refits a tenant's latency model as observations
        stream in; ``rebind`` carries the grid/tail/quadrature tuning across
        the drift so every generation of the environment is discretised
        identically.  When the distributions are the same object, ``self`` is
        returned and the warm environment tables are preserved.
        """
        if distributions is self.distributions:
            return self
        return AnalyticPredictor(
            distributions=distributions,
            grid_points=self.grid_points,
            tail_mass=self.tail_mass,
            request_cells=self.request_cells,
            quad_cells=self.quad_cells,
        )

    def consistency_probability(self, config: ReplicaConfig, t_ms: float) -> float:
        """``P(consistent at t)`` for one configuration."""
        return self.result(config).consistency_probability(t_ms)

    def t_visibility(self, config: ReplicaConfig, target_probability: float) -> float:
        """t-visibility (ms) for one configuration at one target probability."""
        return self.result(config).t_visibility(target_probability)

    def sweep(
        self,
        configs: Sequence[ReplicaConfig],
        times_ms: Sequence[float] = (),
        target_probability: Sequence[float] = DEFAULT_TARGET_PROBABILITIES,
        percentiles: Sequence[float] = DEFAULT_SUMMARY_PERCENTILES,
    ) -> list[AnalyticConfigResult]:
        """Answer consistency, t-visibility and latency for many configurations.

        This is the fast path benchmarked against
        :class:`repro.montecarlo.engine.SweepEngine`: staleness quadratures
        use :data:`_SWEEP_ATOMS` equal-mass atoms of ``wt_c`` instead of the
        full grid, which keeps a warm eight-configuration sweep around a
        millisecond at well under 0.1% absolute probability error.
        """
        env = self.environment
        times = np.asarray(list(times_ms), dtype=float)
        if times.size and np.any(times < 0):
            raise ConfigurationError("times since commit must be non-negative")
        targets = tuple(target_probability)
        for target in targets:
            if not 0.0 < target <= 1.0:
                raise ConfigurationError(
                    f"target probability must be in (0, 1], got {target}"
                )
        horizon = env.max_staleness_horizon_ms
        seed_low = max(horizon * 1e-6, 1e-6)
        seeds = np.concatenate(
            [[0.0], np.geomspace(seed_low, horizon, _SEED_POINTS)]
        )
        atom_ladder = (np.arange(_SWEEP_ATOMS) + 0.5) / _SWEEP_ATOMS
        results: list[AnalyticConfigResult] = []
        for config in configs:
            read_latency = env.latency_percentiles(
                "read", config.n, config.r, percentiles
            )
            write_latency = env.latency_percentiles(
                "write", config.n, config.w, percentiles
            )
            if config.is_strict:
                curve = tuple((float(t), 1.0) for t in times)
                visibility = {float(target): 0.0 for target in targets}
                results.append(
                    AnalyticConfigResult(
                        config=config,
                        environment=env,
                        curve=curve,
                        t_visibility_ms=visibility,
                        read_latency_ms=read_latency,
                        write_latency_ms=write_latency,
                    )
                )
                continue
            blocker = env.commit_blocker_cdf(config)
            atoms = np.interp(atom_ladder, blocker, env._u_nodes)
            freshness = env.quorum_freshness(config.n, config.r)

            def staleness_at(query_times: np.ndarray) -> np.ndarray:
                shifted = atoms[None, :] + query_times[:, None]
                return np.interp(
                    shifted.ravel(), env._s_nodes, freshness, right=0.0
                ).reshape(query_times.size, atoms.size).mean(axis=1)

            query = np.concatenate([times, seeds])
            stale = staleness_at(query)
            curve = tuple(
                (float(t), float(1.0 - p)) for t, p in zip(times, stale[: times.size])
            )
            seed_stale = stale[times.size :]
            visibility: dict[float, float] = {}
            brackets: dict[float, list[float]] = {}
            for target in targets:
                epsilon = 1.0 - target
                if seed_stale[0] <= epsilon:
                    visibility[float(target)] = 0.0
                    continue
                # Bracket on the geometric seed curve, then bisect all
                # targets jointly (one batched evaluation per round).
                above = np.nonzero(seed_stale > epsilon)[0]
                low = float(seeds[above[-1]])
                high = float(seeds[above[-1] + 1]) if above[-1] + 1 < seeds.size else horizon
                brackets[float(target)] = [low, high]
            for _ in range(_SWEEP_REFINEMENTS if brackets else 0):
                pending = list(brackets)
                mids = np.array(
                    [0.5 * (brackets[t][0] + brackets[t][1]) for t in pending]
                )
                stale_mid = staleness_at(mids)
                for target, mid, stale_value in zip(pending, mids, stale_mid):
                    if stale_value > 1.0 - target:
                        brackets[target][0] = float(mid)
                    else:
                        brackets[target][1] = float(mid)
            for target, (_, high) in brackets.items():
                visibility[target] = high
            results.append(
                AnalyticConfigResult(
                    config=config,
                    environment=env,
                    curve=curve,
                    t_visibility_ms=visibility,
                    read_latency_ms=read_latency,
                    write_latency_ms=write_latency,
                )
            )
        return results
