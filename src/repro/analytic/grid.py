"""Quantile-ladder tabulation of latency distributions.

The analytic predictor needs every leg distribution as a pair of fast
vectorised maps ``x -> F(x)`` and ``q -> F^{-1}(q)``.  A uniform value grid
cannot serve the paper's production fits — the YMMR write tail is an
exponential with a ~357 ms mean riding on a Pareto body below 10 ms — so
:class:`LatencyGrid` tabulates each distribution at a *quantile ladder*: a
dense set of probabilities in ``(0, 1)`` with geometric refinement toward
both tails (down to ``1e-7`` of mass).  Node placement then automatically
follows the distribution's own shape, and linear interpolation between nodes
is accurate wherever the distribution has mass.

Sums of independent legs (``W + A`` commit round trips, ``R + S`` read round
trips) are tabulated by :func:`convolve_grids`: node placement from a coarse
weighted outer sum, probabilities from a quadrature of one grid's CDF against
the other grid's probability cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution
from repro.latency.mixture import MixtureDistribution

__all__ = [
    "DEFAULT_GRID_POINTS",
    "DEFAULT_TAIL_MASS",
    "LatencyGrid",
    "quantile_ladder",
    "convolve_grids",
]

#: Default number of body points in a quantile ladder.
DEFAULT_GRID_POINTS: int = 513

#: Probability mass left untabulated in each tail.
DEFAULT_TAIL_MASS: float = 1e-7

#: Geometric refinement points inserted per tail beyond the uniform body.
_TAIL_POINTS: int = 33


def quantile_ladder(
    points: int = DEFAULT_GRID_POINTS, tail: float = DEFAULT_TAIL_MASS
) -> np.ndarray:
    """Strictly increasing probabilities in ``(tail, 1 - tail)``.

    ``points`` uniform body points are augmented with geometrically spaced
    probabilities toward each tail so heavy-tailed distributions keep nodes
    out to their ``1 - tail`` quantile.
    """
    if points < 8:
        raise DistributionError(f"quantile ladder needs >= 8 points, got {points}")
    if not 0.0 < tail < 0.25:
        raise DistributionError(f"tail mass must be in (0, 0.25), got {tail}")
    body = np.linspace(0.0, 1.0, points)[1:-1]
    low = np.geomspace(tail, body[0], _TAIL_POINTS)[:-1]
    high_eps = np.geomspace(tail, 1.0 - body[-1], _TAIL_POINTS)[:-1]
    high = (1.0 - high_eps)[::-1]
    return np.unique(np.concatenate([low, body, high]))


@dataclass(frozen=True)
class LatencyGrid:
    """A latency distribution tabulated as ``(value, cumulative probability)`` pairs.

    ``values`` must be non-decreasing and ``probs`` non-decreasing in
    ``[0, 1]``; both are sanitised on construction.  Queries are vectorised
    linear interpolations:

    * :meth:`cdf` / :meth:`sf` interpolate probability over unique values
      (right-continuous at atoms);
    * :meth:`ppf` interpolates values over the strictly increasing part of
      the probability ladder;
    * :meth:`cells` returns midpoint/mass quadrature cells whose masses sum
      to exactly one (tail mass beyond the ladder collapses onto the end
      nodes).
    """

    values: np.ndarray
    probs: np.ndarray
    _ppf_p: np.ndarray = field(init=False, repr=False, compare=False)
    _ppf_v: np.ndarray = field(init=False, repr=False, compare=False)
    _cdf_v: np.ndarray = field(init=False, repr=False, compare=False)
    _cdf_p: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        probs = np.asarray(self.probs, dtype=float)
        if values.ndim != 1 or values.shape != probs.shape or values.size < 2:
            raise DistributionError("grid requires matching 1-D arrays of >= 2 nodes")
        if not np.all(np.isfinite(values)):
            raise DistributionError("grid values must be finite")
        values = np.maximum.accumulate(values)
        probs = np.maximum.accumulate(np.clip(probs, 0.0, 1.0))
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "probs", probs)
        # Strictly increasing ladder for quantile queries.
        keep = np.concatenate([[True], np.diff(probs) > 0.0])
        object.__setattr__(self, "_ppf_p", probs[keep])
        object.__setattr__(self, "_ppf_v", values[keep])
        # Unique values with the largest attained probability for CDF queries.
        unique_values = np.unique(values)
        last = np.searchsorted(values, unique_values, side="right") - 1
        object.__setattr__(self, "_cdf_v", unique_values)
        object.__setattr__(self, "_cdf_p", probs[last])

    @classmethod
    def from_distribution(
        cls,
        distribution: LatencyDistribution,
        points: int = DEFAULT_GRID_POINTS,
        tail: float = DEFAULT_TAIL_MASS,
    ) -> "LatencyGrid":
        """Tabulate a distribution over a quantile ladder.

        Mixtures are tabulated on the union of their components' ladders
        (each component's quantile function is cheap) with probabilities from
        the mixture's analytic CDF — inverting the mixture CDF point by point
        would cost a bisection per node.
        """
        ladder = quantile_ladder(points, tail)
        if isinstance(distribution, MixtureDistribution):
            component_values = [
                component.distribution.ppf_batch(ladder)
                for component in distribution.components
                if component.weight > 0.0
            ]
            values = np.unique(np.concatenate(component_values))
            probs = np.array([distribution.cdf(float(x)) for x in values])
            return cls(values=values, probs=probs)
        return cls(values=distribution.ppf_batch(ladder), probs=ladder)

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        """``P(X <= x)`` by interpolation (0 below the grid, 1 above it)."""
        return np.interp(x, self._cdf_v, self._cdf_p, left=0.0, right=1.0)

    def sf(self, x: np.ndarray | float) -> np.ndarray:
        """Survival function ``P(X > x)``."""
        return 1.0 - self.cdf(x)

    def ppf(self, q: np.ndarray | float) -> np.ndarray:
        """Quantile function by interpolation, clamped to the tabulated range."""
        return np.interp(q, self._ppf_p, self._ppf_v)

    def cells(self, max_cells: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Quadrature cells ``(midpoints, masses)`` with masses summing to one.

        With ``max_cells`` the grid is first resampled onto a coarser
        tail-aware ladder, bounding the cost of quadratures that loop over
        the cells.
        """
        if max_cells is not None and max_cells + 1 < self._ppf_p.size:
            probs = quantile_ladder(max_cells + 1, max(float(self._ppf_p[0]), 1e-12))
            values = self.ppf(probs)
        else:
            probs, values = self._ppf_p, self._ppf_v
        mids = 0.5 * (values[:-1] + values[1:])
        masses = np.diff(probs)
        mids = np.concatenate([[values[0]], mids, [values[-1]]])
        masses = np.concatenate([[probs[0]], masses, [1.0 - probs[-1]]])
        nonzero = masses > 0.0
        return mids[nonzero], masses[nonzero]

    @property
    def support(self) -> tuple[float, float]:
        """Smallest and largest tabulated values."""
        return float(self.values[0]), float(self.values[-1])


def convolve_grids(
    x: "LatencyGrid",
    y: "LatencyGrid",
    points: int = DEFAULT_GRID_POINTS,
    tail: float = DEFAULT_TAIL_MASS,
    quad_cells: int = 512,
    placement_cells: int = 128,
) -> "LatencyGrid":
    """Tabulate the distribution of ``X + Y`` for independent tabulated legs.

    Node placement comes from the weighted outer sum of coarse cells of both
    grids (so nodes track the sum's own quantiles, tails included); the CDF at
    each node is the exact quadrature ``F_{X+Y}(u) = sum_j m_j F_X(u - y_j)``
    over ``quad_cells`` probability cells of ``Y``.
    """
    px_m, px_w = x.cells(placement_cells)
    py_m, py_w = y.cells(placement_cells)
    sums = (px_m[:, None] + py_m[None, :]).ravel()
    weights = (px_w[:, None] * py_w[None, :]).ravel()
    order = np.argsort(sums)
    sums = sums[order]
    cumulative = np.cumsum(weights[order])
    ladder = quantile_ladder(points, tail)
    nodes = np.unique(np.interp(ladder, cumulative, sums))
    if nodes.size < 2:
        # Two constant legs: the sum is a point mass; tabulate it as a step.
        value = float(nodes[0])
        nodes = np.array([value - max(abs(value), 1.0) * 1e-9, value])
    y_mids, y_masses = y.cells(quad_cells)
    probs = x.cdf(nodes[:, None] - y_mids[None, :]) @ y_masses
    return LatencyGrid(values=nodes, probs=probs)
