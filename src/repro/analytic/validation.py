"""Model-vs-simulation validation of the analytic predictor.

The Monte Carlo engine is the verification oracle for :mod:`repro.analytic`:
this module replays the paper's figure grids — Figure 4's exponential rate
ratios, Figure 6's production fits × partial quorums, and Figure 7's
replication-factor sweep — through both the analytic predictor and
:class:`repro.montecarlo.engine.SweepEngine`, and reports the per-probe
consistency-probability disagreement.  The WAN environment is excluded by
construction: its per-replica latency model breaks the i.i.d.-replica
assumption the analytic decomposition rests on, so Monte Carlo remains
authoritative there.

Two error views are reported, in the style of the PBS authors' own
model-vs-empirical comparison:

* ``absolute_error`` — ``|P_analytic − P_montecarlo|`` per probe; the
  acceptance bar for this repository is a maximum of 1% (dominated by Monte
  Carlo noise at the default trial counts, not by discretisation).
* ``ratio`` — ``P_analytic / P_montecarlo`` per probe (``1.0`` when both are
  zero), the multiplicative view used for staleness-style ratio artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analytic.predictor import AnalyticPredictor
from repro.core.quorum import ReplicaConfig
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions, lnkd_disk, lnkd_ssd, ymmr
from repro.montecarlo.engine import SweepEngine

__all__ = [
    "ValidationCase",
    "ValidationReport",
    "default_validation_cases",
    "validate_against_montecarlo",
]

#: Probe times (ms) used when a case does not specify its own.
_DEFAULT_TIMES_MS: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


@dataclass(frozen=True)
class ValidationCase:
    """One latency environment plus the configurations to compare on it."""

    label: str
    distributions: WARSDistributions
    configs: tuple[ReplicaConfig, ...]
    times_ms: tuple[float, ...] = _DEFAULT_TIMES_MS


@dataclass(frozen=True)
class ValidationReport:
    """Per-probe disagreement between the analytic and Monte Carlo paths.

    ``rows`` holds one mapping per (case, configuration, probe time) with the
    two probabilities, their absolute difference and their ratio.  The
    summary properties aggregate over all rows.
    """

    rows: tuple[dict[str, object], ...]
    trials: int

    @property
    def max_absolute_error(self) -> float:
        """Largest ``|P_analytic − P_montecarlo|`` over every probe."""
        return max(float(row["absolute_error"]) for row in self.rows)

    @property
    def mean_absolute_error(self) -> float:
        """Mean ``|P_analytic − P_montecarlo|`` over every probe."""
        return float(np.mean([float(row["absolute_error"]) for row in self.rows]))

    @property
    def worst_row(self) -> dict[str, object]:
        """The probe with the largest absolute disagreement."""
        return max(self.rows, key=lambda row: float(row["absolute_error"]))

    def ratio_artifact(self) -> dict[str, object]:
        """Summary mapping in the style of a model-vs-empirical ratio table."""
        ratios = np.array([float(row["ratio"]) for row in self.rows])
        return {
            "probes": len(self.rows),
            "trials_per_case": self.trials,
            "max_absolute_error": self.max_absolute_error,
            "mean_absolute_error": self.mean_absolute_error,
            "min_ratio": float(ratios.min()),
            "max_ratio": float(ratios.max()),
            "worst_probe": dict(self.worst_row),
        }


def default_validation_cases(
    figure4_rates: Sequence[float] = (4.0, 1.0, 0.1),
    replication_factors: Sequence[int] = (2, 3, 5),
) -> tuple[ValidationCase, ...]:
    """The figure-4/6/7 validation grid, minus the (per-replica) WAN model.

    Figure 4: exponential write rates against exponential A=R=S (N=3, R=W=1).
    Figure 6: the three production fits under the paper's partial quorums.
    Figure 7: LNKD-SSD at increasing replication factors (R=W=1).
    """
    ars = ExponentialLatency(rate=1.0)
    figure4 = tuple(
        ValidationCase(
            label=f"figure4-rate-{rate:g}",
            distributions=WARSDistributions.write_specialised(
                write=ExponentialLatency(rate=rate), other=ars, name=f"exp-{rate:g}"
            ),
            configs=(ReplicaConfig(n=3, r=1, w=1),),
            times_ms=(0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 40.0, 65.0, 100.0),
        )
        for rate in figure4_rates
    )
    partial_quorums = (
        ReplicaConfig(n=3, r=1, w=1),
        ReplicaConfig(n=3, r=1, w=2),
        ReplicaConfig(n=3, r=2, w=1),
    )
    figure6 = tuple(
        ValidationCase(
            label=f"figure6-{name}",
            distributions=fit,
            configs=partial_quorums,
            times_ms=(0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0),
        )
        for name, fit in (
            ("LNKD-SSD", lnkd_ssd()),
            ("LNKD-DISK", lnkd_disk()),
            ("YMMR", ymmr()),
        )
    )
    figure7 = (
        ValidationCase(
            label="figure7-LNKD-SSD",
            distributions=lnkd_ssd(),
            configs=tuple(
                ReplicaConfig(n=n, r=1, w=1) for n in replication_factors
            ),
            times_ms=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0),
        ),
    )
    return figure4 + figure6 + figure7


def validate_against_montecarlo(
    cases: Sequence[ValidationCase] | None = None,
    trials: int = 50_000,
    rng: int | None = 0,
    sweep_mode: bool = False,
    workers: int = 1,
) -> ValidationReport:
    """Compare analytic and Monte Carlo consistency probabilities per probe.

    With ``sweep_mode=False`` (default) the analytic side uses the exact
    full-resolution point queries; with ``sweep_mode=True`` it uses the
    atom-compressed fast path exercised by
    :meth:`repro.analytic.predictor.AnalyticPredictor.sweep`, bounding the
    additional quadrature error of the benchmarked path.  ``workers`` shards
    the Monte Carlo oracle across processes (result-invariant).
    """
    if cases is None:
        cases = default_validation_cases()
    rows: list[dict[str, object]] = []
    for case in cases:
        predictor = AnalyticPredictor(distributions=case.distributions)
        engine = SweepEngine(
            case.distributions, case.configs, times_ms=case.times_ms, workers=workers
        )
        mc = engine.run(trials, rng)
        if sweep_mode:
            analytic_results = predictor.sweep(case.configs, times_ms=case.times_ms)
        else:
            analytic_results = [predictor.result(config) for config in case.configs]
        for config, analytic in zip(case.configs, analytic_results):
            mc_result = mc.for_config(config)
            if sweep_mode:
                analytic_curve = dict(analytic.curve)
            else:
                analytic_curve = dict(analytic.consistency_curve(case.times_ms))
            for t_ms in case.times_ms:
                p_analytic = float(analytic_curve[t_ms])
                p_mc = float(mc_result.consistency_probability(t_ms))
                ratio = p_analytic / p_mc if p_mc > 0 else (1.0 if p_analytic == 0 else float("inf"))
                rows.append(
                    {
                        "case": case.label,
                        "config": str(config),
                        "t_ms": float(t_ms),
                        "analytic": p_analytic,
                        "montecarlo": p_mc,
                        "absolute_error": abs(p_analytic - p_mc),
                        "ratio": ratio,
                    }
                )
    return ValidationReport(rows=tuple(rows), trials=trials)
