"""Analytic (closed-form / numerical-convolution) WARS predictor.

This package answers the same questions as :mod:`repro.montecarlo` —
``P(consistent at t)``, t-visibility, and operation-latency percentiles for a
Dynamo-style ``(N, R, W)`` configuration — without sampling.  The key result
(derived in ``docs/architecture.md`` §7) is an *exact* factorisation of the
WARS staleness probability into two independent pieces:

* the commit-time contribution of the replicas that do **not** serve the read
  (an order statistic of per-replica ``W + A`` sums), and
* the probability that every replica in the read quorum is "fresh-blind"
  (an order-statistics integral over the joint law of ``R + S`` and
  ``W − R`` per replica).

Both pieces reduce to one-dimensional quadratures over tabulated leg
distributions (:class:`repro.analytic.grid.LatencyGrid`), so a full
figure-4-style sweep answers in about a millisecond and a single point query
in microseconds.  The Monte Carlo engine remains the verification oracle:
:mod:`repro.analytic.validation` replays the paper's figure grids through
both paths and reports the maximum absolute disagreement.

The analytic path requires i.i.d. replicas, so the paper's WAN scenario
(per-replica latencies) stays Monte Carlo only.
"""

from repro.analytic.grid import LatencyGrid, convolve_grids, quantile_ladder
from repro.analytic.orderstats import order_statistic_cdf
from repro.analytic.predictor import (
    AnalyticConfigResult,
    AnalyticEnvironment,
    AnalyticPredictor,
)
from repro.analytic.validation import (
    ValidationCase,
    ValidationReport,
    validate_against_montecarlo,
)

__all__ = [
    "LatencyGrid",
    "quantile_ladder",
    "convolve_grids",
    "order_statistic_cdf",
    "AnalyticEnvironment",
    "AnalyticConfigResult",
    "AnalyticPredictor",
    "ValidationCase",
    "ValidationReport",
    "validate_against_montecarlo",
]
