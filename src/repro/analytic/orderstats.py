"""Order-statistics combinators for quorum latency and staleness.

A quorum operation completes when the ``k``-th fastest of ``n`` i.i.d.
replicas responds, so every latency question about a Dynamo-style
configuration is a question about order statistics.  For i.i.d. draws the
transform is the classical binomial identity

    P(X_(k) <= x) = sum_{j=k}^{n} C(n, j) F(x)^j (1 - F(x))^(n-j),

which :func:`order_statistic_cdf` applies pointwise to a tabulated CDF.  The
hypergeometric quorum-overlap identities property-tested in
``tests/property/test_property_closed_forms.py`` are the combinatorial
independence facts this transform relies on.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["order_statistic_cdf"]


def order_statistic_cdf(cdf: np.ndarray, n: int, k: int) -> np.ndarray:
    """CDF of the ``k``-th smallest of ``n`` i.i.d. draws, given the parent CDF.

    ``cdf`` is an array of parent-CDF values ``F(x)`` (any shape); the result
    has the same shape.  Powers are built by repeated multiplication — ``n``
    never exceeds a few tens of replicas, and integer powers keep the
    evaluation exact at ``F = 0`` and ``F = 1``.
    """
    if not 1 <= k <= n:
        raise ConfigurationError(f"order statistic k must be in [1, {n}], got {k}")
    values = np.asarray(cdf, dtype=float)
    survival = 1.0 - values
    f_pow = values**k
    total = comb(n, k) * f_pow * survival ** (n - k)
    for j in range(k + 1, n + 1):
        f_pow = f_pow * values
        total = total + comb(n, j) * f_pow * survival ** (n - j)
    return np.clip(total, 0.0, 1.0)
