"""Figure 6: t-visibility for the production latency fits.

For each production environment and the partial-quorum configurations
(R=1,W=1), (R=1,W=2), (R=2,W=1) at N=3, report the probability of consistency
over a grid of times since commit — the series plotted in Figure 6 — plus the
commit-time probability and 99.9% t-visibility quoted in §5.6.
"""

from __future__ import annotations

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register
from repro.latency.production import lnkd_disk, lnkd_ssd, wan, ymmr
from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

__all__ = ["run_figure6", "FIGURE6_CONFIGS"]

#: The (R, W) series shown in Figure 6.
FIGURE6_CONFIGS: tuple[ReplicaConfig, ...] = (
    ReplicaConfig(n=3, r=1, w=1),
    ReplicaConfig(n=3, r=1, w=2),
    ReplicaConfig(n=3, r=2, w=1),
)

_TIMES_MS: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


@register("figure6", "Figure 6: t-visibility for production fits, (R,W) in {(1,1),(1,2),(2,1)}")
def run_figure6(
    trials: int = 100_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Consistency-vs-t series for each production environment and partial quorum.

    ``probe_resolution_ms`` enables adaptive refinement of each series'
    99.9% t-visibility crossing on top of the figure's fixed grid.
    """
    environments = {
        "LNKD-SSD": lnkd_ssd(),
        "LNKD-DISK": lnkd_disk(),
        "YMMR": ymmr(),
        "WAN": wan(),
    }
    rows = []
    for name, distributions in environments.items():
        engine = SweepEngine(
            distributions,
            FIGURE6_CONFIGS,
            times_ms=_TIMES_MS,
            chunk_size=chunk_size,
            tolerance=tolerance,
            min_trials=min_trials_for_quantile(0.999),
            workers=workers,
            target_probability=0.999,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        for summary in engine.run(trials, rng):
            row: dict[str, object] = {
                "environment": name,
                "config": summary.config.label(),
                "p_at_commit": summary.probability_never_stale(),
            }
            for t_ms in _TIMES_MS:
                row[f"p@t={t_ms:g}ms"] = summary.consistency_probability(t_ms)
            row["t_visibility_99.9_ms"] = summary.t_visibility(0.999)
            rows.append(row)
    return ExperimentResult(
        experiment_id="figure6",
        title="t-visibility for production operation latencies",
        paper_artifact="Figure 6 / Section 5.6",
        rows=rows,
        notes=(
            f"{trials} Monte Carlo trials per environment/configuration; N=3.",
            "Expected shapes: LNKD-SSD ~97% consistent immediately after commit and >99.9% "
            "within a few ms; LNKD-DISK ~44% at commit; YMMR's long write tail delays 99.9% "
            "consistency to beyond one second; WAN stays low until ~75 ms have passed.",
        ),
    )
