"""§3.3 load and capacity bounds under staleness tolerance."""

from __future__ import annotations

import numpy as np

from repro.core.load import LoadModel, epsilon_intersecting_load
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_load_bounds"]


@register("section3-load", "§3.3 quorum-system load bounds vs staleness tolerance k")
def run_load_bounds(
    trials: int = 0, rng: np.random.Generator | int | None = None
) -> ExperimentResult:
    """Load lower bounds for ε-intersecting vs k-staleness-tolerant quorum systems.

    ``trials`` and ``rng`` are accepted for registry uniformity but unused:
    the bounds are closed-form.
    """
    rows = []
    for n in (3, 10, 100):
        for p in (0.001, 0.01, 0.1):
            model = LoadModel(n=n, p=p)
            row: dict[str, object] = {
                "n": n,
                "p_inconsistency": p,
                "epsilon_intersecting_load": epsilon_intersecting_load(n, p),
            }
            for k in (1, 2, 5, 10):
                row[f"load_k={k}"] = model.staleness_tolerant_load(k)
            rows.append(row)
    return ExperimentResult(
        experiment_id="section3-load",
        title="Quorum-system load under k-staleness tolerance",
        paper_artifact="Section 3.3",
        rows=rows,
        notes=(
            "k-staleness load bound: (1 - p)^(1/(2k)) / sqrt(N), as printed in the paper.",
            "The strict epsilon-intersecting bound (1 - sqrt(eps)) / sqrt(N) is shown for contrast.",
        ),
    )
