"""Figure 4: t-visibility under exponential latency distributions.

The paper sweeps exponentially distributed write latencies ``W`` against fixed
``A = R = S`` (exponential with mean 1 ms) for N=3, R=W=1, and reports the
probability of consistency as a function of ``t``.  The headline shape: when
``W`` is fast relative to ``A=R=S`` consistency is high immediately after
commit; when ``W`` is slow (long write tail) the probability starts low
(~40%) and takes tens of milliseconds to approach 1.

This module also covers the §5.3 fixed-mean / variable-variance observation
using uniform and normal write distributions.
"""

from __future__ import annotations

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register
from repro.latency.distributions import ExponentialLatency, NormalLatency, UniformLatency
from repro.latency.production import WARSDistributions
from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

__all__ = ["run_figure4", "run_write_variance_sweep", "FIGURE4_RATIOS"]

#: (label, W rate λ) pairs from Figure 4; A=R=S always have λ=1 (mean 1 ms).
FIGURE4_RATIOS: tuple[tuple[str, float], ...] = (
    ("1:4", 4.0),
    ("1:2", 2.0),
    ("1:1", 1.0),
    ("1:0.50", 0.5),
    ("1:0.20", 0.2),
    ("1:0.10", 0.1),
)

_TIMES_MS: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 40.0, 65.0, 100.0)


@register("figure4", "Figure 4: t-visibility with exponential W and A=R=S (N=3, R=W=1)")
def run_figure4(
    trials: int = 100_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Probability of consistency vs t for each W:ARS rate ratio in Figure 4.

    ``rng`` is forwarded to the sweep engine verbatim, so integer seeds give
    chunk-size-invariant results.  ``probe_resolution_ms`` enables adaptive
    probe-grid refinement around each ratio's 99.9% crossing, sharpening the
    ``t_visibility_99.9_ms`` column without densifying the figure's grid.
    """
    config = ReplicaConfig(n=3, r=1, w=1)
    ars = ExponentialLatency(rate=1.0)
    rows = []
    for label, write_rate in FIGURE4_RATIOS:
        distributions = WARSDistributions.write_specialised(
            write=ExponentialLatency(rate=write_rate), other=ars, name=f"exp-{label}"
        )
        engine = SweepEngine(
            distributions,
            (config,),
            times_ms=_TIMES_MS,
            chunk_size=chunk_size,
            tolerance=tolerance,
            min_trials=min_trials_for_quantile(0.999),
            workers=workers,
            target_probability=0.999,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        summary = engine.run(trials, rng).results[0]
        row: dict[str, object] = {"w_to_ars_ratio": label, "w_mean_ms": 1.0 / write_rate}
        for t_ms in _TIMES_MS:
            row[f"p@t={t_ms:g}ms"] = summary.consistency_probability(t_ms)
        row["t_visibility_99.9_ms"] = summary.t_visibility(0.999)
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure4",
        title="t-visibility under exponential latency distributions",
        paper_artifact="Figure 4 / Section 5.3",
        rows=rows,
        notes=(
            f"{trials} Monte Carlo trials per ratio; A=R=S exponential with mean 1 ms.",
            "Slower/longer-tailed writes (ratios 1:0.20, 1:0.10) start near 40% consistency "
            "and need tens of ms to converge, matching the paper.",
        ),
    )


@register(
    "section5.3-variance",
    "§5.3: fixed-mean, variable-variance write distributions (variance matters more than mean)",
)
def run_write_variance_sweep(
    trials: int = 100_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Hold the mean of W fixed and vary its variance using uniform and normal shapes."""
    config = ReplicaConfig(n=3, r=1, w=1)
    ars = ExponentialLatency(rate=1.0)
    mean_ms = 5.0
    write_distributions = [
        ("constant-ish uniform", UniformLatency(low=4.5, high=5.5)),
        ("wide uniform", UniformLatency(low=0.0, high=10.0)),
        ("normal sd=0.5", NormalLatency(mu=mean_ms, sigma=0.5)),
        ("normal sd=2.5", NormalLatency(mu=mean_ms, sigma=2.5)),
        ("normal sd=5", NormalLatency(mu=mean_ms, sigma=5.0)),
        ("exponential mean=5", ExponentialLatency.from_mean(mean_ms)),
    ]
    rows = []
    for label, write in write_distributions:
        distributions = WARSDistributions.write_specialised(write=write, other=ars)
        engine = SweepEngine(
            distributions,
            (config,),
            # The sweep quotes a 99.9% crossing that can sit well past 5 ms;
            # give the adaptive grid headroom to bracket it.
            times_ms=(0.0, 5.0, 50.0) if probe_resolution_ms is not None else (0.0, 5.0),
            chunk_size=chunk_size,
            tolerance=tolerance,
            min_trials=min_trials_for_quantile(0.999),
            workers=workers,
            target_probability=0.999,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        summary = engine.run(trials, rng).results[0]
        rows.append(
            {
                "write_distribution": label,
                "w_mean_ms": write.mean(),
                "w_variance": write.variance(),
                "p_consistent_at_commit": summary.probability_never_stale(),
                "p_consistent_at_5ms": summary.consistency_probability(5.0),
                "t_visibility_99.9_ms": summary.t_visibility(0.999),
            }
        )
    return ExperimentResult(
        experiment_id="section5.3-variance",
        title="Write-latency variance vs staleness (fixed mean)",
        paper_artifact="Section 5.3 (discussion around Figure 4)",
        rows=rows,
        notes=(
            "With the write mean fixed at 5 ms, higher write variance lowers the probability "
            "of consistency and lengthens t-visibility, as observed in the paper.",
        ),
    )
