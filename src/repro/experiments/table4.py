"""Table 4: the latency / t-visibility trade-off across (R, W) configurations.

For every production environment and every (R, W) combination the paper lists,
report the 99.9th-percentile read and write latency and the t needed for a
99.9% probability of consistent reads.  The headline observations:

* strict quorums (rows with t = 0) pay large tail-latency penalties,
  especially under YMMR and WAN;
* R=W=1 minimises latency at the cost of a long inconsistency window
  (~1.4 s under YMMR);
* intermediate partial quorums (e.g. R=2, W=1 under YMMR) capture most of the
  latency win while shrinking the window dramatically.
"""

from __future__ import annotations

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register
from repro.latency.production import lnkd_disk, lnkd_ssd, wan, ymmr
from repro.montecarlo.tvisibility import t_visibility_table

__all__ = ["run_table4", "TABLE4_CONFIGS"]

#: The (R, W) rows of Table 4, N=3.
TABLE4_CONFIGS: tuple[ReplicaConfig, ...] = (
    ReplicaConfig(n=3, r=1, w=1),
    ReplicaConfig(n=3, r=1, w=2),
    ReplicaConfig(n=3, r=2, w=1),
    ReplicaConfig(n=3, r=2, w=2),
    ReplicaConfig(n=3, r=3, w=1),
    ReplicaConfig(n=3, r=1, w=3),
)


@register("table4", "Table 4: 99.9% t-visibility and 99.9th-percentile latency across (R, W)")
def run_table4(
    trials: int = 100_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Reproduce the Table 4 grid for all four production environments.

    ``probe_resolution_ms`` enables adaptive probe-grid refinement: the
    headline ``t_visibility_99.9_ms`` column then comes from exact bracketing
    counts at that resolution instead of the threshold-histogram sketch.
    """
    environments = {
        "LNKD-SSD": lnkd_ssd(),
        "LNKD-DISK": lnkd_disk(),
        "YMMR": ymmr(),
        "WAN": wan(),
    }
    raw_rows = t_visibility_table(
        distributions_by_name=environments,
        configs=TABLE4_CONFIGS,
        target_probability=0.999,
        latency_percentile=99.9,
        trials=trials,
        rng=rng,
        chunk_size=chunk_size,
        tolerance=tolerance,
        workers=workers,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
    )
    rows = []
    for raw in raw_rows:
        config: ReplicaConfig = raw["config"]  # type: ignore[assignment]
        strict = config.is_strict
        rows.append(
            {
                "environment": raw["environment"],
                "config": config.label(),
                "strict_quorum": strict,
                "read_p99.9_ms": raw["read_latency_ms"],
                "write_p99.9_ms": raw["write_latency_ms"],
                "combined_p99.9_ms": raw["read_latency_ms"] + raw["write_latency_ms"],  # type: ignore[operator]
                "t_visibility_99.9_ms": 0.0 if strict else raw["t_visibility_ms"],
            }
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Latency vs t-visibility trade-off",
        paper_artifact="Table 4 / Section 5.8",
        rows=rows,
        notes=(
            f"{trials} Monte Carlo trials per cell; N=3; strict quorums report t = 0 by "
            "construction.",
            "Expected shapes: YMMR R=W=1 has ~16 ms combined tail latency but ~1.4 s of "
            "inconsistency window; R=2, W=1 cuts the window to a few hundred ms while "
            "remaining far faster than the cheapest strict quorum.",
        ),
    )
