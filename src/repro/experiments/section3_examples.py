"""§3.1 and §3.2 closed-form examples: k-staleness and monotonic reads.

Reproduces the in-text probability tables of §3.1 (the N=3 configurations
evaluated at k ∈ {1, 2, 3, 5, 10}) and adds the monotonic-reads special case
over a sweep of write/read rate ratios.
"""

from __future__ import annotations

import numpy as np

from repro.core.kstaleness import KStalenessModel
from repro.core.monotonic import MonotonicReadsModel
from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_kstaleness_examples", "run_monotonic_examples"]

_CONFIGS = (
    ReplicaConfig(n=3, r=1, w=1),
    ReplicaConfig(n=3, r=1, w=2),
    ReplicaConfig(n=3, r=2, w=1),
    ReplicaConfig(n=3, r=2, w=2),
    ReplicaConfig(n=2, r=1, w=1),
)
_KS = (1, 2, 3, 5, 10)


@register("section3-kstaleness", "§3.1 closed-form k-staleness probabilities")
def run_kstaleness_examples(
    trials: int = 0, rng: np.random.Generator | int | None = None
) -> ExperimentResult:
    """Closed-form P(read within k versions) for the paper's example configurations.

    ``trials`` and ``rng`` are accepted for registry uniformity but unused:
    the quantities are exact.
    """
    rows = []
    for config in _CONFIGS:
        model = KStalenessModel(config)
        row: dict[str, object] = {
            "config": config.label(),
            "p_nonintersection": model.p_nonintersection,
        }
        for k in _KS:
            row[f"p_within_{k}"] = model.consistency(k)
        row["expected_lag_versions"] = model.expected_staleness_versions()
        rows.append(row)
    return ExperimentResult(
        experiment_id="section3-kstaleness",
        title="Closed-form PBS k-staleness",
        paper_artifact="Section 3.1 in-text examples",
        rows=rows,
        notes=(
            "Exact evaluation of Equations 1-2; no Monte Carlo involved.",
            "N=3, R=W=1 gives 0.704 within 3 versions and 0.983 within 10, matching the paper.",
        ),
    )


@register("section3-monotonic", "§3.2 monotonic-reads probabilities vs write/read rate ratio")
def run_monotonic_examples(
    trials: int = 0, rng: np.random.Generator | int | None = None
) -> ExperimentResult:
    """Equation 3 over a sweep of γ_gw/γ_cr ratios for the partial-quorum configs."""
    ratios = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)
    rows = []
    for config in (_CONFIGS[0], _CONFIGS[1], _CONFIGS[2]):
        for ratio in ratios:
            model = MonotonicReadsModel(
                config=config, global_write_rate=ratio, client_read_rate=1.0
            )
            rows.append(
                {
                    "config": config.label(),
                    "writes_per_read": ratio,
                    "p_monotonic": model.probability(),
                    "p_strict_monotonic": model.strict_probability(),
                }
            )
    return ExperimentResult(
        experiment_id="section3-monotonic",
        title="PBS monotonic reads",
        paper_artifact="Section 3.2 (Figure 2 semantics)",
        rows=rows,
        notes=(
            "Monotonic reads is k-staleness with k = 1 + writes-per-read (Equation 3).",
        ),
    )
