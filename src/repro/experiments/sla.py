"""§6 SLA-driven replication configuration.

Demonstrates the paper's "Latency/Staleness SLAs" discussion: exhaustively
evaluate every (N, R, W) configuration against a latency + staleness +
durability target and report which configuration an operator should deploy.
"""

from __future__ import annotations

import numpy as np

from repro.core.sla import SLAOptimizer, SLATarget
from repro.experiments.registry import ExperimentResult, register
from repro.latency.production import lnkd_disk, ymmr

__all__ = ["run_sla_search"]


@register("sla", "§6: SLA-driven (N, R, W) configuration search")
def run_sla_search(
    trials: int = 30_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Search (N, R, W) under two representative SLAs for LNKD-DISK and YMMR.

    Each scenario's candidate set is evaluated against shared sample batches
    (one per replication factor) via the sweep engine; ``workers`` shards
    those sweeps across processes without changing which configuration wins.
    ``probe_resolution_ms`` refines each candidate's t-visibility crossing —
    the number every feasibility verdict hinges on — to that resolution.
    """
    scenarios = [
        (
            "LNKD-DISK: p99.9 latency <= 25 ms, 99.9% consistent within 50 ms, W >= 1",
            lnkd_disk(),
            SLATarget(
                read_latency_ms=25.0,
                write_latency_ms=25.0,
                t_visibility_ms=50.0,
                min_write_quorum=1,
                min_replication=3,
            ),
        ),
        (
            "YMMR: p99.9 latency <= 60 ms, 99.9% consistent within 250 ms, W >= 1",
            ymmr(),
            SLATarget(
                read_latency_ms=60.0,
                write_latency_ms=60.0,
                t_visibility_ms=250.0,
                min_write_quorum=1,
                min_replication=3,
            ),
        ),
        (
            "YMMR durability-first: W >= 2, 99.9% consistent within 100 ms",
            ymmr(),
            SLATarget(
                t_visibility_ms=100.0,
                min_write_quorum=2,
                min_replication=3,
            ),
        ),
    ]
    rows = []
    for label, distributions, target in scenarios:
        optimizer = SLAOptimizer(
            distributions=distributions,
            replication_factors=(3,),
            trials=trials,
            rng=rng,
            chunk_size=chunk_size,
            tolerance=tolerance,
            workers=workers,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        evaluations = optimizer.evaluate_all(target)
        best = optimizer.best(target)
        feasible = sum(1 for evaluation in evaluations if evaluation.meets_target)
        rows.append(
            {
                "scenario": label,
                "configs_evaluated": len(evaluations),
                "configs_feasible": feasible,
                "best_config": best.config.label() if best else "none",
                "best_read_p99.9_ms": best.read_latency_ms if best else float("nan"),
                "best_write_p99.9_ms": best.write_latency_ms if best else float("nan"),
                "best_t_visibility_ms": best.t_visibility_ms if best else float("nan"),
            }
        )
    return ExperimentResult(
        experiment_id="sla",
        title="SLA-driven replication configuration",
        paper_artifact="Section 6 (Latency/Staleness SLAs)",
        rows=rows,
        notes=(
            "The search space is all (R, W) pairs at the allowed replication factors "
            "(O(N^2) per factor, as the paper notes).",
        ),
    )
