"""Experiments: one module per table/figure in the paper's evaluation.

Use the registry to discover and run them::

    from repro.experiments import list_experiments, run_experiment
    for experiment_id, description in list_experiments():
        print(experiment_id, "-", description)
    result = run_experiment("figure6", trials=50_000, rng=0)
    print(result.to_text())
"""

from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = ["ExperimentResult", "get_experiment", "list_experiments", "run_experiment"]
