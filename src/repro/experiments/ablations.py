"""Ablation experiments for the modelling choices the paper (and DESIGN.md) call out.

These do not reproduce a numbered figure; they quantify assumptions:

* ``ablation-read-repair`` — the paper's conservative model ignores read repair
  (§4.2).  How much staleness does read repair actually remove on the cluster?
* ``ablation-read-fanout`` — Dynamo sends reads to all N replicas, Voldemort to
  only R (§2.3).  Staleness should be unaffected; replica read load is not.
* ``ablation-failures`` — §6 "Failure modes": fail-stop crashes turn into
  latency/staleness tail mass.  Measure t-visibility with and without a crashed
  replica.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.staleness import measured_t_visibility, observe_staleness
from repro.cluster.client import WorkloadRunner
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register
from repro.latency.base import as_rng
from repro.latency.distributions import ConstantLatency, ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.montecarlo.engine import SweepEngine
from repro.workloads.operations import validation_workload

__all__ = ["run_read_repair_ablation", "run_fanout_ablation", "run_failure_ablation"]


def _wars_predicted_t_visibility(
    config: ReplicaConfig,
    distributions: WARSDistributions,
    target: float = 0.90,
    trials: int = 20_000,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> float:
    """WARS sweep-engine prediction to place next to the measured cluster numbers.

    The ablations quantify departures from the paper's conservative model, so
    each table carries the model's own t-visibility prediction as the
    reference column.  A fixed seed keeps the prediction independent of the
    cluster workload's random stream.  By default the prediction retains raw
    samples (exact order statistics); with ``probe_resolution_ms`` it streams
    through the adaptive probe grid instead — bounded memory, crossing
    bracketed to the requested resolution, and shardable across ``workers``.
    """
    if probe_resolution_ms is not None:
        from repro.montecarlo.engine import SAMPLE_BLOCK

        # Refinement advances one subdivision round per few chunk
        # boundaries, so the adaptive reference needs block-sized chunks and
        # enough trials to complete its rounds — the ablations' small
        # ``trials`` knob sizes the cluster workload, not this prediction.
        engine = SweepEngine(
            distributions,
            (config,),
            chunk_size=SAMPLE_BLOCK,
            workers=workers,
            target_probability=target,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        summary = engine.run(max(trials, 16 * SAMPLE_BLOCK), rng=0).results[0]
        return summary.t_visibility(target)
    engine = SweepEngine(
        distributions,
        (config,),
        keep_samples=True,
        workers=workers,
        kernel_backend=kernel_backend,
    )
    return engine.run(trials, rng=0).results[0].t_visibility(target)


def _slow_write_distributions(write_mean_ms: float = 50.0) -> WARSDistributions:
    """Slow, long-tailed writes with fast reads: maximises observable staleness."""
    return WARSDistributions(
        w=ExponentialLatency.from_mean(write_mean_ms),
        a=ConstantLatency(0.5),
        r=ConstantLatency(0.5),
        s=ConstantLatency(0.5),
        name=f"exp W={write_mean_ms}ms, A=R=S=0.5ms",
    )


def _run_cluster_workload(
    config: ReplicaConfig,
    distributions: WARSDistributions,
    writes: int,
    rng,
    read_repair: bool = False,
    read_fanout_all: bool = True,
    crash_replica: bool = False,
    draw_batch_size: int | None = None,
) -> dict[str, float]:
    """Run the single-key overwrite workload and summarise staleness and load."""
    cluster_kwargs: dict = {}
    if draw_batch_size is not None:
        cluster_kwargs["draw_batch_size"] = draw_batch_size
    cluster = DynamoCluster(
        config=config,
        distributions=distributions,
        read_repair=read_repair,
        read_fanout_all=read_fanout_all,
        rng=rng,
        **cluster_kwargs,
    )
    key = "ablation-key"
    if crash_replica:
        # Crash one replica of the key for the whole run; with R=W=1 the
        # remaining two replicas keep serving.
        cluster.replicas_for(key)[-1].crash()
    operations = validation_workload(
        key=key, writes=writes, write_interval_ms=40.0, read_offsets_ms=(1.0, 5.0, 15.0)
    )
    WorkloadRunner(cluster).run(operations)
    observations = observe_staleness(cluster.trace_log, key=key)
    staleness_rate = 1.0 - float(np.mean([obs.consistent for obs in observations]))
    reads_served_per_replica = [node.served_reads for node in cluster.replicas_for(key)]
    return {
        "observations": float(len(observations)),
        "staleness_rate": staleness_rate,
        "t_visibility_90_ms": measured_t_visibility(observations, 0.90),
        "repairs_sent": float(sum(c.repairs_sent for c in cluster.coordinators)),
        "max_replica_read_load": float(max(reads_served_per_replica)),
        "total_replica_read_load": float(sum(reads_served_per_replica)),
    }


@register("ablation-read-repair", "Ablation: staleness with and without read repair (§4.2)")
def run_read_repair_ablation(
    trials: int = 400,
    rng: np.random.Generator | int | None = 0,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
    draw_batch_size: int | None = None,
) -> ExperimentResult:
    """Compare observed staleness with read repair disabled (paper's model) vs enabled."""
    generator = as_rng(rng)
    config = ReplicaConfig(3, 1, 1)
    distributions = _slow_write_distributions()
    predicted = _wars_predicted_t_visibility(
        config,
        distributions,
        workers=workers,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
    )
    rows = []
    for label, read_repair in (("disabled (paper model)", False), ("enabled", True)):
        summary = _run_cluster_workload(
            config,
            distributions,
            writes=trials,
            rng=generator,
            read_repair=read_repair,
            draw_batch_size=draw_batch_size,
        )
        rows.append(
            {"read_repair": label, **summary, "wars_predicted_t_visibility_90_ms": predicted}
        )
    return ExperimentResult(
        experiment_id="ablation-read-repair",
        title="Read-repair ablation",
        paper_artifact="Section 4.2 (conservative anti-entropy assumptions)",
        rows=rows,
        notes=(
            "The WARS model deliberately excludes read repair; enabling it on the cluster "
            "shows how much extra anti-entropy tightens staleness beyond the prediction.",
        ),
    )


@register(
    "ablation-read-fanout",
    "Ablation: Dynamo-style (N) vs Voldemort-style (R) read fan-out (§2.3)",
)
def run_fanout_ablation(
    trials: int = 400,
    rng: np.random.Generator | int | None = 0,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
    draw_batch_size: int | None = None,
) -> ExperimentResult:
    """Staleness is unchanged by fan-out choice; per-replica read load is not."""
    generator = as_rng(rng)
    config = ReplicaConfig(3, 1, 1)
    distributions = _slow_write_distributions()
    predicted = _wars_predicted_t_visibility(
        config,
        distributions,
        workers=workers,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
    )
    rows = []
    for label, fanout_all in (("all N replicas (Dynamo)", True), ("only R replicas (Voldemort)", False)):
        summary = _run_cluster_workload(
            config,
            distributions,
            writes=trials,
            rng=generator,
            read_fanout_all=fanout_all,
            draw_batch_size=draw_batch_size,
        )
        rows.append(
            {"read_fanout": label, **summary, "wars_predicted_t_visibility_90_ms": predicted}
        )
    return ExperimentResult(
        experiment_id="ablation-read-fanout",
        title="Read fan-out ablation",
        paper_artifact="Section 2.3 (Voldemort sends reads to R of N replicas)",
        rows=rows,
        notes=(
            "Coordinators only wait for R responses either way, so staleness probabilities "
            "match; sending reads to fewer replicas lowers per-replica read load.",
        ),
    )


@register("ablation-failures", "Ablation: fail-stop replica failure vs steady state (§6)")
def run_failure_ablation(
    trials: int = 400,
    rng: np.random.Generator | int | None = 0,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
    draw_batch_size: int | None = None,
) -> ExperimentResult:
    """A crashed replica effectively shrinks N, changing both staleness and availability."""
    generator = as_rng(rng)
    config = ReplicaConfig(3, 1, 1)
    distributions = _slow_write_distributions()
    # The model's steady-state reference; a crashed replica shrinks the
    # effective N, which the two-replica prediction below captures.
    predicted_steady = _wars_predicted_t_visibility(
        config,
        distributions,
        workers=workers,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
    )
    predicted_degraded = _wars_predicted_t_visibility(
        ReplicaConfig(2, 1, 1),
        distributions,
        workers=workers,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
    )
    rows = []
    for label, crash in (("steady state", False), ("one replica crashed", True)):
        summary = _run_cluster_workload(
            config,
            distributions,
            writes=trials,
            rng=generator,
            crash_replica=crash,
            draw_batch_size=draw_batch_size,
        )
        rows.append(
            {
                "scenario": label,
                **summary,
                "wars_predicted_t_visibility_90_ms": (
                    predicted_degraded if crash else predicted_steady
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ablation-failures",
        title="Failure-mode ablation",
        paper_artifact="Section 6 (Failure modes)",
        rows=rows,
        notes=(
            "With independent fail-stop failures, an N-replica set with F failures behaves "
            "like an (N - F)-replica set; per Figure 7, fewer replicas means a read quorum "
            "of one is more likely to land on a replica that already has the write.",
        ),
    )
