"""Hostile-conditions scenario experiments.

Three registered experiments expose the scenario matrix
(:mod:`repro.scenarios`) and the fault-injection closed loop
(:mod:`repro.faults`) through the experiment registry and the CLI:

``scenario``
    One scenario's divergence report (``pbs-repro run scenario --name
    partition``); defaults to the benign baseline.
``scenarios``
    The full matrix — one row per registered scenario — which is also the
    shape exported to ``BENCH_sweep.json`` by ``tools/bench_to_json.py``.
``recovery``
    The adaptive-recovery closed loop (``pbs-repro run recovery --name
    gray-failure``): harvest a hostile run's per-leg observations, stream
    them into a serving tenant in timed windows, refit, and report the
    divergence-vs-window recovery curve.

``trials`` is the number of simulated *writes* per scenario (the paper-scale
figure is 50,000; the default keeps ``pbs-repro run all`` affordable).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.faults.recovery import run_adaptive_recovery
from repro.scenarios.divergence import ScenarioDivergence, run_scenario, run_scenario_matrix
from repro.scenarios.registry import scenario_names

__all__ = [
    "run_recovery_experiment",
    "run_scenario_experiment",
    "run_scenario_matrix_experiment",
]


def _divergence_row(divergence: ScenarioDivergence) -> dict[str, object]:
    """Flatten one divergence report into a table row."""
    shift_p99 = divergence.t_visibility_shift_ms.get(0.99)
    return {
        "scenario": divergence.scenario,
        "hostile": divergence.hostile,
        "writes": divergence.writes,
        "observations": divergence.observations,
        "dropped": divergence.dropped_messages,
        "consistency_rmse_pct": divergence.consistency_rmse * 100.0,
        "max_abs_delta_p_pct": divergence.max_abs_delta_p * 100.0,
        "analytic_rmse_pct": (
            float("nan") if divergence.analytic_rmse is None else divergence.analytic_rmse * 100.0
        ),
        "t_vis_shift_p99_ms": (
            float("nan")
            if shift_p99 is None or not math.isfinite(shift_p99)
            else shift_p99
        ),
        "read_latency_nrmse_pct": divergence.read_latency_nrmse * 100.0,
    }


@register(
    "scenario",
    "Hostile-conditions divergence for one scenario (--name; default: baseline)",
)
def run_scenario_experiment(
    trials: int = 2_000,
    rng: np.random.Generator | int | None = 0,
    name: str = "baseline",
    prediction_trials: int = 100_000,
    workers: int | None = None,
    draw_batch_size: int | None = None,
) -> ExperimentResult:
    """Run one registered scenario and report its model-vs-sim divergence."""
    kwargs: dict = {}
    if draw_batch_size is not None:
        kwargs["draw_batch_size"] = draw_batch_size
    divergence = run_scenario(
        name,
        writes=trials,
        prediction_trials=prediction_trials,
        rng=rng,
        workers=workers,
        **kwargs,
    )
    return ExperimentResult(
        experiment_id="scenario",
        title=f"Scenario divergence: {divergence.scenario}",
        paper_artifact="Section 5.2 (extended)",
        rows=[_divergence_row(divergence)],
        notes=tuple(divergence.summary_lines()),
    )


@register(
    "scenarios",
    "Full hostile-conditions scenario matrix: divergence per registered scenario",
)
def run_scenario_matrix_experiment(
    trials: int = 2_000,
    rng: np.random.Generator | int | None = 0,
    prediction_trials: int = 100_000,
    workers: int | None = None,
    draw_batch_size: int | None = None,
) -> ExperimentResult:
    """Run every registered scenario and tabulate divergence side by side."""
    kwargs: dict = {}
    if draw_batch_size is not None:
        kwargs["draw_batch_size"] = draw_batch_size
    matrix = run_scenario_matrix(
        writes=trials,
        prediction_trials=prediction_trials,
        rng=rng,
        workers=workers,
        **kwargs,
    )
    rows = [_divergence_row(matrix[name]) for name in scenario_names()]
    hostile = [row for row in rows if row["hostile"]]
    return ExperimentResult(
        experiment_id="scenarios",
        title="Hostile-conditions scenario matrix",
        paper_artifact="Section 5.2 (extended)",
        rows=rows,
        notes=(
            f"{len(hostile)} hostile scenarios + baseline; predictors keep the benign "
            "WARS assumptions while the simulated cluster deviates",
            "the baseline row's RMSE is the §5.2 validation error; hostile rows measure "
            "what each violated assumption costs the model",
        ),
    )


@register(
    "recovery",
    "Adaptive-recovery closed loop: hostile trace -> windowed refits -> convergence",
)
def run_recovery_experiment(
    trials: int = 2_000,
    rng: np.random.Generator | int | None = 0,
    name: str = "gray-failure",
    draw_batch_size: int | None = None,
) -> ExperimentResult:
    """Run the closed loop on one scenario; one row per ingest→refit window."""
    kwargs: dict = {}
    if draw_batch_size is not None:
        kwargs["draw_batch_size"] = draw_batch_size
    trajectory = run_adaptive_recovery(name, writes=trials, rng=rng, **kwargs)
    rows = [
        {
            "window": window.index,
            "start_ms": window.start_ms,
            "end_ms": window.end_ms,
            "samples": sum(window.samples.values()),
            "mean_abs_delta_p_pct": window.mean_abs_delta_p * 100.0,
            "recovered_pct": window.recovered_fraction * 100.0,
        }
        for window in trajectory.windows
    ]
    return ExperimentResult(
        experiment_id="recovery",
        title=f"Adaptive recovery: {trajectory.scenario}",
        paper_artifact="Section 6 (extended)",
        rows=rows,
        notes=tuple(trajectory.summary_lines()),
    )
