"""Figure 7: quorum sizing — t-visibility as the replication factor N grows.

With R=W=1 fixed, the paper varies N ∈ {2, 3, 5, 10} for LNKD-DISK, LNKD-SSD,
and WAN: the probability of consistency immediately after commit drops as N
grows (more replicas the read can land on that have not yet seen the write),
but the time to reach a high probability of consistency stays nearly constant.
"""

from __future__ import annotations

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register
from repro.latency.production import lnkd_disk, lnkd_ssd, wan
from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

__all__ = ["run_figure7", "FIGURE7_REPLICATION_FACTORS"]

#: Replication factors swept in Figure 7.
FIGURE7_REPLICATION_FACTORS: tuple[int, ...] = (2, 3, 5, 10)

_TIMES_MS: tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0)


@register("figure7", "Figure 7: t-visibility vs replication factor N (R=W=1)")
def run_figure7(
    trials: int = 100_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Consistency-vs-t series for N in {2, 3, 5, 10} with R=W=1.

    ``probe_resolution_ms`` enables adaptive refinement of each replication
    factor's 99.9% crossing — Section 5.7's claim is precisely that these
    crossings stay in a narrow band as N grows, so resolving them finely
    matters more than densifying the whole grid.
    """
    configs = tuple(ReplicaConfig(n=n, r=1, w=1) for n in FIGURE7_REPLICATION_FACTORS)

    def summaries_for(name: str):
        """One engine sweep per environment; per-N sweeps when the fit depends on N."""
        if name == "WAN":
            # The WAN fit depends on the replica count, so each N needs its
            # own distributions (and therefore its own sweep).
            for config in configs:
                engine = SweepEngine(
                    wan(replica_count=config.n),
                    (config,),
                    times_ms=_TIMES_MS,
                    chunk_size=chunk_size,
                    tolerance=tolerance,
                    min_trials=min_trials_for_quantile(0.999),
                    workers=workers,
                    target_probability=0.999,
                    probe_resolution_ms=probe_resolution_ms,
                    kernel_backend=kernel_backend,
                )
                yield engine.run(trials, rng).results[0]
        else:
            # LNKD fits are N-independent: one engine call sweeps every
            # replication factor (the engine groups the draws by N).
            distributions = lnkd_disk() if name == "LNKD-DISK" else lnkd_ssd()
            engine = SweepEngine(
                distributions,
                configs,
                times_ms=_TIMES_MS,
                chunk_size=chunk_size,
                tolerance=tolerance,
                min_trials=min_trials_for_quantile(0.999),
                workers=workers,
                target_probability=0.999,
                probe_resolution_ms=probe_resolution_ms,
                kernel_backend=kernel_backend,
            )
            yield from engine.run(trials, rng)

    rows = []
    for name in ("LNKD-DISK", "LNKD-SSD", "WAN"):
        for summary in summaries_for(name):
            row: dict[str, object] = {
                "environment": name,
                "n": summary.config.n,
                "p_at_commit": summary.probability_never_stale(),
            }
            for t_ms in _TIMES_MS:
                row[f"p@t={t_ms:g}ms"] = summary.consistency_probability(t_ms)
            row["t_visibility_99.9_ms"] = summary.t_visibility(0.999)
            rows.append(row)
    return ExperimentResult(
        experiment_id="figure7",
        title="Quorum sizing: t-visibility vs replication factor",
        paper_artifact="Figure 7 / Section 5.7",
        rows=rows,
        notes=(
            f"{trials} Monte Carlo trials per environment/replication factor; R=W=1.",
            "Consistency immediately after commit drops as N grows (e.g. LNKD-DISK ~57% at "
            "N=2 vs ~21% at N=10) while the 99.9% t-visibility stays within a narrow band, "
            "matching Section 5.7.",
        ),
    )
