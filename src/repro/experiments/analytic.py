"""Analytic-vs-Monte-Carlo validation experiment.

The analytic fast path (:mod:`repro.analytic`) must agree with the Monte
Carlo engine everywhere it claims to apply.  This experiment replays the
paper's figure-4/6/7 probe grids (minus the WAN scenario, whose per-replica
latency model the analytic decomposition does not cover) through both paths
and reports the per-case disagreement — the model-vs-simulation table backing
the claim that the analytic predictor can stand in for sampling on the
i.i.d.-replica figures.
"""

from __future__ import annotations

import numpy as np

from repro.analytic.validation import default_validation_cases, validate_against_montecarlo
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_analytic_validation"]


@register(
    "analytic-validation",
    "Analytic fast path vs Monte Carlo on the figure-4/6/7 grids (minus WAN)",
)
def run_analytic_validation(
    trials: int = 50_000,
    rng: np.random.Generator | int | None = 0,
    workers: int = 1,
) -> ExperimentResult:
    """Max/mean consistency-probability disagreement per validation case.

    ``trials`` sizes the Monte Carlo oracle; the residual disagreement is
    dominated by its sampling noise (~``1/sqrt(trials)``), not by the
    analytic discretisation.  ``workers`` shards the oracle across processes
    (result-invariant, like every engine sweep).
    """
    seed = rng if isinstance(rng, int) or rng is None else 0
    cases = default_validation_cases()
    rows = []
    for case in cases:
        report = validate_against_montecarlo(
            cases=(case,), trials=trials, rng=seed, workers=workers
        )
        worst = report.worst_row
        rows.append(
            {
                "case": case.label,
                "environment": case.distributions.name,
                "configs": len(case.configs),
                "probes": len(report.rows),
                "max_abs_error": report.max_absolute_error,
                "mean_abs_error": report.mean_absolute_error,
                "worst_probe_t_ms": worst["t_ms"],
                "worst_probe_config": worst["config"],
            }
        )
    return ExperimentResult(
        experiment_id="analytic-validation",
        title="Analytic predictor vs Monte Carlo oracle",
        paper_artifact="Figures 4, 6, 7 (model validation)",
        rows=rows,
        notes=(
            f"Monte Carlo oracle: {trials} trials per case, seed {seed}.",
            "The WAN environment is excluded: its per-replica latency model "
            "violates the i.i.d.-replica assumption of the analytic "
            "decomposition, so Monte Carlo remains authoritative there.",
            "Disagreements are dominated by Monte Carlo noise at this trial "
            "count; the analytic discretisation error is an order of "
            "magnitude smaller.",
        ),
    )
