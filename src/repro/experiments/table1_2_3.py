"""Tables 1–3: production latency summaries and the mixture fits derived from them.

Three related outputs:

* the published single-node summary statistics (Tables 1 and 2), included
  verbatim as the fitting targets;
* the Table 3 mixture fits evaluated at those same percentiles, showing the
  N-RMSE between fit and published summary;
* a re-run of the §5.5 fitting procedure on the published percentiles,
  demonstrating that the pipeline recovers mixtures of comparable quality.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.latency.base import as_rng
from repro.latency.fitting import evaluate_fit, fit_pareto_exponential
from repro.latency.production import (
    LINKEDIN_DISK_SUMMARY,
    LINKEDIN_SSD_SUMMARY,
    YAMMER_READ_SUMMARY,
    YAMMER_WRITE_SUMMARY,
    lnkd_disk,
    lnkd_ssd,
    ymmr,
)

__all__ = ["run_table1_2_3", "run_fit_reproduction"]


@register("table1-2-3", "Tables 1-3: production latency summaries vs the Table 3 mixture fits")
def run_table1_2_3(
    trials: int = 200_000, rng: np.random.Generator | int | None = 0
) -> ExperimentResult:
    """Evaluate each Table 3 fit against the corresponding published summary."""
    generator = as_rng(rng)
    # Each entry: (fit name, one-way distribution, published summary, note on the
    # comparison).  One-way fits are compared against *round-trip style* node
    # summaries only in shape, so the interesting column is the percentile set
    # of the fit itself plus the published reference alongside.
    cases = [
        ("LNKD-SSD W=A=R=S", lnkd_ssd().w, LINKEDIN_SSD_SUMMARY, "Table 1 (SSD)"),
        ("LNKD-DISK W", lnkd_disk().w, LINKEDIN_DISK_SUMMARY, "Table 1 (15k RPM disk)"),
        ("YMMR W", ymmr().w, YAMMER_WRITE_SUMMARY, "Table 2 (writes)"),
        ("YMMR A=R=S", ymmr().r, YAMMER_READ_SUMMARY, "Table 2 (reads)"),
    ]
    rows = []
    for name, distribution, summary, source in cases:
        described = distribution.describe(
            percentiles=tuple(sorted(p for p in summary.percentiles if 0.0 < p < 100.0)),
            samples=trials,
            rng=generator,
        )
        row: dict[str, object] = {
            "fit": name,
            "source": source,
            "fit_mean_ms": described.mean,
            "published_mean_ms": summary.mean,
        }
        for percentile in sorted(described.percentiles):
            row[f"fit_p{percentile:g}_ms"] = described.percentiles[percentile]
            row[f"published_p{percentile:g}_ms"] = summary.percentiles.get(
                percentile, float("nan")
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id="table1-2-3",
        title="Production latency summaries and Table 3 fits",
        paper_artifact="Tables 1, 2, and 3",
        rows=rows,
        notes=(
            "Published summaries are single-node operation latencies; the Table 3 fits are "
            "one-way message latencies derived under the paper's IID / symmetric assumptions, "
            "so only orders of magnitude and tail behaviour are expected to align.",
        ),
    )


@register("table3-refit", "§5.5 fitting procedure re-run on the published percentile summaries")
def run_fit_reproduction(
    trials: int = 100_000, rng: np.random.Generator | int | None = 0
) -> ExperimentResult:
    """Re-derive Pareto+exponential mixtures from the published Yammer percentiles."""
    cases = [
        (
            "YMMR write (Table 2)",
            {
                50.0: 5.73,
                75.0: 6.50,
                95.0: 8.48,
                98.0: 10.36,
                99.0: 131.73,
                99.9: 435.83,
            },
            8.62,
        ),
        (
            "YMMR read (Table 2)",
            {50.0: 3.75, 75.0: 4.17, 95.0: 5.2, 98.0: 6.045, 99.0: 6.59, 99.9: 32.89},
            9.23,
        ),
        (
            "LNKD-DISK (Table 1)",
            {50.0: 4.0, 95.0: 15.0, 99.0: 25.0},
            4.85,
        ),
    ]
    rows = []
    for name, percentiles, mean_hint in cases:
        fit = fit_pareto_exponential(percentiles, mean_hint=mean_hint)
        rows.append(
            {
                "target": name,
                "pareto_weight": fit.pareto_weight,
                "pareto_xm": fit.xm,
                "pareto_alpha": fit.alpha,
                "exp_lambda": fit.exponential_rate,
                "n_rmse_pct": fit.n_rmse * 100.0,
                "check_n_rmse_pct": evaluate_fit(fit.distribution, percentiles, seed=1) * 100.0,
            }
        )
    return ExperimentResult(
        experiment_id="table3-refit",
        title="Mixture fitting from percentile summaries",
        paper_artifact="Table 3 / Section 5.5",
        rows=rows,
        notes=(
            "Fits a Pareto body + exponential tail to published percentile summaries; the "
            "paper reports N-RMSE between 0.06% and 1.84% for its fits.",
            "The Table 1 disk row adds an assumed median (4 ms) since the published summary "
            "only lists mean/95th/99th.",
        ),
    )
