"""§5.2 experimental validation: WARS prediction vs the cluster substrate.

The paper injects exponentially distributed WARS latencies into an
instrumented Cassandra deployment (read repair disabled, only the first R
responses considered), measures staleness and latency over 50,000 writes, and
reports prediction error: average t-visibility RMSE 0.28% (max 0.53%) and
latency N-RMSE 0.48% (max 0.90%).

Here the instrumented store is the discrete-event cluster from
``repro.cluster``; the experiment sweeps the same grid of exponential
W and A=R=S means and reports the prediction error per combination.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.validation import run_validation
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ExperimentError
from repro.experiments.registry import ExperimentResult, register
from repro.latency.base import as_rng
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions

__all__ = [
    "run_validation_grid",
    "VALIDATION_W_MEANS_MS",
    "VALIDATION_ARS_MEANS_MS",
    "VALIDATION_CONFIGS",
]

#: W means (ms) from §5.2: λ ∈ {0.05, 0.1, 0.2}.
VALIDATION_W_MEANS_MS: tuple[float, ...] = (20.0, 10.0, 5.0)
#: A=R=S means (ms) from §5.2: λ ∈ {0.1, 0.2, 0.5}.
VALIDATION_ARS_MEANS_MS: tuple[float, ...] = (10.0, 5.0, 2.0)
#: Replication configurations swept by the full grid: the paper's validation
#: cell plus the partial-quorum shapes its Figure 4 analysis emphasises.
VALIDATION_CONFIGS: tuple[ReplicaConfig, ...] = (
    ReplicaConfig(n=3, r=1, w=1),
    ReplicaConfig(n=3, r=1, w=2),
    ReplicaConfig(n=3, r=2, w=1),
)


@register(
    "validation",
    "§5.2: WARS Monte Carlo prediction vs the instrumented Dynamo-style cluster",
)
def run_validation_grid(
    trials: int = 400,
    rng: np.random.Generator | int | None = 0,
    config: ReplicaConfig | None = None,
    configs: "tuple[ReplicaConfig, ...] | list[ReplicaConfig] | None" = None,
    prediction_trials: int = 100_000,
    workers: int | None = None,
    draw_batch_size: int | None = None,
    trace_backend: str | None = None,
) -> ExperimentResult:
    """Run the predicted-vs-observed comparison over the full §5.2 grid.

    The grid is ``configs`` × W means × A=R=S means; the default sweeps the
    paper's ``N=3, R=1, W=1`` cell plus the other strict-minority quorum
    shapes (:data:`VALIDATION_CONFIGS`), so every latency combination is
    validated for every configuration rather than one cell.

    ``trials`` is the number of *writes* issued per grid point (the paper uses
    50,000; several hundred already give sub-2% curve RMSE and keep the
    benchmark runtime modest — pass ``trials=50_000`` with ``workers=N`` for
    a paper-fidelity grid in reasonable wall-clock time).

    Args:
        config: Sweep a single configuration (back-compat shorthand for
            ``configs=(config,)``; mutually exclusive with ``configs``).
        configs: Replication configurations to sweep; defaults to
            :data:`VALIDATION_CONFIGS`.
        workers: Forwarded to :func:`~repro.analysis.validation.run_validation`:
            ``None`` keeps the serial single-cluster path per cell; an integer
            switches each cell to seed-spawned write blocks, farmed to a
            process pool when > 1 (results identical for any worker count).
        draw_batch_size: Network draw-buffer size per simulated cluster
            (default: the cluster's own default; ``1`` is the legacy
            per-message sampling stream).
        trace_backend: Trace storage per simulated cluster (``"columnar"``
            default, ``"object"`` the equivalence oracle); both backends
            produce identical grid rows.
    """
    if config is not None and configs is not None:
        raise ExperimentError("pass either config= or configs=, not both")
    swept_configs = tuple(configs) if configs is not None else (
        (config,) if config is not None else VALIDATION_CONFIGS
    )
    generator = as_rng(rng)
    rows = []
    validation_kwargs: dict = {}
    if workers is not None:
        validation_kwargs["workers"] = workers
    if draw_batch_size is not None:
        validation_kwargs["draw_batch_size"] = draw_batch_size
    if trace_backend is not None:
        validation_kwargs["trace_backend"] = trace_backend
    for swept_config in swept_configs:
        for w_mean in VALIDATION_W_MEANS_MS:
            for ars_mean in VALIDATION_ARS_MEANS_MS:
                distributions = WARSDistributions.write_specialised(
                    write=ExponentialLatency.from_mean(w_mean),
                    other=ExponentialLatency.from_mean(ars_mean),
                    name=f"exp W={w_mean}ms ARS={ars_mean}ms",
                )
                result = run_validation(
                    distributions=distributions,
                    config=swept_config,
                    writes=trials,
                    write_interval_ms=max(10.0 * w_mean, 100.0),
                    read_offsets_ms=(1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0),
                    prediction_trials=prediction_trials,
                    rng=generator,
                    **validation_kwargs,
                )
                rows.append(
                    {
                        "n": swept_config.n,
                        "r": swept_config.r,
                        "w": swept_config.w,
                        "w_mean_ms": w_mean,
                        "ars_mean_ms": ars_mean,
                        "writes": trials,
                        "observations": result.observations,
                        "consistency_rmse_pct": result.consistency_rmse * 100.0,
                        "read_latency_nrmse_pct": result.read_latency_nrmse * 100.0,
                        "write_latency_nrmse_pct": result.write_latency_nrmse * 100.0,
                    }
                )
    mean_rmse = float(np.mean([row["consistency_rmse_pct"] for row in rows]))
    return ExperimentResult(
        experiment_id="validation",
        title="WARS prediction vs instrumented cluster",
        paper_artifact="Section 5.2",
        rows=rows,
        notes=(
            f"grid-average consistency RMSE: {mean_rmse:.2f}% "
            f"(paper: 0.28% average with 50,000 writes per point)",
            "Prediction error shrinks with the number of writes; the cluster and the "
            "predictor consume identical latency distributions, so residual error is "
            "Monte Carlo noise plus time-binning of the measured curve.",
        ),
    )
