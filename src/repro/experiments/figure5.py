"""Figure 5: read and write operation latency CDFs for the production fits.

For each production latency environment and each quorum size R (reads) / W
(writes) in {1, 2, 3}, the paper plots the CDF of operation latency.  The
reproduction reports the latency at a fixed set of CDF probabilities so the
series can be compared numerically.
"""

from __future__ import annotations

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.experiments.registry import ExperimentResult, register
from repro.latency.production import lnkd_disk, lnkd_ssd, wan, ymmr
from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

__all__ = ["run_figure5"]

_PERCENTILES = (10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9)


@register("figure5", "Figure 5: operation latency CDFs for production fits, R/W in {1,2,3}")
def run_figure5(
    trials: int = 100_000,
    rng: np.random.Generator | int | None = 0,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> ExperimentResult:
    """Read/write latency percentiles per production environment and quorum size.

    ``workers`` and ``probe_resolution_ms`` are accepted for CLI uniformity
    (``pbs-repro run all``) but have no effect here: the engine runs serially
    whenever samples are retained (``keep_samples``), which this experiment
    needs for exact percentiles, and a pure latency-CDF experiment has no
    t-visibility crossing for an adaptive grid to refine.  ``kernel_backend``
    selects the sampling-reduction backend (:mod:`repro.kernels`).
    """
    del probe_resolution_ms  # no probe grid in a latency-only sweep
    environments = {
        "LNKD-SSD": lnkd_ssd(),
        "LNKD-DISK": lnkd_disk(),
        "YMMR": ymmr(),
        "WAN": wan(),
    }
    configs = tuple(ReplicaConfig(n=3, r=q, w=q) for q in (1, 2, 3))
    rows = []
    for name, distributions in environments.items():
        # keep_samples: this experiment is about precise latency CDF
        # percentiles, so query the exact per-trial arrays rather than the
        # streaming sketches (adjacent quorum sizes can differ by less than
        # a sketch bin).
        engine = SweepEngine(
            distributions,
            configs,
            chunk_size=chunk_size,
            tolerance=tolerance,
            min_trials=min_trials_for_quantile(max(_PERCENTILES) / 100.0),
            keep_samples=True,
            workers=workers,
            kernel_backend=kernel_backend,
        )
        sweep = engine.run(trials, rng)
        for summary in sweep:
            quorum_size = summary.config.r
            read_row: dict[str, object] = {
                "environment": name,
                "operation": "read",
                "quorum_size": quorum_size,
            }
            write_row: dict[str, object] = {
                "environment": name,
                "operation": "write",
                "quorum_size": quorum_size,
            }
            for percentile in _PERCENTILES:
                read_row[f"p{percentile:g}_ms"] = summary.read_latency_percentile(percentile)
                write_row[f"p{percentile:g}_ms"] = summary.write_latency_percentile(percentile)
            rows.append(read_row)
            rows.append(write_row)
    return ExperimentResult(
        experiment_id="figure5",
        title="Operation latency for production fits",
        paper_artifact="Figure 5",
        rows=rows,
        notes=(
            f"{trials} Monte Carlo trials per environment/quorum size; N=3.",
            "Read latency for LNKD-SSD equals LNKD-DISK (shared A=R=S fit); write latency "
            "differs sharply, and WAN latency jumps once the quorum size forces remote replicas.",
        ),
    )
