"""Experiment registry.

Every table and figure in the paper's evaluation has a corresponding
experiment module that produces an :class:`ExperimentResult`.  The registry
maps stable experiment identifiers (used by the CLI, the benchmark harness,
and EXPERIMENTS.md) to those runner functions.

Each runner accepts two keyword arguments:

* ``trials`` — Monte Carlo trials (or workload size) controlling fidelity;
* ``rng`` — a seed or :class:`numpy.random.Generator` for reproducibility.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.tables import format_table
from repro.exceptions import ExperimentError

__all__ = ["ExperimentResult", "register", "get_experiment", "list_experiments", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one experiment: tabular rows plus context."""

    experiment_id: str
    title: str
    #: The paper artifact this reproduces ("Figure 4", "Table 4", ...).
    paper_artifact: str
    rows: Sequence[Mapping[str, object]]
    #: Extra free-form notes (assumptions, trial counts, observed shapes).
    notes: Sequence[str] = field(default_factory=tuple)
    columns: Sequence[str] | None = None

    def to_text(self, precision: int = 3) -> str:
        """Render the result as an aligned text table with a header and notes."""
        parts = [f"== {self.title} ({self.paper_artifact}) =="]
        parts.append(format_table(list(self.rows), columns=self.columns, precision=precision))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


#: Runner signature: (trials, rng) -> ExperimentResult.
ExperimentRunner = Callable[..., ExperimentResult]

_REGISTRY: dict[str, tuple[str, ExperimentRunner]] = {}


def register(experiment_id: str, description: str) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Decorator registering an experiment runner under a stable identifier."""

    def decorator(runner: ExperimentRunner) -> ExperimentRunner:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"experiment {experiment_id!r} is already registered")
        _REGISTRY[experiment_id] = (description, runner)
        return runner

    return decorator


def list_experiments() -> list[tuple[str, str]]:
    """Return ``(experiment_id, description)`` pairs in registration order."""
    _ensure_loaded()
    return [(experiment_id, entry[0]) for experiment_id, entry in _REGISTRY.items()]


def get_experiment(experiment_id: str) -> ExperimentRunner:
    """Look up a runner by identifier."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from exc


#: Sweep-engine knobs that not every runner supports (closed-form and
#: cluster-based experiments have no Monte Carlo sweep to tune).  These — and
#: only these — are dropped silently when a runner does not accept them, so
#: ``pbs-repro run all --tolerance ... --workers ... --probe-resolution-ms ...
#: --kernel-backend ...`` works across heterogeneous runners.
_OPTIONAL_SWEEP_KWARGS: tuple[str, ...] = (
    "chunk_size",
    "tolerance",
    "workers",
    "probe_resolution_ms",
    "kernel_backend",
    "draw_batch_size",
    "name",
)


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by identifier.

    Unsupported sweep-engine knobs (:data:`_OPTIONAL_SWEEP_KWARGS`) are
    filtered out per runner; every other keyword is passed through verbatim.
    """
    runner = get_experiment(experiment_id)
    parameters = inspect.signature(runner).parameters
    accepts_everything = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    if not accepts_everything:
        kwargs = {
            key: value
            for key, value in kwargs.items()
            if key not in _OPTIONAL_SWEEP_KWARGS or key in parameters
        }
    return runner(**kwargs)


def _ensure_loaded() -> None:
    """Import the experiment modules so their ``@register`` decorators run."""
    # Imported lazily to avoid import cycles (experiment modules import this one).
    from repro.experiments import (  # noqa: F401
        ablations,
        analytic,
        figure4,
        figure5,
        figure6,
        figure7,
        load,
        scenarios,
        section3_examples,
        sla,
        table1_2_3,
        table4,
        validation,
    )
